# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench examples figures table1 verify-all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

figures:
	$(PYTHON) -m repro figures

table1:
	$(PYTHON) -m repro table1

verify-all: test bench figures
	@echo "everything green"

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null || true
	rm -rf .pytest_cache .hypothesis .benchmarks
