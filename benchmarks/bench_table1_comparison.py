"""Table 1 -- the protocol comparison (paper Section 1).

One benchmark per Table 1 row times the standard crash-recovery run for
that protocol; ``test_table1_summary`` runs the full measured battery and
prints the regenerated table next to the paper's published one, asserting
every qualitative relationship the paper claims.
"""

import pytest

from benchmarks.conftest import run_standard, standard_spec
from repro.analysis import check_recovery
from repro.core.recovery import DamaniGargProcess
from repro.harness.comparison import (
    PAPER_TABLE1,
    measure_protocol,
    run_table1,
)
from repro.harness.reporting import render_paper_comparison, render_table1
from repro.harness.runner import run_experiment
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.protocols.peterson_kearns import PetersonKearnsProcess
from repro.protocols.sender_based import SenderBasedProcess
from repro.protocols.sistla_welch import SistlaWelchProcess
from repro.protocols.smith_johnson_tygar import SmithJohnsonTygarProcess
from repro.protocols.strom_yemini import StromYeminiProcess
from repro.sim.failures import CrashPlan

ROWS = [
    StromYeminiProcess,
    SenderBasedProcess,
    SistlaWelchProcess,
    PetersonKearnsProcess,
    SmithJohnsonTygarProcess,
    DamaniGargProcess,
]


@pytest.mark.parametrize("protocol", ROWS, ids=lambda p: p.name)
def test_bench_protocol_recovery_run(benchmark, protocol):
    """Wall time of one crash-recovery run per Table 1 protocol."""
    spec = standard_spec(
        protocol, crashes=CrashPlan().crash(20.0, 1, 2.0), seed=1
    )

    def once():
        return run_experiment(spec)

    result = benchmark(once)
    assert result.total_restarts == 1
    benchmark.extra_info["delivered"] = result.total_delivered
    benchmark.extra_info["rollbacks"] = result.total_rollbacks
    benchmark.extra_info["piggyback/msg"] = round(
        result.total("piggyback_entries") / max(1, result.total("app_sent")),
        2,
    )


def test_table1_summary(benchmark, print_series):
    """Regenerate Table 1 and assert the paper's qualitative claims."""

    def battery():
        return run_table1(n=4, seeds=(0, 1, 2, 3, 4, 5))

    rows = benchmark.pedantic(battery, rounds=1, iterations=1)
    by_name = {row.name: row for row in rows}

    print_series("Table 1 (measured)", render_table1(rows))
    print_series(
        "Table 1: paper vs measured", render_paper_comparison(rows)
    )

    dg = by_name["Damani-Garg"]
    sjt = by_name["Smith-Johnson-Tygar"]
    jz = by_name["Sender-based (Johnson-Zwaenepoel)"]
    pk = by_name["Peterson-Kearns"]
    sw = by_name["Sistla-Welch"]
    sy = by_name["Strom-Yemini"]

    # Every protocol recovered safely on its own contract.
    assert all(row.safety_ok for row in rows)
    # Column 1: ordering assumptions match the paper.
    for name, (ordering, *_rest) in PAPER_TABLE1.items():
        assert by_name[name].ordering_assumption == ordering
    # Column 2: asynchrony -- only SY, SJT, DG restart without waiting.
    assert dg.asynchronous_recovery and sjt.asynchronous_recovery
    assert sy.asynchronous_recovery
    assert not jz.asynchronous_recovery
    assert not pk.asynchronous_recovery and not sw.asynchronous_recovery
    assert jz.recovery_blocked_time > 0
    # Column 3: at most one rollback per failure for everyone but SY.
    for row in (dg, sjt, jz, pk, sw):
        assert row.max_rollbacks_per_failure <= 1
    # Column 4: clock sizes -- O(1) < O(n) < O(n^2 f).
    assert jz.piggyback_entries_per_message == 1.0
    assert dg.piggyback_entries_per_message == 4.0           # n = 4
    assert sjt.piggyback_entries_per_message >= 4 + 16       # n + n^2
    # Column 5: concurrent failures handled by JZ, SJT, DG.
    assert dg.concurrent_failures_safe
    assert sjt.concurrent_failures_safe
    assert jz.concurrent_failures_safe


def test_strom_yemini_multiple_rollbacks_per_failure(benchmark):
    """The O(2^n) column: S-Y exhibits >1 rollback for one root failure
    (a cascade), which Damani-Garg never does on the same workloads."""

    def hunt():
        worst_sy = 0
        for seed in range(30):
            result = run_standard(
                StromYeminiProcess,
                seed=seed,
                crashes=CrashPlan().crash(20.0, 1, 2.0),
            )
            worst_sy = max(worst_sy, result.max_rollbacks_for_single_failure())
            if worst_sy > 1:
                break
        return worst_sy

    worst_sy = benchmark.pedantic(hunt, rounds=1, iterations=1)
    assert worst_sy > 1

    worst_dg = 0
    for seed in range(30):
        result = run_standard(
            DamaniGargProcess,
            seed=seed,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
        )
        assert check_recovery(result).ok
        worst_dg = max(worst_dg, result.max_rollbacks_for_single_failure())
    assert worst_dg <= 1


def test_pessimistic_context_row(benchmark):
    """The pessimistic baseline pays one synchronous write per delivery --
    the failure-free cost optimistic logging exists to avoid."""
    result = benchmark.pedantic(
        lambda: run_standard(PessimisticReceiverProcess, seed=1),
        rounds=1,
        iterations=1,
    )
    total_sync = sum(p.stats.sync_log_writes for p in result.protocols)
    assert total_sync == result.total_delivered

    from repro.sim.trace import EventKind

    optimistic = run_standard(DamaniGargProcess, seed=1)
    # Stable-storage write operations actually performed (empty periodic
    # flushes are free; LOG_FLUSH is recorded only when data moved).
    optimistic_writes = optimistic.trace.count(EventKind.LOG_FLUSH)
    # Optimistic logging batches: far fewer stable-storage operations.
    assert optimistic_writes < total_sync / 2
