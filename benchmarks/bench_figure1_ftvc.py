"""Figure 1 -- the worked computation with every FTVC box verified.

The scenario drives the real protocol stack through the exact message
pattern of Figure 1 (P1 fails having logged only m1; s12 is lost; s22 on
P2 becomes an orphan) and asserts every clock value printed in the figure.
"""

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.core.ftvc import FaultTolerantVectorClock as FTVC
from repro.harness.scenarios import figure1


def test_bench_figure1_scenario(benchmark):
    result = benchmark(figure1)

    # Every FTVC box of the figure, against the protocol's real clocks.
    recorded = set()
    for protocol in result.protocols:
        recorded.update(c.pairs() for c in protocol.clock_by_uid.values())
    for name in ("s11", "s12", "s22", "r10", "r20"):
        assert result.notes[name] in recorded, name
    assert result.protocols[1].clock.pairs() == result.notes["p1_after_m0"]
    assert result.protocols[2].clock.pairs() == result.notes["r20"]

    # The figure's failure story: s12 lost, s22 orphaned and rolled back.
    gt = build_ground_truth(result.trace, 3)
    assert len(gt.lost) == 1
    assert len(gt.orphans()) == 1
    assert gt.rolled_back == gt.orphans()
    assert check_recovery(result).ok

    # The paper's closing remark on Figure 1: the clock misorders
    # non-useful states (r20.c < s22.c although r20 !-> s22).
    assert FTVC.of(result.notes["r20"]) < FTVC.of(result.notes["s22"])

    benchmark.extra_info["lost"] = len(gt.lost)
    benchmark.extra_info["orphans"] = len(gt.orphans())


def test_bench_figure1_clock_algebra(benchmark):
    """Micro-benchmark of the FTVC operations Figure 2 defines, at the
    figure's scale (n = 3)."""
    m1 = FTVC.initial(0, 3)

    def clock_walk():
        p0 = FTVC.initial(0, 3)
        p1 = FTVC.initial(1, 3)
        p2 = FTVC.initial(2, 3)
        for _ in range(100):
            message = p0
            p0 = p0.tick(0)
            p1 = p1.merge(message).tick(1)
            message = p1
            p1 = p1.tick(1)
            p2 = p2.merge(message).tick(2)
        p1 = p1.restart(1)
        p2 = p2.tick(2)
        return p0, p1, p2

    p0, p1, p2 = benchmark(clock_walk)
    assert p1[1].version == 1
    assert p0 < p2 or p0.concurrent_with(p2)
