"""Ablation -- recovery work at scale.

Regenerates the quantities behind the paper's headline claims as series:

- rolled-back states per failure: Damani-Garg (minimal) vs coordinated
  checkpointing (everything since the last snapshot) -- the Section 1
  motivation;
- recovery scales with n: tokens are the only recovery traffic, so
  recovery-related messages grow linearly while rollback counts stay
  bounded by the orphan set;
- concurrent failures cost no more rollbacks per process than sequential
  ones (the "handles concurrent failures" property).
"""

from benchmarks.conftest import run_standard
from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.protocols.coordinated import CoordinatedProcess
from repro.sim.failures import CrashPlan

SEEDS = (0, 1, 2, 3, 4)


def test_bench_rollback_volume_vs_coordinated(benchmark, print_series):
    """Optimistic logging rolls back orphans only; coordinated rollback
    discards everything since the last global snapshot."""

    def compare():
        dg_undone = co_undone = dg_orphans = 0
        for seed in SEEDS:
            crashes = CrashPlan().crash(22.0, 1, 2.0)
            dg = run_standard(
                DamaniGargProcess, seed=seed, crashes=crashes, horizon=90.0
            )
            assert check_recovery(dg).ok
            gt = build_ground_truth(dg.trace, 4)
            dg_undone += len(gt.rolled_back)
            dg_orphans += len(gt.orphans())

            co = run_standard(
                CoordinatedProcess, seed=seed, crashes=crashes, horizon=90.0
            )
            gt_co = build_ground_truth(co.trace, 4)
            co_undone += len(gt_co.rolled_back)
        return dg_undone, dg_orphans, co_undone

    dg_undone, dg_orphans, co_undone = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print_series(
        "ablation: states rolled back per crash "
        f"(sums over {len(SEEDS)} seeds)",
        format_table(
            ["protocol", "states rolled back", "actual orphans"],
            [
                ("Damani-Garg", dg_undone, dg_orphans),
                ("coordinated checkpointing", co_undone, "n/a"),
            ],
        ),
    )
    assert dg_undone == dg_orphans            # minimal rollback
    assert co_undone > dg_undone              # the motivation for optimism


def test_bench_recovery_scaling_with_n(benchmark, print_series):
    """Tokens (the only recovery traffic) grow linearly with n."""

    def sweep():
        rows = []
        for n in (4, 8, 16):
            result = run_standard(
                DamaniGargProcess,
                n=n,
                seed=2,
                crashes=CrashPlan().crash(20.0, 1, 2.0),
                horizon=80.0,
            )
            assert check_recovery(result).ok
            rows.append(
                (
                    n,
                    result.total("tokens_sent"),
                    result.total_rollbacks,
                    result.max_rollbacks_for_single_failure(),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "ablation: recovery traffic vs n (one crash)",
        format_table(
            ["n", "tokens sent", "processes rolled back", "max per failure"],
            rows,
        ),
    )
    for n, tokens, _rollbacks, per_failure in rows:
        assert tokens == n - 1
        assert per_failure <= 1


def test_bench_concurrent_vs_sequential_failures(benchmark, print_series):
    """Two concurrent crashes cost each process at most one rollback per
    failure, exactly like two sequential crashes."""

    def compare():
        outcomes = []
        for label, crashes in (
            ("sequential", CrashPlan().crash(18.0, 0, 2.0).crash(36.0, 2, 2.0)),
            ("concurrent", CrashPlan().concurrent(25.0, [0, 2], 3.0)),
        ):
            worst = total = 0
            for seed in SEEDS:
                result = run_standard(
                    DamaniGargProcess,
                    seed=seed,
                    crashes=crashes,
                    horizon=100.0,
                )
                assert check_recovery(result).ok
                worst = max(worst, result.max_rollbacks_for_single_failure())
                total += result.total_rollbacks
            outcomes.append((label, worst, total))
        return outcomes

    outcomes = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_series(
        "ablation: two crashes, sequential vs concurrent "
        f"(over {len(SEEDS)} seeds)",
        format_table(
            ["schedule", "max rollbacks per failure", "total rollbacks"],
            outcomes,
        ),
    )
    for _label, worst, _total in outcomes:
        assert worst <= 1
