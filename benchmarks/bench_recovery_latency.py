"""Recovery latency across protocols -- the asynchrony claim, in time.

For one crash with fixed downtime D = 2.0:

- **resume latency** -- crash until the failed process is computing again
  (restart latency plus any post-restart waiting the protocol imposes);
- **settle latency** -- crash until the last recovery action anywhere
  (peer rollbacks, recovery sessions).

Asynchronous protocols resume in exactly D; protocols that need their
peers (sender-based retrieval, Sistla-Welch sessions, Peterson-Kearns
ack waves) pay more, which is Table 1's "asynchronous recovery" column
expressed in virtual time.
"""

from repro.analysis import check_recovery, recovery_latencies
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.protocols import (
    PessimisticReceiverProcess,
    PetersonKearnsProcess,
    SenderBasedProcess,
    SistlaWelchProcess,
    SmithJohnsonTygarProcess,
    StromYeminiProcess,
)
from repro.sim.failures import CrashPlan

from benchmarks.conftest import run_standard

DOWNTIME = 2.0
SEEDS = (0, 1, 2, 3)
PROTOCOLS = [
    DamaniGargProcess,
    SmithJohnsonTygarProcess,
    StromYeminiProcess,
    PessimisticReceiverProcess,
    SenderBasedProcess,
    SistlaWelchProcess,
    PetersonKearnsProcess,
]


def measure(protocol):
    resume_total = settle_total = 0.0
    for seed in SEEDS:
        result = run_standard(
            protocol,
            seed=seed,
            crashes=CrashPlan().crash(20.0, 1, DOWNTIME),
        )
        strict = protocol is not StromYeminiProcess
        verdict = check_recovery(
            result,
            expect_minimal_rollback=strict,
            expect_maximum_recovery=strict,
            expect_single_rollback_per_failure=strict,
        )
        assert verdict.ok, (protocol.name, verdict.violations)
        (latency,) = recovery_latencies(result)
        resume = latency.restart_latency
        if protocol in (PetersonKearnsProcess, SistlaWelchProcess):
            # These record RESTART at restore time and then wait (PK's ack
            # wave, SW's recovery session) before resuming; that wait is
            # the failed process's blocked_time -- its only blocking.
            # JZ's RESTART is already at completion, and its blocked_time
            # is failure-free send blocking, not recovery.
            resume += result.protocols[1].stats.blocked_time
        resume_total += resume
        settle_total += latency.settle_latency
    return resume_total / len(SEEDS), settle_total / len(SEEDS)


def test_bench_recovery_latency(benchmark, print_series):
    def battery():
        rows = []
        for protocol in PROTOCOLS:
            resume, settle = measure(protocol)
            rows.append(
                (protocol.name, f"{resume:.2f}", f"{settle:.2f}",
                 "yes" if protocol.asynchronous_recovery else "no")
            )
        return rows

    rows = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_series(
        f"recovery latency, one crash, downtime={DOWNTIME} "
        f"(means over {len(SEEDS)} seeds)",
        format_table(
            ["protocol", "resume", "settle", "async (claimed)"], rows
        ),
    )
    by_name = {row[0]: row for row in rows}

    # Asynchronous protocols resume in exactly the downtime.
    for name in ("Damani-Garg", "Smith-Johnson-Tygar", "Strom-Yemini",
                 "Pessimistic receiver log"):
        assert float(by_name[name][1]) == DOWNTIME, name
    # Peer-dependent protocols resume strictly later.
    for name in ("Sender-based (Johnson-Zwaenepoel)", "Peterson-Kearns",
                 "Sistla-Welch"):
        assert float(by_name[name][1]) > DOWNTIME, name
    # The synchronous session is the slowest way to settle.
    assert (
        float(by_name["Sistla-Welch"][2])
        > float(by_name["Damani-Garg"][2])
    )
