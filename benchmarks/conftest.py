"""Shared helpers for the benchmark suite.

Every benchmark regenerates a table or figure of the paper (see DESIGN.md's
per-experiment index) and *asserts* the paper's qualitative shape -- who
wins, by roughly what factor -- while pytest-benchmark records the wall
time of the simulated runs.
"""

from __future__ import annotations

import pytest

from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder


def standard_spec(
    protocol,
    *,
    n: int = 4,
    seed: int = 1,
    crashes: CrashPlan | None = None,
    horizon: float = 100.0,
    **config_kwargs,
) -> ExperimentSpec:
    """The workload every comparative benchmark runs on."""
    order = (
        DeliveryOrder.FIFO
        if getattr(protocol, "requires_fifo", False)
        else DeliveryOrder.RANDOM
    )
    config_kwargs.setdefault("checkpoint_interval", 8.0)
    config_kwargs.setdefault("flush_interval", 2.5)
    config = ProtocolConfig(**config_kwargs)
    return ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=protocol,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        order=order,
        config=config,
    )


def run_standard(protocol, **kwargs):
    return run_experiment(standard_spec(protocol, **kwargs))


@pytest.fixture
def print_series(capsys):
    """Print a labelled series so ``--benchmark-only -s`` shows the
    regenerated rows; also returns them for extra_info."""

    def _print(title: str, table: str) -> str:
        with capsys.disabled():
            print(f"\n### {title}\n{table}\n")
        return table

    return _print
