"""Ablation -- application-level availability under replica failures.

End-to-end view of what the recovery machinery buys an application: a
replicated KV store with both replicas crashing, measured by (a) client
operations completed and (b) replica convergence, across three recovery
configurations:

- Damani-Garg without retransmission (liveness holes possible),
- Damani-Garg with Remark-1 retransmission (full completion),
- pessimistic receiver logging (full completion, paid in synchronous
  writes).
"""

from repro.analysis import check_recovery
from repro.apps import KVStoreApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.sim.failures import CrashPlan

REPLICAS, CLIENTS, OPS = 2, 3, 25
SEEDS = (0, 1, 2, 3)


def run_kv(protocol, *, retransmit: bool, seed: int):
    spec = ExperimentSpec(
        n=REPLICAS + CLIENTS,
        app=KVStoreApp(replicas=REPLICAS, keys=6, ops_per_client=OPS),
        protocol=protocol,
        crashes=CrashPlan().crash(30.0, 0, 2.0).crash(60.0, 1, 2.0),
        horizon=250.0,
        seed=seed,
        config=ProtocolConfig(
            checkpoint_interval=10.0,
            flush_interval=3.0,
            retransmit_on_token=retransmit,
        ),
    )
    return run_experiment(spec)


def _completion(result) -> tuple[int, bool, int]:
    completed = sum(
        result.protocols[pid].executor.state.replies
        for pid in range(REPLICAS, REPLICAS + CLIENTS)
    )
    stores = [
        result.protocols[pid].executor.state.as_dict()
        for pid in range(REPLICAS)
    ]
    converged = stores[0] == stores[1]
    sync_writes = sum(p.stats.sync_log_writes for p in result.protocols)
    return completed, converged, sync_writes


def test_bench_kv_availability(benchmark, print_series):
    def battery():
        rows = []
        for label, protocol, retransmit in (
            ("Damani-Garg (no retransmit)", DamaniGargProcess, False),
            ("Damani-Garg + Remark 1", DamaniGargProcess, True),
            ("pessimistic receiver log", PessimisticReceiverProcess, False),
        ):
            total = 0
            converged_runs = 0
            writes = 0
            for seed in SEEDS:
                result = run_kv(protocol, retransmit=retransmit, seed=seed)
                assert check_recovery(result).ok
                completed, converged, sync = _completion(result)
                total += completed
                converged_runs += converged
                writes += sync
            rows.append(
                (label, total, OPS * CLIENTS * len(SEEDS),
                 f"{converged_runs}/{len(SEEDS)}", writes)
            )
        return rows

    rows = benchmark.pedantic(battery, rounds=1, iterations=1)
    print_series(
        "KV availability under double replica crash "
        f"({len(SEEDS)} seeds)",
        format_table(
            ["configuration", "ops completed", "ops issued max",
             "replicas converged", "sync writes"],
            rows,
        ),
    )
    bare, remark1, pessimistic = rows
    # Remark-1 retransmission completes everything pessimism completes...
    assert remark1[1] == remark1[2]
    assert pessimistic[1] == pessimistic[2]
    # ...while bare optimism can stall sessions (liveness, not safety).
    assert bare[1] <= remark1[1]
    # And the pessimistic configuration pays per-message synchronous writes.
    assert pessimistic[4] > remark1[4]
