"""Simulator-scale benchmarks: how large a system the substrate handles.

Not a paper figure -- these measure the reproduction's own machinery so
users know what experiment sizes are practical: events/second of the
kernel, end-to-end runs at n = 32, and the oracle's reconstruction cost.
"""

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.kernel import Simulator


def test_bench_kernel_event_rate(benchmark):
    """Raw kernel throughput: schedule + fire a chain of events."""

    def chain():
        sim = Simulator()
        count = 0

        def hop():
            nonlocal count
            count += 1
            if count < 10_000:
                sim.schedule(0.01, hop)

        sim.schedule(0.0, hop)
        sim.run()
        return count

    fired = benchmark(chain)
    assert fired == 10_000


def test_bench_n32_recovery_run(benchmark):
    """A full 32-process run with two crashes, oracle included."""
    spec = ExperimentSpec(
        n=32,
        app=RandomRoutingApp(hops=60, seeds=tuple(range(8)),
                             initial_items=2),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(20.0, 5, 2.0).crash(40.0, 17, 2.0),
        seed=3,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=10.0, flush_interval=3.0),
    )

    def run_and_check():
        result = run_experiment(spec)
        verdict = check_recovery(result)
        assert verdict.ok, verdict.violations
        return result

    result = benchmark.pedantic(run_and_check, rounds=1, iterations=1)
    assert result.total_delivered > 200
    benchmark.extra_info["delivered"] = result.total_delivered
    benchmark.extra_info["events"] = result.sim.events_fired


def test_bench_ground_truth_reconstruction(benchmark):
    """Cost of rebuilding the happen-before graph from a sizeable trace."""
    spec = ExperimentSpec(
        n=8,
        app=RandomRoutingApp(hops=80, seeds=(0, 1, 2, 3), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(25.0, 2, 2.0),
        seed=1,
        horizon=120.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    result = run_experiment(spec)

    gt = benchmark(lambda: build_ground_truth(result.trace, 8))
    assert len(gt.states) > 100
    benchmark.extra_info["states"] = len(gt.states)
    benchmark.extra_info["trace_events"] = len(result.trace)
