"""Section 6.9 item 2 -- token broadcast overhead.

The paper: "A token is broadcast only when a process fails.  The size of a
token is equal to just one entry of vector clock.  So broadcasting
overhead is low."  And: "Except application messages, the protocol causes
no extra messages to be sent during failure-free run."

Regenerated series: control messages vs number of failures (must be
exactly (n-1) per failure and zero without failures), and token size.
"""

from benchmarks.conftest import run_standard
from repro.analysis import measure_overhead
from repro.core.recovery import DamaniGargProcess
from repro.core.tokens import RecoveryToken
from repro.harness.reporting import format_table
from repro.sim.failures import CrashPlan


def test_bench_tokens_vs_failures(benchmark, print_series):
    def sweep():
        rows = []
        for failures in (0, 1, 2, 4):
            plan = CrashPlan()
            pids = [1, 2, 3, 1]
            for k in range(failures):
                plan.crash(12.0 + 14.0 * k, pids[k], downtime=1.5)
            result = run_standard(
                DamaniGargProcess, n=4, crashes=plan, horizon=100.0
            )
            report = measure_overhead(result)
            rows.append(
                (
                    failures,
                    report.app_messages,
                    report.control_messages,
                    f"{report.control_messages_per_failure:.0f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "6.9-2: control traffic vs failures (n=4)",
        format_table(
            ["failures", "app msgs", "control msgs", "control/failure"], rows
        ),
    )
    assert rows[0][2] == 0                      # failure-free: zero
    for failures, _app, control, _ratio in rows[1:]:
        assert control == failures * 3          # (n-1) per failure


def test_bench_token_size_is_one_entry(benchmark):
    token = RecoveryToken(origin=2, version=1, timestamp=99)
    entries = benchmark(token.piggyback_entries)
    assert entries == 1


def test_bench_token_handling_cost(benchmark):
    """Receive-token path: synchronous log + orphan test + record install
    (the per-token work at a non-orphan process)."""
    from repro.core.ftvc import FaultTolerantVectorClock as FTVC
    from repro.core.history import History

    def token_path():
        history = History(0, 8)
        history.observe_message_clock(
            FTVC.of([(0, 5)] * 8)
        )
        token = RecoveryToken(3, 0, 9)
        orphan = history.orphaned_by(token)
        history.observe_token(token)
        return orphan

    orphan = benchmark(token_path)
    assert orphan is False
