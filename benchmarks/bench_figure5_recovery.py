"""Figure 5 -- the worked recovery example.

Reproduces the three behaviours the figure illustrates and the paper's
prose narrates: P0 postpones m2 until P1's version-0 token arrives, P0
detects it is an orphan and rolls back to its checkpoint, and P2 discards
the obsolete m0 outright (having already seen the token).
"""

from repro.analysis import check_recovery
from repro.core.history import RecordKind
from repro.harness.scenarios import figure5
from repro.sim.trace import EventKind


def test_bench_figure5_scenario(benchmark):
    result = benchmark(figure5)

    # m2 postponed for the version-0 token, then delivered.
    postpones = result.trace.events(EventKind.POSTPONE, pid=0)
    assert len(postpones) == 1
    assert postpones[0]["awaiting"] == [(1, 0)]
    assert result.protocols[0].executor.state == ("m2",)

    # m0 discarded as obsolete by P2.
    discards = result.trace.events(EventKind.DISCARD, pid=2)
    assert [e["reason"] for e in discards] == ["obsolete"]
    assert result.protocols[2].executor.state == ()

    # P0 rolled back exactly once, due to P1's version-0 token.
    rollbacks = result.trace.events(EventKind.ROLLBACK, pid=0)
    assert len(rollbacks) == 1
    assert rollbacks[0]["origin"] == 1 and rollbacks[0]["version"] == 0

    # Delivery order around the token matches the figure: postpone happens
    # before the token, delivery of m2 after the rollback.
    token = result.trace.last(EventKind.TOKEN_DELIVER, pid=0)
    m2_delivery = result.trace.last(EventKind.DELIVER, pid=0)
    assert postpones[0].seq < token.seq < m2_delivery.seq

    # Histories: everyone ends with the token record for P1 version 0.
    for protocol in result.protocols:
        record = protocol.history.record(1, 0)
        assert record is not None and record.kind is RecordKind.TOKEN

    assert check_recovery(result).ok
    benchmark.extra_info["postponed"] = len(postpones)
    benchmark.extra_info["discarded"] = len(discards)


def test_bench_figure5_history_operations(benchmark):
    """Micro-benchmark of the Figure 3 history operations at the paper's
    scale, mirroring the record mix Figure 5 displays."""
    from repro.core.ftvc import FaultTolerantVectorClock as FTVC
    from repro.core.history import History
    from repro.core.tokens import RecoveryToken

    clocks = [
        FTVC.of([(0, i), (0, i + 1), (0, max(0, i - 1))]) for i in range(50)
    ]
    token = RecoveryToken(1, 0, 25)

    def history_walk():
        history = History(0, 3)
        for clock in clocks[:25]:
            if not history.is_obsolete(clock):
                history.observe_message_clock(clock)
        history.observe_token(token)
        obsolete = sum(
            1 for clock in clocks[25:] if history.is_obsolete(clock)
        )
        return history, obsolete

    history, obsolete = benchmark(history_walk)
    assert history.has_token(1, 0)
    assert obsolete > 0
