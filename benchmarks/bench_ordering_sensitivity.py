"""Sensitivity -- message ordering and token latency.

The paper's protocol makes no ordering assumption; the cost of arbitrary
reordering shows up only as *postponed* messages (a clock mentioning a
version whose earlier token has not arrived yet).  Regenerated series:

- deliveries / postponements / discards under FIFO vs arbitrary ordering
  (same seeds, one crash) -- correctness identical, postponement rate is
  the only difference;
- postponements as token propagation slows relative to application
  traffic: the slower the tokens, the more messages wait.
"""

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder, LatencyModel, UniformLatency

SEEDS = (0, 1, 2, 3, 4, 5)


def run_ordered(order, seed):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(20.0, 1, 2.0),
        seed=seed,
        horizon=100.0,
        order=order,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_bench_fifo_vs_random_ordering(benchmark, print_series):
    def sweep():
        rows = []
        for order in (DeliveryOrder.FIFO, DeliveryOrder.RANDOM):
            delivered = postponed = discarded = 0
            for seed in SEEDS:
                result = run_ordered(order, seed)
                assert check_recovery(result).ok
                delivered += result.total_delivered
                postponed += result.total("app_postponed")
                discarded += result.total("app_discarded")
            rows.append((order.value, delivered, postponed, discarded))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        f"ordering sensitivity (sums over {len(SEEDS)} seeded crash runs)",
        format_table(
            ["ordering", "delivered", "postponed", "discarded"], rows
        ),
    )
    # Correct under both disciplines; ordering only changes bookkeeping.
    assert all(row[1] > 0 for row in rows)


class TokenLagLatency(LatencyModel):
    """Application messages are fast; tokens crawl by ``lag``x."""

    def __init__(self, lag: float) -> None:
        self.lag = lag
        self._base = UniformLatency(0.5, 1.5)

    def sample(self, rng, src, dst, kind):
        delay = self._base.sample(rng, src, dst, kind)
        if kind == "token":
            return delay * self.lag
        return delay


def test_bench_postponement_vs_token_lag(benchmark, print_series):
    def sweep():
        rows = []
        for lag in (1.0, 4.0, 16.0):
            postponed = delivered = 0
            for seed in SEEDS:
                spec = ExperimentSpec(
                    n=4,
                    app=RandomRoutingApp(hops=50, seeds=(0, 1),
                                         initial_items=3),
                    protocol=DamaniGargProcess,
                    crashes=CrashPlan().crash(20.0, 1, 2.0),
                    seed=seed,
                    horizon=100.0,
                    latency=TokenLagLatency(lag),
                    config=ProtocolConfig(
                        checkpoint_interval=8.0, flush_interval=2.5
                    ),
                )
                result = run_experiment(spec)
                assert check_recovery(result).ok
                postponed += result.total("app_postponed")
                delivered += result.total_delivered
            rows.append((lag, delivered, postponed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "postponements vs token lag (tokens slower than app traffic)",
        format_table(["token lag x", "delivered", "postponed"], rows),
    )
    # Slower failure news => strictly more held messages.
    postponements = [row[2] for row in rows]
    assert postponements[0] <= postponements[-1]
    assert postponements[-1] > 0
