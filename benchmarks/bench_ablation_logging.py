"""Ablation -- the optimism dial (flush interval) and checkpoint cadence.

Not a table in the paper, but the design trade-off Sections 1 and 6.9
argue qualitatively: pessimistic logging (flush every message) costs
stable-storage writes on the failure-free path, while optimism costs lost
states (and hence orphans and rollback work) when a failure hits.
DESIGN.md lists this as an ablation experiment; the series regenerated
here shows both sides of the dial.
"""

from benchmarks.conftest import run_standard
from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.sim.failures import CrashPlan

SEEDS = (0, 1, 2, 3, 4)


def _measure(flush_interval: float):
    lost = orphans = flushes = 0
    for seed in SEEDS:
        result = run_standard(
            DamaniGargProcess,
            seed=seed,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
            horizon=90.0,
            flush_interval=flush_interval,
        )
        assert check_recovery(result).ok
        gt = build_ground_truth(result.trace, 4)
        lost += len(gt.lost)
        orphans += len(gt.orphans())
        flushes += sum(p.storage.log.flush_count for p in result.protocols)
    return lost, orphans, flushes


def test_bench_flush_interval_ablation(benchmark, print_series):
    """More optimism (longer flush interval) => more lost/orphan states on
    failure, fewer stable-storage operations when healthy."""

    def sweep():
        rows = []
        for interval in (0.5, 2.0, 8.0, 32.0):
            lost, orphans, flushes = _measure(interval)
            rows.append((interval, lost, orphans, flushes))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "ablation: flush interval vs lost work "
        f"(sums over {len(SEEDS)} seeded runs, one crash each)",
        format_table(
            ["flush interval", "lost states", "orphans", "log flushes"], rows
        ),
    )
    # The dial moves the right way at its extremes.
    assert rows[0][1] <= rows[-1][1]          # least optimism loses least
    assert rows[0][3] >= rows[-1][3]          # ...but flushes most
    assert rows[-1][1] > 0                    # heavy optimism does lose work


def test_bench_failure_free_throughput(benchmark, print_series):
    """Failure-free event throughput: optimistic vs pessimistic logging.

    Simulated virtual work is identical; the measured difference is the
    stable-write count (the quantity a real disk would charge for).
    """

    def run_both():
        optimistic = run_standard(DamaniGargProcess, seed=1, horizon=80.0)
        pessimistic = run_standard(
            PessimisticReceiverProcess, seed=1, horizon=80.0
        )
        return optimistic, pessimistic

    optimistic, pessimistic = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    opt_writes = sum(
        p.storage.log.flush_count for p in optimistic.protocols
    )
    pess_writes = sum(
        p.stats.sync_log_writes for p in pessimistic.protocols
    )
    print_series(
        "ablation: stable-storage operations, failure-free",
        format_table(
            ["protocol", "delivered", "stable writes"],
            [
                ("Damani-Garg (optimistic)",
                 optimistic.total_delivered, opt_writes),
                ("pessimistic receiver log",
                 pessimistic.total_delivered, pess_writes),
            ],
        ),
    )
    assert pess_writes == pessimistic.total_delivered
    assert opt_writes < pess_writes


def test_bench_checkpoint_interval_ablation(benchmark, print_series):
    """Checkpoint cadence trades storage traffic against replay length."""

    def sweep():
        rows = []
        for interval in (4.0, 8.0, 16.0, 32.0):
            replayed = ckpts = 0
            for seed in SEEDS:
                result = run_standard(
                    DamaniGargProcess,
                    seed=seed,
                    crashes=CrashPlan().crash(40.0, 1, 2.0),
                    horizon=90.0,
                    checkpoint_interval=interval,
                )
                assert check_recovery(result).ok
                replayed += result.total("replayed")
                ckpts += sum(
                    p.storage.checkpoints.taken_count
                    for p in result.protocols
                )
            rows.append((interval, ckpts, replayed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "ablation: checkpoint interval vs replay work",
        format_table(
            ["checkpoint interval", "checkpoints taken", "replayed messages"],
            rows,
        ),
    )
    assert rows[0][1] > rows[-1][1]       # frequent checkpoints cost storage
    assert rows[0][2] <= rows[-1][2]      # ...but shorten replay
