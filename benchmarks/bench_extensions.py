"""Section 6.5 extensions, measured.

- **Output commit latency** vs. the stability-sweep interval: outputs can
  only be released once their causal past is stable, so the sweep cadence
  bounds the added latency -- the cost the paper's remark alludes to
  ("Before committing an output ... a process must make sure that it will
  never rollback the current state").
- **Log/checkpoint garbage collection** (Remark 2): retained stable-store
  footprint with and without GC, under failures (GC must never break
  recovery -- oracle-checked).
"""

from repro.analysis import check_recovery
from repro.apps import PipelineApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.trace import EventKind


def run_pipeline(stability_interval: float, seed: int = 1):
    spec = ExperimentSpec(
        n=4,
        app=PipelineApp(jobs=12),
        protocol=DamaniGargProcess,
        seed=seed,
        horizon=80.0,
        config=ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.0,
            commit_outputs=True,
        ),
        stability_interval=stability_interval,
    )
    return run_experiment(spec)


def _commit_latencies(result) -> list[float]:
    emitted: dict = {}
    latencies = []
    for event in result.trace.events(EventKind.OUTPUT):
        if event.get("committed") is False:
            emitted[event["uid"]] = event.time
        elif event.get("committed") is True:
            latencies.append(event.time - emitted[event["uid"]])
    return latencies


def test_bench_output_commit_latency(benchmark, print_series):
    def sweep():
        rows = []
        for interval in (1.0, 3.0, 6.0, 12.0):
            result = run_pipeline(interval)
            latencies = _commit_latencies(result)
            assert len(latencies) == 12          # every job committed once
            rows.append(
                (
                    interval,
                    f"{sum(latencies) / len(latencies):.2f}",
                    f"{max(latencies):.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "output commit latency vs stability sweep interval (12 jobs)",
        format_table(
            ["sweep interval", "mean commit latency", "max"], rows
        ),
    )
    means = [float(mean) for _i, mean, _m in rows]
    # Longer sweeps mean later certification.
    assert means[0] < means[-1]


def run_gc(enable_gc: bool, seed: int):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=60, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(25.0, 1, 2.0).crash(55.0, 2, 2.0),
        seed=seed,
        horizon=120.0,
        config=ProtocolConfig(
            checkpoint_interval=6.0,
            flush_interval=2.0,
            enable_gc=enable_gc,
        ),
        stability_interval=4.0,
    )
    return run_experiment(spec)


def test_bench_gc_space_reclamation(benchmark, print_series):
    def compare():
        rows = []
        for enabled in (False, True):
            entries = ckpts = 0
            for seed in (0, 1, 2):
                result = run_gc(enabled, seed)
                assert check_recovery(result).ok
                entries += sum(
                    p.storage.log.retained_stable_entries
                    for p in result.protocols
                )
                ckpts += sum(
                    len(p.storage.checkpoints) for p in result.protocols
                )
            rows.append(
                ("GC on" if enabled else "GC off", ckpts, entries)
            )
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_series(
        "Remark-2 GC: retained stable storage after 2 crashes (3 seeds)",
        format_table(
            ["config", "checkpoints retained", "log entries retained"], rows
        ),
    )
    off, on = rows
    assert on[1] < off[1]
    assert on[2] < off[2]
