"""Section 6.9 item 3 -- history memory.

The paper: "There are at most f versions of a process and there is one
entry for each version of a process in the history.  So the size of the
history is O(nf).  The history is maintained in relatively inexpensive
main memory."

Regenerated series: the largest history (records held) across processes,
swept over n and over the failure count, asserted against the n*(f+1)
bound.
"""

from benchmarks.conftest import run_standard
from repro.analysis import measure_overhead
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.sim.failures import CrashPlan


def test_bench_history_size_vs_n(benchmark, print_series):
    def sweep():
        rows = []
        for n in (2, 4, 8, 16):
            result = run_standard(
                DamaniGargProcess,
                n=n,
                crashes=CrashPlan().crash(20.0, 1, 2.0),
                horizon=80.0,
            )
            report = measure_overhead(result)
            rows.append(
                (n, report.history_records_max, report.history_bound)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "6.9-3: history records vs n (one failure)",
        format_table(["n", "max records", "n*(f+1) bound"], rows),
    )
    for _n, records, bound in rows:
        assert records <= bound


def test_bench_history_size_vs_failures(benchmark, print_series):
    def sweep():
        rows = []
        for failures in (0, 1, 2, 4, 6):
            plan = CrashPlan()
            for k in range(failures):
                plan.crash(10.0 + 10.0 * k, 1 + (k % 3), downtime=1.5)
            result = run_standard(
                DamaniGargProcess, n=4, crashes=plan, horizon=100.0
            )
            report = measure_overhead(result)
            rows.append(
                (failures, report.history_records_max, report.history_bound)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "6.9-3: history records vs failures (n=4)",
        format_table(["failures", "max records", "n*(f+1) bound"], rows),
    )
    for _f, records, bound in rows:
        assert records <= bound
    # Growth is (at most) linear in f, not quadratic: per extra failure the
    # table gains at most one record per process.
    sizes = [records for _f, records, _b in rows]
    assert sizes[-1] - sizes[0] <= 4 * 6


def test_bench_history_lookup_cost(benchmark):
    """The obsolete test runs on every receive: keep it O(n)."""
    from repro.core.ftvc import FaultTolerantVectorClock as FTVC
    from repro.core.history import History
    from repro.core.tokens import RecoveryToken

    n = 32
    history = History(0, n)
    for j in range(1, n):
        for version in range(3):
            history.observe_token(RecoveryToken(j, version, 10 * version))
    # Entry (2, 25) exceeds the version-2 restoration point (20): obsolete.
    clock = FTVC.of([(2, 25)] * n)

    verdict = benchmark(history.is_obsolete, clock)
    assert verdict is True
