"""Section 6.9 item 1 -- the FTVC piggyback overhead.

The paper: "The protocol tags a FTVC to every application message ...
The protocol adds log f bits to each timestamp in vector clock.  Since we
expect the number of failures to be small, log f should be small."

Regenerated series:

- piggyback entries per message vs n (must be exactly n -- O(n));
- estimated wire bits per message vs the failure count f of a single
  process (must grow like n * log2(f), i.e. a few bits per entry, not a
  new entry per failure -- the difference against Smith-Johnson-Tygar).
"""

import math

import pytest

from benchmarks.conftest import print_series, run_standard
from repro.analysis import measure_overhead
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.sim.failures import CrashPlan

NS = (2, 4, 8, 16, 32)


def test_bench_piggyback_entries_vs_n(benchmark, print_series):
    """Entries per message == n for every n: the O(n) claim."""

    def sweep():
        rows = []
        for n in NS:
            result = run_standard(DamaniGargProcess, n=n, horizon=60.0)
            report = measure_overhead(result)
            rows.append(
                (n, f"{report.piggyback_entries_per_message:.1f}",
                 f"{report.piggyback_bits_per_message:.0f}")
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "6.9-1: FTVC piggyback vs n (failure-free)",
        format_table(["n", "entries/msg", "bits/msg"], rows),
    )
    for (n, entries, _bits) in rows:
        assert float(entries) == float(n)


def test_bench_piggyback_bits_vs_failures(benchmark, print_series):
    """Version bits grow like log2(f): f failures of one process must add
    only ~log2(f) bits per entry, never new entries."""

    def sweep():
        rows = []
        for f in (0, 1, 3, 7):
            plan = CrashPlan()
            for k in range(f):
                plan.crash(10.0 + 9.0 * k, 1, downtime=1.5)
            result = run_standard(
                DamaniGargProcess, n=4, crashes=plan, horizon=100.0
            )
            report = measure_overhead(result)
            rows.append(
                (
                    f,
                    f"{report.piggyback_entries_per_message:.1f}",
                    f"{report.piggyback_bits_per_message:.1f}",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_series(
        "6.9-1: FTVC wire size vs failures f of one process (n=4)",
        format_table(["f", "entries/msg", "bits/msg"], rows),
    )
    entries = [float(e) for _f, e, _b in rows]
    bits = [float(b) for _f, _e, b in rows]
    # Entries never grow with f...
    assert all(e == entries[0] for e in entries)
    # ...and bits grow by at most n * ceil(log2(f+1)) over the baseline.
    n = 4
    for (f, _e, _b), measured in zip(rows, bits):
        bound = bits[0] + n * max(1, math.ceil(math.log2(f + 1)) if f else 0)
        assert measured <= bound + 1e-9


@pytest.mark.parametrize("n", NS)
def test_bench_clock_merge_scaling(benchmark, n):
    """Micro-benchmark: one receive-side clock update (merge + tick) at
    width n -- the per-message CPU cost of the piggyback."""
    from repro.core.ftvc import FaultTolerantVectorClock as FTVC

    mine = FTVC.initial(0, n)
    for j in range(n):
        mine = mine.tick(0)
    theirs = FTVC.initial(n - 1, n).tick(n - 1)

    result = benchmark(lambda: mine.merge(theirs).tick(0))
    assert result[0].timestamp > mine[0].timestamp
