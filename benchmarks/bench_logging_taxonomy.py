"""The Alvisi-Marzullo taxonomy (paper ref [2]): pessimistic vs optimistic
vs causal message logging, measured head to head.

One crash, identical workloads; each family pays in a different currency:

=============  ====================  ===============  =================
family         failure-free cost     failure cost     recovery needs
=============  ====================  ===============  =================
pessimistic    sync write / receive  none             nobody
optimistic     ~none                 orphans, tokens  nobody (async)
causal         fat piggyback         none (orphans    the peers
                                     impossible)
=============  ====================  ===============  =================
"""

from repro.analysis import check_recovery, recovery_latencies
from repro.analysis.causality import build_ground_truth
from repro.core.recovery import DamaniGargProcess
from repro.harness.reporting import format_table
from repro.protocols import (
    CausalLoggingProcess,
    PessimisticReceiverProcess,
)
from repro.sim.failures import CrashPlan

from benchmarks.conftest import run_standard

SEEDS = (0, 1, 2, 3, 4)
FAMILIES = [
    ("pessimistic (receiver log)", PessimisticReceiverProcess),
    ("optimistic (Damani-Garg)", DamaniGargProcess),
    ("causal logging", CausalLoggingProcess),
]


def measure(protocol):
    sync = piggyback = sent = lost = orphans = rollbacks = 0
    resume = 0.0
    for seed in SEEDS:
        result = run_standard(
            protocol, seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0)
        )
        assert check_recovery(result).ok
        gt = build_ground_truth(result.trace, 4)
        sync += result.total("sync_log_writes")
        piggyback += result.total("piggyback_entries")
        sent += result.total("app_sent")
        lost += len(gt.lost)
        orphans += len(gt.orphans())
        rollbacks += result.total_rollbacks
        (latency,) = recovery_latencies(result)
        resume += latency.restart_latency
    return {
        "sync": sync,
        "piggyback": piggyback / max(1, sent),
        "lost": lost,
        "orphans": orphans,
        "rollbacks": rollbacks,
        "resume": resume / len(SEEDS),
    }


def test_bench_logging_taxonomy(benchmark, print_series):
    def battery():
        return {name: measure(protocol) for name, protocol in FAMILIES}

    results = benchmark.pedantic(battery, rounds=1, iterations=1)
    rows = [
        (
            name,
            m["sync"],
            f"{m['piggyback']:.1f}",
            m["lost"],
            m["orphans"],
            m["rollbacks"],
            f"{m['resume']:.2f}",
        )
        for name, m in results.items()
    ]
    print_series(
        f"message-logging taxonomy, one crash ({len(SEEDS)} seeds, sums)",
        format_table(
            ["family", "sync writes", "piggyback/msg", "lost states",
             "orphans", "rollbacks", "resume latency"],
            rows,
        ),
    )
    pess = results["pessimistic (receiver log)"]
    opt = results["optimistic (Damani-Garg)"]
    causal = results["causal logging"]

    # Pessimistic: pays a sync write per delivery, loses nothing.
    assert pess["sync"] > 100
    assert pess["lost"] == pess["orphans"] == pess["rollbacks"] == 0
    # Optimistic: sync writes only for tokens ((n-1) per failure), the
    # cheapest piggyback, and it pays in orphans.
    assert opt["sync"] == 3 * len(SEEDS)
    assert opt["lost"] > 0 and opt["orphans"] > 0 and opt["rollbacks"] > 0
    assert opt["piggyback"] < causal["piggyback"]
    # Causal: no sync writes, no orphans, no rollbacks -- pays piggyback
    # and peer-assisted (slower) recovery.
    assert causal["sync"] == 0
    assert causal["orphans"] == causal["rollbacks"] == 0
    assert causal["lost"] <= 3           # only determinant-less tails
    assert causal["resume"] > opt["resume"]
