"""Tests that the scripted scenarios reproduce the paper's figures."""

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.harness.scenarios import figure1, figure5
from repro.sim.trace import EventKind


class TestFigure1:
    def test_all_clock_boxes_match_the_paper(self):
        result = figure1()
        p1, p2 = result.protocols[1], result.protocols[2]
        assert p1.clock.pairs() == result.notes["p1_after_m0"]
        assert p2.clock.pairs() == result.notes["r20"]
        # s11, s12, s22 clocks were recorded at state creation.
        recorded = set()
        for protocol in result.protocols:
            recorded.update(c.pairs() for c in protocol.clock_by_uid.values())
        for name in ("s11", "s12", "s22", "r10", "r20"):
            assert result.notes[name] in recorded, name

    def test_s12_is_lost_and_s22_is_orphan(self):
        result = figure1()
        gt = build_ground_truth(result.trace, 3)
        assert len(gt.lost) == 1            # s12 (m2 was never logged)
        assert len(gt.lost & {u for u in gt.states if u[0] == 1}) == 1
        orphans = gt.orphans()
        assert len(orphans) == 1            # s22
        assert next(iter(orphans))[0] == 2
        assert gt.rolled_back == orphans

    def test_p1_restarts_once_p2_rolls_back_once(self):
        result = figure1()
        assert result.protocols[1].stats.restarts == 1
        assert result.protocols[2].stats.rollbacks == 1
        assert result.protocols[0].stats.rollbacks == 0

    def test_verdict_clean(self):
        verdict = check_recovery(figure1())
        assert verdict.ok, verdict.violations

    def test_non_useful_states_break_clock_order(self):
        """The paper's note: r20.c < s22.c although r20 !-> s22."""
        from repro.core.ftvc import FaultTolerantVectorClock as FTVC

        result = figure1()
        r20 = FTVC.of(result.notes["r20"])
        s22 = FTVC.of(result.notes["s22"])
        assert r20 < s22


class TestFigure5:
    def test_m2_is_postponed_for_the_version0_token(self):
        result = figure5()
        postpones = result.trace.events(EventKind.POSTPONE, pid=0)
        assert len(postpones) == 1
        assert postpones[0]["awaiting"] == [(1, 0)]

    def test_m2_is_delivered_after_the_token(self):
        result = figure5()
        assert result.protocols[0].executor.state == ("m2",)

    def test_m0_is_discarded_as_obsolete(self):
        result = figure5()
        discards = result.trace.events(EventKind.DISCARD, pid=2)
        assert len(discards) == 1
        assert discards[0]["reason"] == "obsolete"
        assert result.protocols[2].executor.state == ()

    def test_p0_rolls_back_exactly_once(self):
        result = figure5()
        assert result.protocols[0].stats.rollbacks == 1
        rollback = result.trace.last(EventKind.ROLLBACK, pid=0)
        assert rollback is not None
        assert rollback["origin"] == 1 and rollback["version"] == 0

    def test_p1_keeps_x1_loses_x2(self):
        result = figure5()
        assert result.protocols[1].executor.state == ("x1", "x3")

    def test_verdict_clean(self):
        verdict = check_recovery(figure5())
        assert verdict.ok, verdict.violations

    def test_histories_after_recovery(self):
        from repro.core.history import RecordKind

        result = figure5()
        # Everyone holds the token record for P1 version 0.
        for protocol in result.protocols:
            record = protocol.history.record(1, 0)
            assert record is not None
            assert record.kind is RecordKind.TOKEN
