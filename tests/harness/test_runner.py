"""Tests for the experiment runner."""

import pytest

from repro.apps import PingPongApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan, PartitionPlan
from repro.sim.network import DeliveryOrder, FixedLatency


def test_minimal_spec_runs():
    spec = ExperimentSpec(
        n=2, app=PingPongApp(rounds=10), protocol=DamaniGargProcess,
        horizon=50.0,
    )
    result = run_experiment(spec)
    assert result.total_delivered == 10
    assert result.sim.now >= 50.0


def test_drain_false_leaves_messages_in_flight():
    spec = ExperimentSpec(
        n=2, app=PingPongApp(rounds=1000), protocol=DamaniGargProcess,
        horizon=5.0, drain=False,
    )
    result = run_experiment(spec)
    assert result.sim.pending > 0


def test_result_totals_helpers():
    spec = ExperimentSpec(
        n=3, app=RandomRoutingApp(hops=20, seeds=(0,), initial_items=2),
        protocol=DamaniGargProcess, horizon=60.0,
    )
    result = run_experiment(spec)
    assert result.total("app_sent") == sum(
        s.app_sent for s in result.stats
    )
    assert result.total_delivered == result.total("app_delivered")
    assert result.max_rollbacks_for_single_failure() == 0


def test_latency_model_is_used():
    spec = ExperimentSpec(
        n=2, app=PingPongApp(rounds=3), protocol=DamaniGargProcess,
        horizon=50.0, latency=FixedLatency(5.0),
    )
    result = run_experiment(spec)
    # 1 bootstrap send + 2 replies at exactly 5 time units apart.
    delivers = result.trace.events()
    from repro.sim.trace import EventKind

    times = [e.time for e in result.trace.events(EventKind.DELIVER)]
    assert times == [5.0, 10.0, 15.0]


def test_crash_and_partition_plans_both_install():
    spec = ExperimentSpec(
        n=4, app=RandomRoutingApp(hops=30, seeds=(0, 2), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(20.0, 1, 2.0),
        partitions=PartitionPlan().partition(10.0, [[0, 1], [2, 3]], 30.0),
        horizon=80.0,
    )
    result = run_experiment(spec)
    from repro.sim.trace import EventKind

    assert result.trace.count(EventKind.CRASH) == 1
    assert result.trace.count(EventKind.PARTITION) == 1
    assert result.trace.count(EventKind.HEAL) == 1


def test_stability_interval_builds_coordinator():
    spec = ExperimentSpec(
        n=3, app=RandomRoutingApp(hops=20, seeds=(0,), initial_items=2),
        protocol=DamaniGargProcess, horizon=40.0,
        stability_interval=5.0,
    )
    result = run_experiment(spec)
    assert result.coordinator is not None
    assert result.coordinator.stats.rounds >= 8


def test_no_coordinator_by_default():
    spec = ExperimentSpec(
        n=2, app=PingPongApp(rounds=4), protocol=DamaniGargProcess,
        horizon=30.0,
    )
    assert run_experiment(spec).coordinator is None


def test_record_states_flag_populates_executors():
    spec = ExperimentSpec(
        n=2, app=PingPongApp(rounds=6), protocol=DamaniGargProcess,
        horizon=40.0, record_states=True,
    )
    result = run_experiment(spec)
    for protocol in result.protocols:
        assert len(protocol.executor.state_by_uid) >= 1


def test_identical_specs_identical_traces():
    def make():
        return ExperimentSpec(
            n=4, app=RandomRoutingApp(hops=30, seeds=(0, 1), initial_items=2),
            protocol=DamaniGargProcess,
            crashes=CrashPlan().crash(15.0, 2, 2.0),
            seed=9, horizon=60.0, order=DeliveryOrder.FIFO,
            config=ProtocolConfig(checkpoint_interval=7.0),
        )

    assert (
        run_experiment(make()).trace.signature()
        == run_experiment(make()).trace.signature()
    )
