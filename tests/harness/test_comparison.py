"""Tests for the Table 1 comparison battery and reporting."""

from repro.core.recovery import DamaniGargProcess
from repro.harness.comparison import (
    PAPER_TABLE1,
    TABLE1_PROTOCOLS,
    measure_protocol,
    run_table1,
)
from repro.harness.reporting import (
    format_table,
    render_paper_comparison,
    render_table1,
)
from repro.protocols.sender_based import SenderBasedProcess


def test_measure_damani_garg_row():
    row = measure_protocol(DamaniGargProcess, seeds=(0, 1))
    assert row.name == "Damani-Garg"
    assert row.safety_ok
    assert row.ordering_assumption == "None"
    assert row.asynchronous_recovery
    assert row.max_rollbacks_per_failure <= 1
    assert row.piggyback_entries_per_message == 4.0
    assert row.concurrent_failures_safe is True
    assert row.runs == 4          # 2 single-failure + 2 concurrent
    assert row.paper_row == ("None", "Yes", "1", "O(n)", "n")


def test_measure_sender_based_row():
    row = measure_protocol(SenderBasedProcess, seeds=(0,))
    assert not row.asynchronous_recovery
    assert row.recovery_blocked_time > 0
    assert row.piggyback_entries_per_message == 1.0


def test_every_table1_protocol_has_paper_row():
    for protocol in TABLE1_PROTOCOLS:
        assert protocol.name in PAPER_TABLE1, protocol.name


def test_run_table1_returns_all_rows():
    rows = run_table1(seeds=(0,), include_context=False)
    assert [r.name for r in rows] == [p.name for p in TABLE1_PROTOCOLS]
    rows_with_context = run_table1(seeds=(0,), include_context=True)
    assert len(rows_with_context) == len(rows) + 2


class TestReporting:
    def test_format_table_aligns_columns(self):
        table = format_table(
            ["a", "long-header"], [["xxxx", "1"], ["y", "22"]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[0:2])) <= 2
        assert "long-header" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_render_table1_includes_every_protocol(self):
        rows = run_table1(seeds=(0,), include_context=False)
        rendered = render_table1(rows)
        for row in rows:
            assert row.name in rendered

    def test_render_paper_comparison_skips_context_rows(self):
        rows = run_table1(seeds=(0,), include_context=True)
        rendered = render_paper_comparison(rows)
        assert "Pessimistic" not in rendered
        assert "Damani-Garg" in rendered


def test_parallel_table1_matches_serial():
    from repro.harness.comparison import TABLE1_PROTOCOLS, run_table1

    protocols = TABLE1_PROTOCOLS[:2]
    serial = run_table1(protocols=protocols, seeds=(0,), jobs=1)
    parallel = run_table1(protocols=protocols, seeds=(0,), jobs=2)
    assert serial == parallel
