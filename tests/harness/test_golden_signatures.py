"""Golden trace signatures: the engine refactor safety net.

Every (protocol, conformance schedule) pair has a deterministic ground
truth trace; its MD5 digest is pinned here.  These digests were captured
before the protocols were ported onto :class:`RuntimeEnv`, so a mismatch
means an engine or protocol change altered the *semantics* of a run --
event order, timing, or content -- not just its implementation.

If a change is *supposed* to alter execution (a protocol fix, a new
event), re-pin by printing ``result.trace.signature()`` for the failing
pairs and updating the table in the same commit, with the reason in the
commit message.
"""

import pytest

from repro.harness.conformance import (
    CONFORMANCE_SCHEDULES,
    PROTOCOL_REGISTRY,
    build_conformance_spec,
)
from repro.harness.runner import run_experiment

GOLDEN = {
    "causal/double-sequential-crash": "0700c6770080bc95ee5ca4519f60c312",
    "causal/early-crash-mid-stage": "975aaaa82452ff5f87be87008a48611d",
    "causal/late-crash-final-stage": "fe368d660646e97c022cd8ea7d6cbf6d",
    "coordinated/double-sequential-crash":
        "de08c384ef99736b30d234e668a4fd1c",
    "coordinated/early-crash-mid-stage":
        "f35483435aa4476bfa5545fc5fe6ec4d",
    "coordinated/late-crash-final-stage":
        "1d2dcd77cfe516217d401d101bb2da81",
    "damani-garg/double-sequential-crash":
        "830394fd81c78ad715415ec86263083d",
    "damani-garg/early-crash-mid-stage":
        "2a257e166077d9fb7a98db9a46fc4c96",
    "damani-garg/late-crash-final-stage":
        "d3a467238fb4eb43fa9c2e7204fbabdc",
    "pessimistic/double-sequential-crash":
        "5654e423adc2d7b96106af20beaa6103",
    "pessimistic/early-crash-mid-stage":
        "0fe0265659db1d9819b18f9e903dce70",
    "pessimistic/late-crash-final-stage":
        "384308b54f9dea12f806c2ef3c1afc30",
    "peterson-kearns/double-sequential-crash":
        "04254a8bb9ace5427745ecebe10ae457",
    "peterson-kearns/early-crash-mid-stage":
        "e0b972345ec5d2e9d911c573ccf0937f",
    "peterson-kearns/late-crash-final-stage":
        "bbae3a4f281807a92f5b4260f128b1ca",
    "sender-based/double-sequential-crash":
        "e58aa6ff71a22bdd17e775e1d96ee4e0",
    "sender-based/early-crash-mid-stage":
        "184156ee5712ff03f821872cfa3aee65",
    "sender-based/late-crash-final-stage":
        "d2b095cbe65f07cc493462dd6b999312",
    "sistla-welch/double-sequential-crash":
        "98212086a004da1aecbce613e4d7db5d",
    "sistla-welch/early-crash-mid-stage":
        "db9ebdb82856fc5a6455ccec97b400b2",
    "sistla-welch/late-crash-final-stage":
        "a1e5734667187767352a264785078080",
    "smith-johnson-tygar/double-sequential-crash":
        "830394fd81c78ad715415ec86263083d",
    "smith-johnson-tygar/early-crash-mid-stage":
        "2a257e166077d9fb7a98db9a46fc4c96",
    "smith-johnson-tygar/late-crash-final-stage":
        "d3a467238fb4eb43fa9c2e7204fbabdc",
    "strom-yemini/double-sequential-crash":
        "a633e5758a6ad4f2dff2a967c107d68a",
    "strom-yemini/early-crash-mid-stage":
        "2a95b04554e4d1db81b135c9392c67c6",
    "strom-yemini/late-crash-final-stage":
        "78a2fe67c7972e398b80530e7e2da605",
}


def test_every_registry_pair_is_pinned():
    expected = {
        f"{name}/{schedule.name}"
        for name in PROTOCOL_REGISTRY
        for schedule in CONFORMANCE_SCHEDULES
    }
    assert expected == set(GOLDEN), (
        "registry/schedule changed: pin signatures for the new pairs"
    )


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_trace_signature_matches_golden(key):
    protocol_name, _, schedule_name = key.partition("/")
    schedule = next(
        s for s in CONFORMANCE_SCHEDULES if s.name == schedule_name
    )
    spec = build_conformance_spec(
        PROTOCOL_REGISTRY[protocol_name], schedule
    )
    result = run_experiment(spec)
    assert result.trace.signature() == GOLDEN[key], (
        f"{key}: deterministic execution changed"
    )
