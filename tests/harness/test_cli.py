"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import PROTOCOLS, WORKLOADS, _parse_crashes, main


def test_run_default(capsys):
    code = main(["run", "--crash", "20:1", "--seed", "7"])
    out = capsys.readouterr().out
    assert code == 0
    assert "oracle: OK" in out
    assert "Damani-Garg" in out


def test_run_every_protocol(capsys):
    for name in PROTOCOLS:
        code = main(
            ["run", "--protocol", name, "--crash", "25:1",
             "--horizon", "70", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0, f"{name}: {out}"


def test_run_every_workload(capsys):
    for name in WORKLOADS:
        code = main(["run", "--workload", name, "--horizon", "50"])
        assert code == 0, name
        capsys.readouterr()


def test_run_with_timeline(capsys):
    code = main(["run", "--crash", "20:1", "--timeline",
                 "--timeline-limit", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "--- timeline ---" in out
    assert "t=" in out


def test_figures_command(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    assert "figure 1: verified" in out
    assert "figure 5: verified" in out


def test_table1_command(capsys):
    assert main(["table1", "--seeds", "0"]) == 0
    out = capsys.readouterr().out
    assert "Damani-Garg" in out
    assert "paper" not in out or True
    assert "Strom-Yemini" in out


def test_overhead_command(capsys):
    assert main(["overhead", "--crash", "15:1"]) == 0
    out = capsys.readouterr().out
    assert "piggyback entries/msg : 4.0" in out
    assert "failures              : 1" in out


def test_trace_command(tmp_path, capsys):
    out_path = tmp_path / "trace.jsonl"
    code = main(["trace", "quickstart", "--out", str(out_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "dg.tokens_broadcast" in out
    assert "overhead (Section 6.9)" in out
    import json

    records = [
        json.loads(line) for line in out_path.read_text().splitlines()
    ]
    assert records[0]["type"] == "meta"
    assert any(r["type"] == "counter" for r in records)


def test_trace_command_default_output_name(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["trace", "failure-free"]) == 0
    capsys.readouterr()
    assert (tmp_path / "trace_failure-free.jsonl").exists()


def test_trace_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["trace", "no-such-scenario"])


def test_bench_command(tmp_path, capsys):
    out_path = tmp_path / "BENCH_obs.json"
    code = main(
        ["bench", "quickstart", "--repeats", "1", "--out", str(out_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "events/sec" in out
    import json

    data = json.loads(out_path.read_text())
    assert data["format"] == "repro-bench-v1"
    assert data["scenario"] == "quickstart"
    assert data["wall_time_s"] > 0


def test_crash_spec_parsing():
    plan = _parse_crashes(["10:1", "20:2:5.0"])
    assert plan is not None
    assert plan.events[0].time == 10.0 and plan.events[0].pid == 1
    assert plan.events[0].downtime == 2.0
    assert plan.events[1].downtime == 5.0
    assert _parse_crashes([]) is None


def test_bad_crash_spec_exits():
    with pytest.raises(SystemExit):
        _parse_crashes(["nonsense"])


def test_unknown_subcommand_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
