"""The deterministic rollback-cascade scenario (Table 1, column 3)."""

from repro.analysis import check_recovery
from repro.core.recovery import DamaniGargProcess
from repro.harness.scenarios import cascade
from repro.protocols.strom_yemini import StromYeminiProcess
from repro.sim.trace import EventKind


def test_strom_yemini_rolls_p2_back_twice():
    result = cascade(StromYeminiProcess)
    p2 = result.protocols[2]
    assert p2.stats.rollbacks == 2
    # Both rollbacks trace to the single root failure (P0's first crash).
    assert p2.stats.rollbacks_per_failure == {(0, 1): 2}
    assert p2.stats.max_rollbacks_for_single_failure == 2


def test_strom_yemini_cascade_is_still_safe():
    result = cascade(StromYeminiProcess)
    verdict = check_recovery(
        result,
        expect_minimal_rollback=False,
        expect_single_rollback_per_failure=False,
        expect_maximum_recovery=False,
    )
    assert verdict.ok, verdict.violations


def test_damani_garg_rolls_p2_back_once_on_the_same_scenario():
    result = cascade(DamaniGargProcess)
    p2 = result.protocols[2]
    assert p2.stats.rollbacks == 1
    assert p2.stats.max_rollbacks_for_single_failure == 1
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_cascade_mechanism_is_the_rollback_announcement():
    """S-Y pays extra tokens for the cascade: P1's rollback broadcasts."""
    sy = cascade(StromYeminiProcess)
    dg = cascade(DamaniGargProcess)
    sy_tokens = sy.trace.count(EventKind.TOKEN_SEND, pid=1)
    dg_tokens = dg.trace.count(EventKind.TOKEN_SEND, pid=1)
    assert sy_tokens >= 1          # P1 announced its rollback
    assert dg_tokens == 0          # D-G rollback is silent


def test_both_protocols_reach_equivalent_app_outcomes():
    """Both end with the infected states gone; the surviving payload
    histories agree."""
    sy = cascade(StromYeminiProcess)
    dg = cascade(DamaniGargProcess)
    for pid in range(3):
        assert (
            sy.protocols[pid].executor.state
            == dg.protocols[pid].executor.state
        )
