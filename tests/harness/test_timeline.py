"""Tests for the ASCII timeline renderer."""

from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.harness.timeline import lane_summary, render_timeline
from repro.sim.failures import CrashPlan
from repro.sim.trace import EventKind, SimTrace


def make_result():
    spec = ExperimentSpec(
        n=3,
        app=RandomRoutingApp(hops=25, seeds=(0,), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(15.0, 1, 2.0),
        seed=2,
        horizon=60.0,
    )
    return run_experiment(spec)


def test_timeline_mentions_recovery_events():
    result = make_result()
    text = render_timeline(result.trace)
    assert "CRASH" in text
    assert "restore ckpt" in text
    assert "token" in text


def test_timeline_respects_pid_filter():
    result = make_result()
    text = render_timeline(result.trace, pids=[1])
    assert text
    for line in text.splitlines():
        if line.startswith("t="):
            assert "| P1 " in line


def test_timeline_respects_time_window():
    result = make_result()
    text = render_timeline(result.trace, start=10.0, end=20.0)
    for line in text.splitlines():
        if line.startswith("t="):
            time = float(line.split("|")[0].split("=")[1])
            assert 10.0 <= time <= 20.0


def test_timeline_limit_elides():
    result = make_result()
    text = render_timeline(result.trace, limit=5)
    lines = text.splitlines()
    assert len(lines) == 6
    assert "elided" in lines[-1]


def test_timeline_kind_filter():
    result = make_result()
    text = render_timeline(result.trace, kinds=[EventKind.CRASH])
    lines = [line for line in text.splitlines() if line]
    assert len(lines) == 1
    assert "CRASH" in lines[0]


def test_empty_trace_renders_empty():
    assert render_timeline(SimTrace()) == ""


def test_lane_summary_counts():
    result = make_result()
    summary = lane_summary(result.trace, 3)
    lines = summary.splitlines()
    assert len(lines) == 3
    assert lines[1].startswith("P1:")
    assert "crash=1" in lines[1]


def test_send_and_output_glyphs():
    trace = SimTrace()
    trace.record(1.0, EventKind.SEND, 0, msg_id=1, dst=2, uid=(0, 0, 0))
    trace.record(2.0, EventKind.OUTPUT, 1, value=42, committed=True,
                 uid=(1, 0, 1))
    text = render_timeline(
        trace, kinds=[EventKind.SEND, EventKind.OUTPUT]
    )
    assert "m#1 to P2" in text
    assert "output 42 (committed)" in text
