"""LiveEnv: clock, message ids, broadcast fan-out, event-loop timers."""

import asyncio
import time

from repro.live.env import LiveEnv, LiveTrace, merge_traces
from repro.runtime.env import RuntimeEnv
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


class FakeTransport:
    def __init__(self):
        self.sent = []

    def send(self, dst, msg):
        self.sent.append((dst, msg))

    def attach(self, protocol):
        self.protocol = protocol


def _env(pid=0, n=4, crash_count=0, epoch=None, mono_anchor=None):
    return LiveEnv(
        pid=pid,
        n=n,
        storage=None,
        transport=FakeTransport(),
        epoch=time.time() if epoch is None else epoch,
        crash_count=crash_count,
        mono_anchor=mono_anchor,
    )


def test_is_a_runtime_env():
    assert isinstance(_env(), RuntimeEnv)


def test_now_is_relative_to_epoch():
    env = _env(epoch=time.time() - 10.0)
    assert 9.5 < env.now < 11.0


def test_alive_is_always_true():
    assert _env().alive is True


def test_send_builds_the_envelope():
    env = _env(pid=2)
    msg = env.send(3, "payload", kind="token")
    assert isinstance(msg, NetworkMessage)
    assert (msg.src, msg.dst, msg.kind, msg.payload) == (2, 3, "token",
                                                         "payload")
    assert env.transport.sent == [(3, msg)]


def test_broadcast_excludes_self_by_default():
    env = _env(pid=1, n=4)
    sent = env.broadcast("tok")
    assert [m.dst for m in sent] == [0, 2, 3]
    included = env.broadcast("tok", include_self=True)
    assert [m.dst for m in included] == [0, 1, 2, 3]


def test_msg_ids_unique_across_pids_and_incarnations():
    ids = set()
    for pid in range(3):
        for boot in range(3):
            env = _env(pid=pid, crash_count=boot)
            for _ in range(5):
                msg = env.send(0, "x")
                assert msg.msg_id not in ids
                ids.add(msg.msg_id)


def test_schedule_after_fires_on_the_loop():
    async def go():
        env = _env()
        fired = asyncio.Event()
        handle = env.schedule_after(0.01, fired.set)
        assert handle.time >= env.now
        await asyncio.wait_for(fired.wait(), timeout=2)

    asyncio.run(go())


def test_cancelled_timer_does_not_fire():
    async def go():
        env = _env()
        fired = []
        handle = env.schedule_after(0.02, lambda: fired.append(1))
        handle.cancel()
        assert handle.cancelled
        await asyncio.sleep(0.08)
        assert fired == []

    asyncio.run(go())


def test_trace_roundtrip_through_merge(tmp_path):
    path_a = str(tmp_path / "a.jsonl")
    path_b = str(tmp_path / "b.jsonl")
    with open(path_a, "w", encoding="utf-8") as fh:
        trace = LiveTrace(fh)
        trace.record(1.0, EventKind.SEND, 0, value=("done", 3, 12))
        trace.record(3.0, EventKind.OUTPUT, 0, value=("done", 3, 12))
    with open(path_b, "w", encoding="utf-8") as fh:
        trace = LiveTrace(fh)
        trace.record(2.0, EventKind.CRASH, 1, count=1)

    merged = merge_traces([path_a, path_b])
    events = merged.events()
    assert [e.kind for e in events] == [
        EventKind.SEND, EventKind.CRASH, EventKind.OUTPUT
    ]
    # Tuples survive the codec round trip (the oracles depend on it).
    assert merged.events(EventKind.OUTPUT)[0].get("value") == ("done", 3, 12)


class TestMonotonicAnchor:
    def test_explicit_anchor_defines_env_time(self):
        env = _env(epoch=time.time(), mono_anchor=time.monotonic() - 5.0)
        assert 4.9 < env.now < 5.2

    def test_now_never_consults_the_wall_clock(self, monkeypatch):
        """Regression for the negative-latency bug: after construction,
        env-time must be immune to wall-clock steps (NTP, VM resume)."""
        env = _env(epoch=time.time())
        before = env.now
        monkeypatch.setattr(time, "time", lambda: 0.0)   # step to 1970
        after = env.now
        assert after >= before
        assert after - before < 1.0

    def test_env_time_is_monotonic(self):
        env = _env(epoch=time.time())
        samples = [env.now for _ in range(100)]
        assert samples == sorted(samples)
        assert all(s >= 0.0 for s in samples)

    def test_default_anchor_matches_epoch_offset(self):
        env = _env(epoch=time.time() - 3.0)
        assert 2.9 < env.now < 3.3
