"""Operator rollback: orphan preservation, witnessed audit, crash windows.

The rewind itself is a multi-step durable transition, so it gets the same
treatment as the protocol's transitions: every enumerated
``operator-rollback`` crash point is fired mid-rewind and the startup
crawler must roll the image *forward* to the anchored frontier.
"""

import pytest

from repro.__main__ import main
from repro.live.rollback import (
    AUDIT_KEY,
    ORPHANS_KEY,
    RollbackError,
    rollback_cluster,
    rollback_storage,
)
from repro.live.storage import FileStableStorage
from repro.storage.intents import (
    OPERATOR_ROLLBACK,
    RECOVERED_ENTRIES_KEY,
    CrashPointReached,
    crash_points,
    heal,
)


def _populate(storage):
    """Two checkpoints, four stable entries, a durable clock frontier."""
    anchor = storage.checkpoints.take(
        1.0, {"uid": "a"}, 0, extras={"clock": {storage.pid: ("v0", 1)}}
    )
    for i in range(4):
        storage.log.append(i, 1, f"m{i}")
    storage.log.flush()
    later = storage.checkpoints.take(
        2.0, {"uid": "b"}, 4, extras={"clock": {storage.pid: ("v0", 5)}}
    )
    storage.put("stable_own", ("v0", 4))
    return anchor, later


def test_rollback_preserves_orphans_and_writes_witnessed_audit(tmp_path):
    path = str(tmp_path / "stable_p0.pickle")
    storage = FileStableStorage(0, path)
    anchor, later = _populate(storage)

    report = rollback_storage(
        storage, at=1.5, reason="bad deploy", witness="oncall"
    )
    assert report.anchor_ckpt_id == anchor.ckpt_id
    assert report.checkpoints_orphaned == 1
    assert report.log_entries_orphaned == 4

    # Primary structures rewound to the anchor frontier.
    assert [c.ckpt_id for c in storage.checkpoints] == [anchor.ckpt_id]
    assert storage.log.stable_length == 0
    assert storage.get("stable_own") == ("v0", 1)

    # Orphans are preserved -- moved, never deleted.
    area = storage.get(ORPHANS_KEY)
    assert len(area) == 1
    assert [c.ckpt_id for c in area[0]["checkpoints"]] == [later.ckpt_id]
    assert len(area[0]["entries"]) == 4
    assert area[0]["witness"] == "oncall"

    # The witnessed audit record is durable inside the image.
    audit = storage.get(AUDIT_KEY)
    assert audit[-1]["reason"] == "bad deploy"
    assert audit[-1]["witness"] == "oncall"
    assert audit[-1]["digest_before"] == report.digest_before
    assert report.digest_after is not None
    assert report.digest_after != report.digest_before

    # Everything round-trips through the file; the crawler is a no-op.
    reborn = FileStableStorage(0, path)
    assert heal(reborn) == []
    assert [c.ckpt_id for c in reborn.checkpoints] == [anchor.ckpt_id]
    assert len(reborn.get(ORPHANS_KEY)) == 1
    assert reborn.get(AUDIT_KEY)[-1]["witness"] == "oncall"


def test_dry_run_touches_nothing(tmp_path):
    path = str(tmp_path / "stable_p0.pickle")
    storage = FileStableStorage(0, path)
    _populate(storage)
    before = open(path, "rb").read()

    report = rollback_storage(storage, earliest=True, dry_run=True)
    assert report.dry_run
    assert report.digest_after is None
    assert report.checkpoints_orphaned == 1
    assert report.log_entries_orphaned == 4
    assert open(path, "rb").read() == before
    assert storage.get(ORPHANS_KEY) is None


def test_rollback_refuses_without_an_anchor(tmp_path):
    path = str(tmp_path / "stable_p0.pickle")
    storage = FileStableStorage(0, path)
    _populate(storage)
    with pytest.raises(RollbackError):
        rollback_storage(storage, at=0.5, reason="r", witness="w")
    with pytest.raises(RollbackError):
        rollback_cluster(str(tmp_path), 1, reason="r", witness="w")


@pytest.mark.parametrize("point", crash_points((OPERATOR_ROLLBACK,)))
def test_operator_rollback_crash_windows_heal_forward(tmp_path, point):
    """Kill the rewind at every persist boundary: the crawler must roll
    it forward to exactly the image a clean rewind produces."""
    ref = FileStableStorage(0, str(tmp_path / "ref.pickle"))
    _populate(ref)
    rollback_storage(ref, at=1.5, reason="r", witness="w")

    victim_path = str(tmp_path / "victim.pickle")
    victim = FileStableStorage(0, victim_path)
    _populate(victim)
    victim.arm_crash_point(point)
    with pytest.raises(CrashPointReached):
        rollback_storage(victim, at=1.5, reason="r", witness="w")

    reborn = FileStableStorage(0, victim_path)
    actions = heal(reborn)
    assert [a["action"] for a in actions] == ["rolled_forward"]
    assert actions[0]["kind"] == OPERATOR_ROLLBACK
    assert [c.ckpt_id for c in reborn.checkpoints] == [
        c.ckpt_id for c in ref.checkpoints
    ]
    assert reborn.log.stable_length == ref.log.stable_length
    assert reborn.get("stable_own") == ref.get("stable_own")
    # The point of no return is the orphan-preservation persist, so the
    # orphans are always durable by the time any window can kill us.
    area = reborn.get(ORPHANS_KEY)
    assert area and len(area[0]["entries"]) == 4
    # Operator orphans must never be re-presented to the protocol.
    assert reborn.get(RECOVERED_ENTRIES_KEY) in (None, [])


def test_rollback_cli(tmp_path):
    data = tmp_path / "data"
    data.mkdir()
    for pid in range(2):
        storage = FileStableStorage(
            pid, str(data / f"stable_p{pid}.pickle")
        )
        _populate(storage)

    base = [
        "rollback", "--data-dir", str(data), "-n", "2",
        "--reason", "drill", "--witness", "ops",
    ]
    assert main(base + ["--earliest", "--dry-run"]) == 0
    assert not (data / "rollback_audit.json").exists()

    assert main(base + ["--earliest"]) == 0
    assert (data / "rollback_audit.json").exists()
    for pid in range(2):
        storage = FileStableStorage(
            pid, str(data / f"stable_p{pid}.pickle")
        )
        assert len(storage.checkpoints) == 1
        assert len(storage.get(ORPHANS_KEY)) == 1

    # A missing image refuses the whole operation.
    assert main(
        ["rollback", "--data-dir", str(data), "-n", "3", "--earliest",
         "--reason", "drill", "--witness", "ops"]
    ) == 1


def test_live_rollback_round_trip(tmp_path):
    """Run a real cluster to completion, rewind every node to its
    earliest checkpoint, and restart the cluster over the rolled-back
    images.  Checkpoint 0 carries the bootstrap send log, so Remark-1
    retransmission re-drives the entire pipeline from scratch: the
    second run must pass the unchanged conformance oracles on its own
    trace, with every output matching the closed-form reference."""
    import shutil

    from repro.live.supervisor import LiveClusterSpec, run_cluster
    from repro.live.verify import check_live_run

    spec = LiveClusterSpec(n=3, jobs=9, run_seconds=3.0, linger=1.0)
    w1 = str(tmp_path / "run1")
    result1 = run_cluster(spec, w1)
    verdict1 = check_live_run(result1.trace, n=spec.n, jobs=spec.jobs)
    assert verdict1.ok, verdict1.summary()

    outcome = rollback_cluster(
        str(tmp_path / "run1" / "data"), spec.n,
        earliest=True, reason="drill", witness="ops",
    )
    assert set(outcome["reports"]) == {0, 1, 2}
    for report in outcome["reports"].values():
        assert report.checkpoints_orphaned >= 1
        assert report.digest_after != report.digest_before

    w2 = str(tmp_path / "run2")
    import os
    os.makedirs(w2)
    shutil.copytree(
        str(tmp_path / "run1" / "data"), os.path.join(w2, "data")
    )
    spec2 = LiveClusterSpec(n=3, jobs=9, run_seconds=4.5, linger=1.2)
    result2 = run_cluster(spec2, w2)
    verdict2 = check_live_run(result2.trace, n=spec2.n, jobs=spec2.jobs)
    assert verdict2.ok, verdict2.summary()
    # Every node recovered through on_restart over its rewound image and
    # the lost interval was regenerated, not resurrected: all nine jobs
    # recommitted with reference values in run 2's own trace.
    assert verdict2.restarts == 3
    assert verdict2.outputs_committed == spec2.jobs
    assert all(d["boot"] == 2 for d in result2.done.values())
    assert set(result2.exit_codes.values()) == {0}, result2.exit_codes
