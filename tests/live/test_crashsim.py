"""Live crash-window matrix: every enumerated point, a real self-SIGKILL.

The default subset exercises one window per heal policy (abort,
nothing-to-do, and the restart transition) in three cluster runs.  The
full :data:`~repro.storage.intents.LIVE_CRASH_POINTS` matrix -- twelve
cluster runs -- is CI's job: set ``REPRO_CRASHSIM_FULL=1`` to run it.
"""

import os

import pytest

from repro.live.supervisor import LiveCrashPlan
from repro.storage.intents import LIVE_CRASH_POINTS

from tests.live.crashsim import assert_healed, run_crash_point

FULL = bool(os.environ.get("REPRO_CRASHSIM_FULL"))


def test_flush_window_self_kill_heals_by_abort(tmp_path):
    """Boot-armed ``flush:log_flushed``: the node dies with a flushed log
    but an uncommitted flush intent; the respawn's crawler aborts it and
    the run recovers through the ordinary restart path."""
    result, verdict = run_crash_point("flush:log_flushed", str(tmp_path))
    assert [(p, pt) for p, pt, _ in result.point_kills] == [
        (1, "flush:log_flushed")
    ]
    assert verdict.ok, verdict.summary()
    assert verdict.crashes == 1
    assert result.done[1]["boot"] == 2
    assert_healed(result, "flush:log_flushed")
    assert set(result.exit_codes.values()) == {0}, result.exit_codes


def test_restart_window_self_kill_heals_and_dedups_the_token(tmp_path):
    """Respawn-armed ``restart:token_logged``: an ordinary SIGKILL brings
    the node into ``on_restart``, where the armed point kills it again
    between the token log and the restart checkpoint.  The third
    incarnation aborts the restart intent, relogs the token (absorbed by
    the dedupe), and completes recovery."""
    result, verdict = run_crash_point("restart:token_logged", str(tmp_path))
    assert [(p, pt) for p, pt, _ in result.point_kills] == [
        (1, "restart:token_logged")
    ]
    assert len(result.kills) == 2
    assert verdict.ok, verdict.summary()
    assert verdict.crashes == 2
    assert result.done[1]["boot"] == 3
    assert result.done[1]["token_log_dedups"] >= 1
    assert_healed(result, "restart:token_logged")
    assert set(result.exit_codes.values()) == {0}, result.exit_codes


def test_committed_window_needs_no_heal(tmp_path):
    """Boot-armed ``checkpoint:committed``: death lands on the first
    persist *after* the transition committed, so the image is complete
    and the crawler must not touch it."""
    result, verdict = run_crash_point("checkpoint:committed", str(tmp_path))
    assert [(p, pt) for p, pt, _ in result.point_kills] == [
        (1, "checkpoint:committed")
    ]
    assert verdict.ok, verdict.summary()
    assert result.done[1]["heal_actions"] == []
    assert result.done[1]["boot"] == 2
    assert_healed(result, "checkpoint:committed")
    assert set(result.exit_codes.values()) == {0}, result.exit_codes


@pytest.mark.skipif(
    not FULL, reason="full live crash matrix: set REPRO_CRASHSIM_FULL=1"
)
@pytest.mark.parametrize("point", LIVE_CRASH_POINTS)
def test_full_matrix_every_point_heals(point, tmp_path):
    """Arm every enumerated point in a real cluster.  Deterministic
    windows (checkpoint, flush, restart) must fire; opportunistic ones
    (rollback, compaction) fire only if the run reaches that transition
    -- either way the oracles must hold and, when the point fired, the
    heal must match the policy table."""
    kind = point.split(":", 1)[0]
    kwargs = {}
    if kind in ("rollback",):
        # Give the armed node a reason to roll back: a peer crash whose
        # recovery token can orphan it.
        kwargs["crashes"] = [LiveCrashPlan(pid=2, at=1.0, downtime=0.8)]
        kwargs["run_seconds"] = 5.5
    if kind in ("compaction",):
        kwargs.update(
            gossip_stability=True,
            gossip_interval=0.4,
            enable_gc=True,
            compact_history=True,
            run_seconds=5.5,
        )
    result, verdict = run_crash_point(point, str(tmp_path), **kwargs)
    assert verdict.ok, verdict.summary()
    assert_healed(result, point)
    assert set(result.exit_codes.values()) == {0}, result.exit_codes
