"""FileStableStorage: durability across simulated SIGKILLs.

A "crash" here is simply dropping the object and constructing a fresh one
over the same file -- exactly what a restarted live node does.
"""

import os
import pickle

import pytest

from repro.core.tokens import RecoveryToken
from repro.live.storage import FileStableStorage


@pytest.fixture
def path(tmp_path):
    return os.path.join(str(tmp_path), "stable_p0.pickle")


def test_fresh_storage_creates_no_file_until_a_write(path):
    FileStableStorage(0, path)
    assert not os.path.exists(path)


def test_kv_and_tokens_survive_reload(path):
    storage = FileStableStorage(0, path)
    storage.put("node_boots", 3)
    token = RecoveryToken(origin=1, version=2, timestamp=7)
    storage.log_token(token)

    reborn = FileStableStorage(0, path)
    assert reborn.get("node_boots") == 3
    assert reborn.tokens == [token]


def test_checkpoints_survive_reload(path):
    storage = FileStableStorage(0, path)
    ckpt = storage.checkpoints.take(1.5, ("snapshot",), 0, extras={"v": 1})
    reborn = FileStableStorage(0, path)
    latest = reborn.checkpoints.latest()
    assert latest.snapshot == ("snapshot",)
    assert latest.extras == {"v": 1}
    assert latest.ckpt_id == ckpt.ckpt_id
    # Ids keep advancing, they do not restart and collide.
    newer = reborn.checkpoints.take(2.0, ("snapshot2",), 0)
    assert newer.ckpt_id > ckpt.ckpt_id


def test_stable_log_survives_but_volatile_buffer_does_not(path):
    storage = FileStableStorage(0, path)
    storage.log.append(1, 1, "flushed")
    storage.log.flush()
    storage.log.append(2, 1, "unflushed")   # never flushed: must die

    reborn = FileStableStorage(0, path)
    entries = reborn.log.stable_entries()
    assert [e.payload for e in entries] == ["flushed"]
    assert reborn.log.volatile_length == 0
    assert reborn.log.stable_length == 1


def test_mid_write_crash_leaves_previous_image(path):
    storage = FileStableStorage(0, path)
    storage.put("k", "old")
    # Simulate dying mid-write: a half-written temp file next to a good
    # image.  The loader must read the good image and ignore the temp.
    with open(path + ".tmp", "wb") as fh:
        fh.write(b"garbage that is not a pickle")
    reborn = FileStableStorage(0, path)
    assert reborn.get("k") == "old"


def test_wrong_pid_is_rejected(path):
    storage = FileStableStorage(0, path)
    storage.put("k", 1)
    with pytest.raises(RuntimeError, match="belongs to pid 0"):
        FileStableStorage(1, path)


def test_unknown_format_version_is_rejected(path):
    with open(path, "wb") as fh:
        pickle.dump({"version": 999, "pid": 0}, fh)
    with pytest.raises(RuntimeError, match="format"):
        FileStableStorage(0, path)


def test_persist_count_tracks_durable_mutations_only(path):
    storage = FileStableStorage(0, path)
    base = storage.persist_count
    storage.log.append(1, 1, "volatile")      # volatile: no persist
    assert storage.persist_count == base
    storage.log.flush()                        # stable mutation: persists
    assert storage.persist_count == base + 1
    storage.put("k", 1)
    assert storage.persist_count == base + 2


# ---------------------------------------------------------------------------
# Group commit (flush_window > 0)
# ---------------------------------------------------------------------------
def test_window_coalesces_lazy_writes_into_one_fsync(path):
    import asyncio

    async def go():
        storage = FileStableStorage(0, path, flush_window=0.05)
        storage.put("seed", 1)                  # baseline image on disk
        base = storage.persist_count
        for i in range(5):
            storage.put_lazy("lazy", i)
        assert storage.persist_count == base    # still inside the window
        await asyncio.sleep(0.15)
        assert storage.persist_count == base + 1
        assert storage.window_flushes == 1
        return storage

    asyncio.run(go())
    reborn = FileStableStorage(0, path)
    assert reborn.get("lazy") == 4


def test_sync_hardens_the_window_immediately(path):
    import asyncio

    async def go():
        storage = FileStableStorage(0, path, flush_window=10.0)
        storage.put_lazy("k", "value")
        storage.sync()                          # clean-shutdown barrier
        base = storage.persist_count
        storage.sync()                          # nothing dirty: no fsync
        assert storage.persist_count == base

    asyncio.run(go())
    assert FileStableStorage(0, path).get("k") == "value"


def test_durable_barrier_hardens_pending_lazy_writes(path):
    import asyncio

    async def go():
        storage = FileStableStorage(0, path, flush_window=10.0)
        storage.put_lazy("lazy", "pending")
        storage.put("hard", "barrier")          # synchronous write
        # The barrier persisted the whole image, lazy value included,
        # and the scheduled window flush found nothing left to do.
        await asyncio.sleep(0)

    asyncio.run(go())
    reborn = FileStableStorage(0, path)
    assert reborn.get("lazy") == "pending"
    assert reborn.get("hard") == "barrier"


def test_lazy_write_without_event_loop_persists_immediately(path):
    storage = FileStableStorage(0, path, flush_window=0.05)
    storage.put_lazy("k", 1)                    # no loop: fall back to sync
    assert FileStableStorage(0, path).get("k") == 1


def test_zero_window_keeps_one_fsync_per_mutation(path):
    storage = FileStableStorage(0, path)
    base = storage.persist_count
    storage.put_lazy("a", 1)
    storage.put_lazy("b", 2)
    assert storage.persist_count == base + 2
    assert storage.window_flushes == 0


def test_log_token_dedupes_by_key_across_reloads(path):
    storage = FileStableStorage(0, path)
    token = RecoveryToken(origin=1, version=2, timestamp=7)
    assert storage.log_token(token, dedupe_key=(1, 2)) is True
    base = storage.persist_count
    assert storage.log_token(token, dedupe_key=(1, 2)) is False
    assert storage.persist_count == base        # duplicate: no fsync
    assert storage.tokens == [token]
    assert storage.token_log_dedups == 1

    reborn = FileStableStorage(0, path)
    assert reborn.log_token(token, dedupe_key=(1, 2)) is False
    assert reborn.tokens == [token]


def test_lazy_provider_snapshots_once_per_file_write(path):
    """mark_lazy_dirty is O(1): the provider runs at persist time, not
    per mutation, so a burst inside the window costs one snapshot."""
    import asyncio

    calls = []

    storage = FileStableStorage(0, path, flush_window=0.05)

    def provider():
        calls.append(1)
        return {"image": len(calls)}

    storage.register_lazy_provider("outbox", provider)
    baseline = len(calls)

    async def go():
        storage.mark_lazy_dirty()
        storage.mark_lazy_dirty()
        storage.mark_lazy_dirty()
        snapshots_before_flush = len(calls) - baseline
        await asyncio.sleep(0.15)
        return snapshots_before_flush

    snapshots_before_flush = asyncio.run(go())
    assert snapshots_before_flush == 0
    assert len(calls) - baseline == 1
    assert storage.lazy_writes == 3


def test_lazy_provider_value_visible_through_get(path):
    storage = FileStableStorage(0, path)
    storage.register_lazy_provider("outbox", lambda: {"n": 7})
    assert storage.get("outbox") == {"n": 7}


def test_lazy_provider_image_survives_reload(path):
    storage = FileStableStorage(0, path)
    state = {"n": 1}
    storage.register_lazy_provider("outbox", lambda: dict(state))
    state["n"] = 2
    storage.mark_lazy_dirty()   # window 0: persists immediately

    reloaded = FileStableStorage(0, path)
    assert reloaded.get("outbox") == {"n": 2}


def test_sync_barrier_materialises_pending_provider_state(path):
    storage = FileStableStorage(0, path, flush_window=10.0)
    state = {"n": 1}
    storage.register_lazy_provider("outbox", lambda: dict(state))
    state["n"] = 5
    storage.mark_lazy_dirty()   # parked in the window
    storage.sync()

    reloaded = FileStableStorage(0, path)
    assert reloaded.get("outbox") == {"n": 5}


# ---------------------------------------------------------------------------
# Regression: a failed persist must not silently drop the lazy tail
# ---------------------------------------------------------------------------
def _failing_once(storage):
    """Patch ``storage`` so its next file write raises, then recovers."""
    original = storage._durable_state
    calls = {"failed": False}

    def flaky():
        if not calls["failed"]:
            calls["failed"] = True
            raise OSError("disk full")
        return original()

    storage._durable_state = flaky
    return calls


def test_failed_persist_restores_dirty_flag(path):
    """Pre-fix, ``_persist`` cleared ``_dirty`` before the write: a
    transient I/O error dropped the pending lazy tail forever."""
    storage = FileStableStorage(0, path, flush_window=10.0)
    _failing_once(storage)
    with pytest.raises(OSError):
        storage.put_lazy("lazy", "precious")   # no loop: persists now
    assert storage.pending_lazy                # still owed to disk
    storage.sync()                             # retry succeeds
    assert not storage.pending_lazy
    assert FileStableStorage(0, path).get("lazy") == "precious"


def test_failed_window_persist_reschedules_and_retries(path):
    """Pre-fix, the window timer was cancelled before the write: a
    failed window flush left the dirty tail with no timer to retry it."""
    import asyncio

    async def go():
        storage = FileStableStorage(0, path, flush_window=0.05)
        storage.put("seed", 1)
        _failing_once(storage)
        storage.put_lazy("lazy", "precious")
        await asyncio.sleep(0.08)              # window fires; write fails
        assert storage.pending_lazy
        assert storage._flush_handle is not None   # rescheduled
        await asyncio.sleep(0.15)              # retry window fires
        assert not storage.pending_lazy
        assert storage.window_flushes == 2

    asyncio.run(go())
    assert FileStableStorage(0, path).get("lazy") == "precious"


# ---------------------------------------------------------------------------
# Regression: the rename itself must be made durable
# ---------------------------------------------------------------------------
def test_persist_fsyncs_the_directory(path):
    """``os.replace`` swaps the directory entry, but only a directory
    fsync makes the swap survive a host crash.  Pre-fix there was none."""
    storage = FileStableStorage(0, path)
    storage.put("k", 1)
    assert storage.persist_count == 1
    assert storage.dir_fsyncs == 1
    storage.put("k", 2)
    assert storage.dir_fsyncs == storage.persist_count == 2


# ---------------------------------------------------------------------------
# Regression: observability counters must survive a reload
# ---------------------------------------------------------------------------
def test_write_counters_survive_reload(path):
    """Pre-fix, ``_load`` dropped lazy_writes / window_flushes /
    token_log_dedups, so every restart zeroed the node's I/O telemetry."""
    import asyncio

    async def go():
        storage = FileStableStorage(0, path, flush_window=0.05)
        storage.put_lazy("lazy", 1)
        await asyncio.sleep(0.15)              # one window flush
        token = RecoveryToken(origin=1, version=2, timestamp=7)
        storage.log_token(token, dedupe_key=(1, 2))
        storage.log_token(token, dedupe_key=(1, 2))   # deduped, no write
        storage.put("barrier", 1)   # counters ride the next barrier
        return storage

    storage = asyncio.run(go())
    assert (storage.lazy_writes, storage.window_flushes,
            storage.token_log_dedups) == (1, 1, 1)

    reborn = FileStableStorage(0, path)
    assert reborn.lazy_writes == 1
    assert reborn.window_flushes == 1
    assert reborn.token_log_dedups == 1
