"""Length+CRC framing: round trips, EOF semantics, size cap, corruption."""

import asyncio
import struct
import zlib

import pytest

from repro.live.framing import (
    MAX_FRAME,
    OVERHEAD,
    FramingError,
    frame,
    read_frame,
    write_frame,
)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def _run(coro):
    return asyncio.run(coro)


def test_frame_prefixes_length_and_crc():
    framed = frame(b"abc")
    assert framed == struct.pack(">II", 3, zlib.crc32(b"abc")) + b"abc"
    assert len(framed) == OVERHEAD + 3


def test_frame_rejects_oversize():
    with pytest.raises(FramingError):
        frame(b"x" * (MAX_FRAME + 1))


def test_read_roundtrip():
    async def go():
        reader = _reader_with(frame(b"one") + frame(b"") + frame(b"two"))
        assert await read_frame(reader) == b"one"
        assert await read_frame(reader) == b""
        assert await read_frame(reader) == b"two"
        assert await read_frame(reader) is None   # clean EOF

    _run(go())


def test_eof_at_boundary_is_none_not_error():
    async def go():
        assert await read_frame(_reader_with(b"")) is None

    _run(go())


def test_truncated_header_raises():
    async def go():
        with pytest.raises(FramingError):
            await read_frame(_reader_with(b"\x00\x00"))

    _run(go())


def test_payload_bit_flip_fails_crc():
    async def go():
        data = bytearray(frame(b"payload-bytes"))
        data[OVERHEAD + 3] ^= 0x10   # flip one payload bit
        with pytest.raises(FramingError, match="CRC"):
            await read_frame(_reader_with(bytes(data)))

    _run(go())


def test_crc_bit_flip_in_header_rejected():
    async def go():
        data = bytearray(frame(b"payload-bytes"))
        data[5] ^= 0x01   # flip a bit inside the CRC field itself
        with pytest.raises(FramingError, match="CRC"):
            await read_frame(_reader_with(bytes(data)))

    _run(go())


def test_truncated_body_raises():
    async def go():
        data = frame(b"hello")[:-2]
        with pytest.raises(FramingError):
            await read_frame(_reader_with(data))

    _run(go())


def test_oversize_incoming_frame_rejected_before_read():
    async def go():
        header = struct.pack(">II", MAX_FRAME + 1, 0)
        with pytest.raises(FramingError):
            await read_frame(_reader_with(header))

    _run(go())


def test_write_and_read_over_a_real_socket():
    async def go():
        received = []
        done = asyncio.Event()

        async def handler(reader, writer):
            while True:
                data = await read_frame(reader)
                if data is None:
                    break
                received.append(data)
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        await write_frame(writer, b"first")
        await write_frame(writer, b"second")
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(done.wait(), timeout=5)
        server.close()
        await server.wait_closed()
        assert received == [b"first", b"second"]

    _run(go())


# ---------------------------------------------------------------------------
# BufferedFrameReader: bulk reads, frame batches, EOF semantics
# ---------------------------------------------------------------------------
def test_buffered_reader_returns_all_buffered_frames_in_one_batch():
    from repro.live.framing import BufferedFrameReader

    async def go():
        reader = _reader_with(frame(b"one") + frame(b"") + frame(b"two"))
        buffered = BufferedFrameReader(reader)
        frames = []
        while True:
            batch = await buffered.read_batch()
            if batch is None:
                break
            frames.extend(batch)
        assert frames == [b"one", b"", b"two"]

    _run(go())


def test_buffered_reader_clean_eof_is_none():
    from repro.live.framing import BufferedFrameReader

    async def go():
        assert await BufferedFrameReader(_reader_with(b"")).read_batch() is None

    _run(go())


def test_buffered_reader_eof_mid_frame_raises():
    from repro.live.framing import BufferedFrameReader

    async def go():
        buffered = BufferedFrameReader(_reader_with(frame(b"hello")[:-2]))
        with pytest.raises(FramingError):
            await buffered.read_batch()

    _run(go())


def test_buffered_reader_eof_mid_header_raises():
    from repro.live.framing import BufferedFrameReader

    async def go():
        buffered = BufferedFrameReader(_reader_with(b"\x00\x00"))
        with pytest.raises(FramingError):
            await buffered.read_batch()

    _run(go())


def test_buffered_reader_rejects_oversize_frame():
    from repro.live.framing import BufferedFrameReader

    async def go():
        header = struct.pack(">II", MAX_FRAME + 1, 0)
        buffered = BufferedFrameReader(_reader_with(header))
        with pytest.raises(FramingError):
            await buffered.read_batch()

    _run(go())


def test_buffered_reader_detects_payload_corruption():
    from repro.live.framing import BufferedFrameReader

    async def go():
        data = bytearray(frame(b"good") + frame(b"corrupt-me"))
        data[-2] ^= 0x40   # flip a bit in the second frame's payload
        buffered = BufferedFrameReader(_reader_with(bytes(data)))
        with pytest.raises(FramingError, match="CRC"):
            await buffered.read_batch()

    _run(go())


def test_buffered_reader_reassembles_frames_split_across_reads():
    from repro.live.framing import BufferedFrameReader

    async def go():
        data = frame(b"alpha") + frame(b"beta")
        reader = asyncio.StreamReader()
        buffered = BufferedFrameReader(reader)
        reader.feed_data(data[:3])   # partial header
        task = asyncio.ensure_future(buffered.read_batch())
        await asyncio.sleep(0.01)
        assert not task.done()
        reader.feed_data(data[3:7])  # header + part of body
        await asyncio.sleep(0.01)
        reader.feed_data(data[7:])
        reader.feed_eof()
        frames = list(await task)
        while True:
            batch = await buffered.read_batch()
            if batch is None:
                break
            frames.extend(batch)
        assert frames == [b"alpha", b"beta"]

    _run(go())


def test_buffered_reader_interoperates_with_write_frame_socket():
    from repro.live.framing import BufferedFrameReader

    async def go():
        received = []
        done = asyncio.Event()

        async def handler(reader, writer):
            buffered = BufferedFrameReader(reader)
            while True:
                batch = await buffered.read_batch()
                if batch is None:
                    break
                received.extend(batch)
            writer.close()
            done.set()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        _, writer = await asyncio.open_connection("127.0.0.1", port)
        for payload in (b"a", b"bb", b"ccc"):
            await write_frame(writer, payload)
        writer.close()
        await writer.wait_closed()
        await asyncio.wait_for(done.wait(), timeout=5)
        server.close()
        await server.wait_closed()
        assert received == [b"a", b"bb", b"ccc"]

    _run(go())
