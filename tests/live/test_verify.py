"""check_live_run: the trace oracles for live executions."""

from repro.apps.applications import mix64
from repro.live.verify import check_live_run, pipeline_reference
from repro.runtime.trace import EventKind, SimTrace


def _good_trace(n=2, jobs=2):
    trace = SimTrace()
    expected = pipeline_reference(n, jobs)
    for job, value in expected.items():
        trace.record(1.0 + job, EventKind.OUTPUT, n - 1,
                     value=("done", job, value))
    return trace


def test_reference_matches_mix64_chain():
    expected = pipeline_reference(3, 1)
    value = mix64(0, 0)
    value = mix64(value, 2)
    value = mix64(value, 3)
    assert expected[0] == value


def test_clean_run_passes():
    verdict = check_live_run(_good_trace(), n=2, jobs=2)
    assert verdict.ok, verdict.failures
    assert verdict.outputs_committed == 2
    assert verdict.summary().startswith("PASS")


def test_missing_job_fails():
    trace = SimTrace()
    expected = pipeline_reference(2, 2)
    trace.record(1.0, EventKind.OUTPUT, 1, value=("done", 0, expected[0]))
    verdict = check_live_run(trace, n=2, jobs=2)
    assert not verdict.ok
    assert any("never produced output" in f for f in verdict.failures)


def test_orphan_output_value_fails():
    trace = _good_trace()
    trace.record(9.0, EventKind.OUTPUT, 1, value=("done", 0, 12345))
    verdict = check_live_run(trace, n=2, jobs=2)
    assert not verdict.ok
    assert any("orphan output" in f for f in verdict.failures)


def test_duplicate_outputs_are_counted_but_allowed():
    trace = _good_trace()
    expected = pipeline_reference(2, 2)
    trace.record(9.0, EventKind.OUTPUT, 1, value=("done", 0, expected[0]))
    verdict = check_live_run(trace, n=2, jobs=2)
    assert verdict.ok
    assert verdict.duplicate_outputs == 1


def test_crash_without_restart_fails():
    trace = _good_trace()
    trace.record(0.5, EventKind.CRASH, 0, count=1)
    verdict = check_live_run(trace, n=2, jobs=2)
    assert not verdict.ok
    assert any("never restarted" in f for f in verdict.failures)
    assert any("without broadcasting a token" in f
               for f in verdict.failures)


def test_crash_with_full_recovery_passes():
    trace = _good_trace()
    trace.record(0.5, EventKind.CRASH, 0, count=1)
    trace.record(0.9, EventKind.TOKEN_SEND, 0, version=1)
    trace.record(1.0, EventKind.RESTART, 0, version=1)
    trace.record(1.0, EventKind.CHECKPOINT, 0)
    verdict = check_live_run(trace, n=2, jobs=2)
    assert verdict.ok, verdict.failures
    assert verdict.crashes == 1
    assert verdict.restarts == 1


def test_restart_without_checkpoint_fails():
    trace = _good_trace()
    trace.record(0.5, EventKind.CRASH, 0, count=1)
    trace.record(0.9, EventKind.TOKEN_SEND, 0, version=1)
    trace.record(1.0, EventKind.RESTART, 0, version=1)
    verdict = check_live_run(trace, n=2, jobs=2)
    assert not verdict.ok
    assert any("post-restart checkpoint" in f for f in verdict.failures)
