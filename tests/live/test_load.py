"""Open-loop load generator: schedule honesty, engine-agnosticism, gates.

The source's contract is the deterministic injection schedule
``intended_time(j) = start_at + j/rate``: latency is graded against it,
so these tests pin (a) the schedule itself, (b) that the source runs
unmodified on the simulator (it only touches the ``RuntimeEnv`` surface),
and (c) the sweep's CI gates (floor, trend, negative-latency detection).
The live-engine smoke runs one real cluster at a modest rate.
"""

import json
import os

import pytest

from repro.analysis import check_recovery
from repro.apps.applications import mix64
from repro.core.recovery import DamaniGargProcess
from repro.live.load import (
    LoadPipelineApp,
    OpenLoopSource,
    append_trend_row,
    check_load_payload,
    check_trend,
    job_latencies,
    load_spec,
    run_load_bench,
)
from repro.live.verify import pipeline_reference
from repro.protocols.base import ProtocolConfig
from repro.runtime.trace import EventKind
from repro.sim.kernel import Simulator
from repro.sim.network import DeliveryOrder, Network, ScriptedLatency
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTrace


def test_intended_schedule_is_deterministic():
    source = OpenLoopSource.__new__(OpenLoopSource)
    source.rate = 50.0
    source.start_at = 0.25
    assert source.intended_time(0) == 0.25
    assert source.intended_time(50) == pytest.approx(1.25)
    assert source.intended_time(100) == pytest.approx(2.25)


def test_source_rejects_bad_parameters():
    with pytest.raises(ValueError):
        OpenLoopSource(object(), rate=0.0, jobs=1)
    with pytest.raises(ValueError):
        OpenLoopSource(object(), rate=10.0, jobs=-1)


def test_load_app_has_no_bootstrap_burst():
    class Ctx:
        def __init__(self):
            self.sent = []

        def send(self, dst, payload):
            self.sent.append((dst, payload))

    ctx = Ctx()
    LoadPipelineApp(jobs=8).bootstrap(0, 4, ctx)
    assert ctx.sent == []


def _run_sim_load(n=4, rate=20.0, jobs=10, start_at=1.0, horizon=400.0):
    """The source on the deterministic simulator: same protocol objects,
    same ``RuntimeEnv`` surface, zero real time."""
    sim = Simulator()
    trace = SimTrace()
    network = Network(
        sim,
        n,
        streams=RandomStreams(0),
        latency=ScriptedLatency(default=1.0),
        order=DeliveryOrder.RANDOM,
        trace=trace,
    )
    hosts = [ProcessHost(pid, sim, network, trace) for pid in range(n)]
    protocols = [
        DamaniGargProcess(
            host.runtime_env(),
            LoadPipelineApp(jobs=jobs),
            ProtocolConfig(checkpoint_interval=1e9, flush_interval=1e9),
        )
        for host in hosts
    ]
    for host in hosts:
        host.start()
    source = OpenLoopSource(
        protocols[0], rate=rate, jobs=jobs, start_at=start_at
    )
    source.start()
    sim.run(until=horizon)
    for protocol in protocols:
        protocol.halt_periodic_tasks()
    sim.drain()
    return source, trace, protocols, sim, network, hosts


def test_source_runs_on_the_simulator():
    jobs, rate, start_at = 10, 20.0, 1.0
    source, trace, protocols, *_ = _run_sim_load(
        jobs=jobs, rate=rate, start_at=start_at
    )
    assert source.injected == jobs
    assert source.done

    expected = pipeline_reference(4, jobs)
    outputs = {
        e.get("value")[1]: e.get("value")[2]
        for e in trace.events(EventKind.OUTPUT)
    }
    assert outputs == expected

    latencies = job_latencies(trace, rate=rate, start_at=start_at)
    assert sorted(latencies) == list(range(jobs))
    assert all(v >= 0.0 for v in latencies.values())


def test_sim_injections_follow_the_open_loop_schedule():
    jobs, rate, start_at = 10, 20.0, 1.0
    source, trace, *_ = _run_sim_load(jobs=jobs, rate=rate, start_at=start_at)
    # pid 0 sends nothing but its injections here (no checkpoints, no
    # crashes, no tokens), so its SEND events are the injection schedule.
    sends = trace.events(EventKind.SEND, pid=0)
    assert len(sends) == jobs
    for j, event in enumerate(sends):
        intended = start_at + j / rate
        assert event.time == pytest.approx(intended), (
            f"job {j} injected at t={event.time}, schedule says {intended}"
        )


def test_sim_load_run_passes_the_recovery_oracle():
    source, trace, protocols, sim, network, hosts = _run_sim_load()

    class Run:
        pass

    run = Run()
    run.trace = trace
    run.protocols = protocols
    run.sim = sim
    run.network = network
    run.hosts = hosts
    assert check_recovery(run).ok


def test_injected_payloads_match_the_bootstrap_wire_format():
    """The oracle's closed-form reference only grades load runs because
    an injected job is identical to a bootstrap job."""

    class FakeEnv:
        now = 10.0   # every intended time has passed: one burst

        def schedule_after(self, delay, callback, **kwargs):
            callback()

    class FakeProtocol:
        env = FakeEnv()

        def __init__(self):
            self.sent = []

        def inject_app_send(self, dst, payload):
            self.sent.append((dst, payload))

    protocol = FakeProtocol()
    source = OpenLoopSource(protocol, rate=100.0, jobs=3, start_at=0.0)
    source.start()
    assert source.done
    for j, (dst, payload) in enumerate(protocol.sent):
        assert dst == 1
        assert payload.job_id == j
        assert payload.stage == 1
        assert payload.value == mix64(j, 0)


def test_load_spec_budgets_drain_for_the_backlog():
    quick = load_spec(n=4, rate=10.0, duration=1.0)
    saturated = load_spec(n=4, rate=2000.0, duration=1.0)
    assert quick.jobs == 10
    assert saturated.jobs == 2000
    assert saturated.run_seconds > quick.run_seconds
    assert saturated.app["kind"] == "load"
    # Pruning must be on: open-loop runs would otherwise grow the
    # storage image with every delivered message.
    assert saturated.gossip_stability
    assert saturated.enable_gc
    assert saturated.compact_history


# ---------------------------------------------------------------------------
# CI gates (pure functions)
# ---------------------------------------------------------------------------
def _payload(ok=True, lat_min=0.001, rate=300.0):
    return {
        "n": 4,
        "duration_s": 1.0,
        "offered_rates": [100.0],
        "max_sustained_rate": 100.0,
        "peak_deliveries_per_second": rate,
        "cpus": 1,
        "scenarios": {
            "rate_100": {
                "ok": ok,
                "verdict": "PASS" if ok else "FAIL: boom",
                "deliveries_per_second": rate,
                "job_latency_s": {"min": lat_min},
            }
        },
    }


def test_check_load_payload_passes_a_clean_sweep():
    assert check_load_payload(_payload(), min_deliveries_per_sec=100.0) == []


def test_check_load_payload_flags_oracle_failure():
    problems = check_load_payload(
        _payload(ok=False), min_deliveries_per_sec=0.0
    )
    assert any("oracle FAIL" in p for p in problems)


def test_check_load_payload_flags_negative_latency():
    problems = check_load_payload(
        _payload(lat_min=-0.004), min_deliveries_per_sec=0.0
    )
    assert any("negative job latency" in p for p in problems)


def test_check_load_payload_flags_throughput_below_floor():
    problems = check_load_payload(
        _payload(rate=50.0), min_deliveries_per_sec=100.0
    )
    assert any("below the floor" in p for p in problems)


def test_trend_rows_append_and_gate(tmp_path):
    path = os.path.join(tmp_path, "trend.jsonl")
    assert check_trend(path, _payload()) == []   # no history yet

    append_trend_row(path, _payload(rate=1000.0))
    append_trend_row(path, _payload(rate=900.0))
    with open(path, "r", encoding="utf-8") as fh:
        rows = [json.loads(line) for line in fh]
    assert [r["peak_deliveries_per_second"] for r in rows] == [1000.0, 900.0]

    assert check_trend(path, _payload(rate=800.0)) == []   # within tolerance
    problems = check_trend(path, _payload(rate=100.0))
    assert problems and "regressed" in problems[0]


# ---------------------------------------------------------------------------
# Live-engine smoke
# ---------------------------------------------------------------------------
def test_live_load_smoke(tmp_path):
    """One real cluster at a modest offered rate: oracle PASS, honest
    non-negative latencies, sane throughput accounting."""
    payload = run_load_bench(
        str(tmp_path), n=3, rates=(40.0,), duration=1.0, start_at=0.25
    )
    (scenario,) = payload["scenarios"].values()
    assert scenario["ok"], scenario["verdict"]
    assert scenario["injected"] == scenario["jobs"] == 40
    assert scenario["outputs_committed"] == 40

    lat = scenario["job_latency_s"]
    assert lat["min"] is not None and lat["min"] >= 0.0
    assert lat["min"] <= lat["p50"] <= lat["p99"] <= lat["max"]

    assert scenario["active_seconds"] > 0
    assert scenario["deliveries_per_second"] > 0
    assert scenario["deliveries_per_second_wall"] > 0
    # Active window excludes spawn/linger overhead, so it can only give
    # a throughput reading at or above the wall-clock one.
    assert (
        scenario["deliveries_per_second"]
        >= scenario["deliveries_per_second_wall"]
    )
    assert check_load_payload(payload, min_deliveries_per_sec=10.0) == []
