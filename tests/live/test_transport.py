"""MeshTransport: delivery, acknowledgement, dedup, durable retransmit."""

import asyncio
import os
import socket

import pytest

from repro.live.storage import FileStableStorage
from repro.live.transport import MeshTransport
from repro.runtime.message import NetworkMessage


class Collector:
    """Minimal protocol: records every delivered message."""

    def __init__(self):
        self.received = []

    def on_network_message(self, msg):
        self.received.append(msg)


def _free_ports(count):
    sockets = []
    try:
        for _ in range(count):
            s = socket.socket()
            s.bind(("127.0.0.1", 0))
            sockets.append(s)
        return [s.getsockname()[1] for s in sockets]
    finally:
        for s in sockets:
            s.close()


def _msg(msg_id, src, dst, payload):
    return NetworkMessage(
        msg_id=msg_id, src=src, dst=dst, kind="app",
        payload=payload, send_time=0.0,
    )


async def _wait_until(predicate, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition not reached")
        await asyncio.sleep(0.01)


def test_basic_delivery_and_ack():
    async def go():
        ports = _free_ports(2)
        a = MeshTransport(0, 2, ports)
        b = MeshTransport(1, 2, ports)
        ca, cb = Collector(), Collector()
        a.attach(ca)
        b.attach(cb)
        await a.start()
        await b.start()
        try:
            a.send(1, _msg(1, 0, 1, "one"))
            a.send(1, _msg(2, 0, 1, "two"))
            b.send(0, _msg(3, 1, 0, "three"))
            await _wait_until(lambda: len(cb.received) == 2)
            await _wait_until(lambda: len(ca.received) == 1)
            assert [m.payload for m in cb.received] == ["one", "two"]
            assert ca.received[0].payload == "three"
            # Acks drain both outboxes.
            await _wait_until(lambda: a.unacked == 0 and b.unacked == 0)
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(go())


def test_self_send_delivers_locally():
    async def go():
        ports = _free_ports(1)
        a = MeshTransport(0, 1, ports)
        c = Collector()
        a.attach(c)
        a.send(0, _msg(1, 0, 0, "self"))
        await _wait_until(lambda: len(c.received) == 1)
        assert c.received[0].payload == "self"

    asyncio.run(go())


def test_send_before_peer_is_up_is_buffered():
    async def go():
        ports = _free_ports(2)
        a = MeshTransport(0, 2, ports)
        a.attach(Collector())
        await a.start()
        try:
            a.send(1, _msg(1, 0, 1, "early"))
            await asyncio.sleep(0.2)   # peer not listening yet
            b = MeshTransport(1, 2, ports)
            cb = Collector()
            b.attach(cb)
            await b.start()
            try:
                await _wait_until(lambda: len(cb.received) == 1)
                assert cb.received[0].payload == "early"
            finally:
                await b.stop()
        finally:
            await a.stop()

    asyncio.run(go())


def test_durable_outbox_survives_sender_restart(tmp_path):
    """A SIGKILLed sender must retransmit unacknowledged messages."""

    async def go():
        ports = _free_ports(2)
        storage_path = os.path.join(str(tmp_path), "stable_p0.pickle")

        # Incarnation 1 sends while the receiver is down, then "crashes"
        # (we just drop the transport without stopping cleanly).
        storage = FileStableStorage(0, storage_path)
        a1 = MeshTransport(0, 2, ports, boot=1, storage=storage)
        a1.attach(Collector())
        a1.send(1, _msg(1, 0, 1, "persisted"))
        assert a1.unacked == 1

        # Incarnation 2 reloads the outbox from storage and delivers.
        storage2 = FileStableStorage(0, storage_path)
        a2 = MeshTransport(0, 2, ports, boot=2, storage=storage2)
        a2.attach(Collector())
        assert a2.unacked == 1, "outbox should reload from stable storage"
        b = MeshTransport(1, 2, ports)
        cb = Collector()
        b.attach(cb)
        await a2.start()
        await b.start()
        try:
            await _wait_until(lambda: len(cb.received) == 1)
            assert cb.received[0].payload == "persisted"
            await _wait_until(lambda: a2.unacked == 0)
        finally:
            await a2.stop()
            await b.stop()

    asyncio.run(go())


def test_receiver_dedups_by_sender_boot():
    async def go():
        ports = _free_ports(2)
        b = MeshTransport(1, 2, ports)
        cb = Collector()
        b.attach(cb)
        await b.start()

        # Same boot, same seq twice: second copy acked but not delivered.
        a1 = MeshTransport(0, 2, ports, boot=1)
        a1.attach(Collector())
        await a1.start()
        try:
            a1.send(1, _msg(1, 0, 1, "m"))
            await _wait_until(lambda: len(cb.received) == 1)
            await _wait_until(lambda: a1.unacked == 0)
        finally:
            await a1.stop()

        # A NEW boot restarts seq numbering; its messages must deliver.
        a2 = MeshTransport(0, 2, ports, boot=2)
        a2.attach(Collector())
        await a2.start()
        try:
            a2.send(1, _msg(2, 0, 1, "after-restart"))
            await _wait_until(lambda: len(cb.received) == 2)
            assert cb.received[1].payload == "after-restart"
        finally:
            await a2.stop()
            await b.stop()

    asyncio.run(go())


def test_messages_before_attach_are_buffered():
    async def go():
        ports = _free_ports(1)
        a = MeshTransport(0, 1, ports)
        a.send(0, _msg(1, 0, 0, "early"))
        await asyncio.sleep(0.05)
        c = Collector()
        a.attach(c)
        await _wait_until(lambda: len(c.received) == 1)

    asyncio.run(go())


def test_double_attach_rejected():
    ports = _free_ports(1)
    a = MeshTransport(0, 1, ports)
    a.attach(Collector())
    with pytest.raises(RuntimeError):
        a.attach(Collector())


def test_reload_heals_seq_counter_behind_outbox(tmp_path):
    # A crash can land between an outbox append reaching disk and the
    # matching counter update: the reloaded counter would then re-issue
    # a seq already occupied in the reloaded outbox, and the receiver's
    # dedup cursor would silently swallow the second message.  The
    # constructor must never hand out a seq at or below the outbox max.
    from repro.live.transport import _OUTBOX_KEY

    path = os.path.join(str(tmp_path), "stable_p0.pickle")
    storage = FileStableStorage(0, path)
    stale = _msg(900, 0, 1, "survived the crash")
    storage.put_lazy(
        _OUTBOX_KEY,
        {"entries": {1: [(36, stale)]}, "next_seq": {1: 36}},
    )

    ports = _free_ports(2)
    reborn = MeshTransport(
        0, 2, ports, boot=2, storage=FileStableStorage(0, path)
    )
    assert reborn._outbox[1] == [(36, stale)]
    assert reborn._next_seq[1] == 37


def test_outbox_and_seq_persist_in_one_image(tmp_path):
    # The counter and the outbox share one storage key so a single
    # atomic image write covers both -- there is no window in which one
    # is durable without the other.
    path = os.path.join(str(tmp_path), "stable_p0.pickle")
    storage = FileStableStorage(0, path)
    transport = MeshTransport(0, 2, _free_ports(2), storage=storage)
    transport.send(1, _msg(1, 0, 1, "never acked"))
    transport.send(1, _msg(2, 0, 1, "also never acked"))

    reborn = MeshTransport(
        0, 2, _free_ports(2), boot=2, storage=FileStableStorage(0, path)
    )
    assert [seq for seq, _ in reborn._outbox[1]] == [1, 2]
    assert reborn._next_seq[1] == 3


def test_burst_is_delivered_in_order_and_fully_acked():
    """A batch of frames arriving in one read must produce exactly one
    cumulative ack that drains the sender's whole outbox."""

    async def go():
        ports = _free_ports(2)
        a = MeshTransport(0, 2, ports)
        b = MeshTransport(1, 2, ports)
        ca, cb = Collector(), Collector()
        a.attach(ca)
        b.attach(cb)
        await a.start()
        await b.start()
        try:
            for i in range(80):
                a.send(1, _msg(i + 1, 0, 1, f"m{i}"))
            await _wait_until(lambda: len(cb.received) == 80)
            assert [m.payload for m in cb.received] == [
                f"m{i}" for i in range(80)
            ]
            await _wait_until(lambda: a.unacked == 0)
        finally:
            await a.stop()
            await b.stop()

    asyncio.run(go())


def test_lazy_provider_keeps_outbox_durable(tmp_path):
    """The provider-backed outbox image must be materialised into the
    durable file even though sends only mark the storage dirty."""

    async def go():
        ports = _free_ports(2)
        path = os.path.join(tmp_path, "stable_p0.pickle")
        storage = FileStableStorage(0, path)
        a = MeshTransport(0, 2, ports, storage=storage)
        a.attach(Collector())
        await a.start()
        try:
            a.send(1, _msg(1, 0, 1, "unacked"))   # peer never comes up
            await asyncio.sleep(0.05)
        finally:
            await a.stop()
        storage.sync()

        reloaded = FileStableStorage(0, path)
        b = MeshTransport(1, 2, ports)
        cb = Collector()
        b.attach(cb)
        a2 = MeshTransport(0, 2, ports, storage=reloaded)
        a2.attach(Collector())
        await b.start()
        await a2.start()
        try:
            await _wait_until(lambda: len(cb.received) == 1)
            assert cb.received[0].payload == "unacked"
        finally:
            await a2.stop()
            await b.stop()

    asyncio.run(go())


def test_redial_rate_is_bounded_by_capped_jittered_backoff():
    """Dialing a dead peer must back off, not busy-spin: over ~1.2s the
    dial count stays in the single digits (a tight retry loop would rack
    up hundreds) while still retrying more than once."""
    async def go():
        ports = _free_ports(2)       # port 1 is free but nobody listens
        a = MeshTransport(0, 2, ports)
        a.attach(Collector())
        await a.start()
        try:
            a.send(1, _msg(1, 0, 1, "into the void"))
            await asyncio.sleep(1.2)
            # Backoff floor 0.05 doubling to a 2.0 ceiling with full
            # jitter: worst case ~2 + sum of shrinking sleeps.
            assert 2 <= a.dial_attempts <= 25, a.dial_attempts
        finally:
            await a.stop()

    asyncio.run(go())


def test_blocked_link_does_not_dial_at_all():
    """A fault-blocked link polls the block flag instead of dialing --
    the partition looks like an unreachable host, not a refused port."""
    class _Blocked:
        def send_blocked(self, dst):
            return True

        def corrupt_frame(self, dst, framed):
            return framed

        def gray_penalty(self, dst, nbytes):
            return 0.0

    async def go():
        ports = _free_ports(2)
        a = MeshTransport(0, 2, ports, faults=_Blocked())
        a.attach(Collector())
        await a.start()
        try:
            a.send(1, _msg(1, 0, 1, "never sent"))
            await asyncio.sleep(0.4)
            assert a.dial_attempts == 0
        finally:
            await a.stop()

    asyncio.run(go())
