"""Live fault injection: plan vocabulary, injector units, cluster runs.

The expensive end-to-end tests each run one real 3-process TCP cluster
under a different fault class -- partition+heal, asymmetric drop, gray
link, disk fault -- and grade the merged trace with the *unchanged*
closed-form oracles.  The differential test locks the live failure model
to the simulator's: the same heal-before-drain partition schedule runs
on both engines and both must pass the same oracle function.
"""

import json

import pytest

from repro.live.faults import (
    LiveCorruptFramePlan,
    LiveDiskFaultPlan,
    LiveFaultPlan,
    LiveGrayLinkPlan,
    LiveLinkDropPlan,
    LivePartitionPlan,
    NodeFaults,
)
from repro.live.supervisor import LiveClusterSpec, run_cluster
from repro.live.verify import check_live_run

PARTITION_AT, PARTITION_HEAL = 0.5, 1.4


def _full_plan() -> LiveFaultPlan:
    return LiveFaultPlan(
        partitions=(
            LivePartitionPlan(at=0.5, groups=((0,), (1, 2)), heal_at=1.5),
        ),
        drops=(LiveLinkDropPlan(0, 1, 0.2, 0.9),),
        gray_links=(
            LiveGrayLinkPlan(
                1, 2, 0.0, 2.0, delay=0.01, jitter=0.005, bandwidth=1e6
            ),
        ),
        disk_faults=(LiveDiskFaultPlan(2, 0.5, 1.0, mode="fail"),),
        corrupt_frames=(
            LiveCorruptFramePlan(0, 2, 0.0, 1.0, rate=0.5, seed=7,
                                 mode="mixed"),
        ),
    )


# ---------------------------------------------------------------------------
# Plan vocabulary: JSON round-trip, validation, per-node compilation
# ---------------------------------------------------------------------------
def test_fault_plan_round_trips_through_json():
    plan = _full_plan()
    data = json.loads(json.dumps(plan.to_dict()))
    assert LiveFaultPlan.from_dict(data) == plan


def test_fault_plan_validate_rejects_out_of_range_pids():
    plan = _full_plan()
    plan.validate(3)
    with pytest.raises(ValueError, match="outside"):
        plan.validate(2)


def test_bad_windows_are_rejected_at_construction():
    with pytest.raises(ValueError):
        LivePartitionPlan(at=1.0, groups=((0,), (1,)), heal_at=0.5)
    with pytest.raises(ValueError):
        LivePartitionPlan(at=0.0, groups=((0, 1), (1, 2)), heal_at=1.0)
    with pytest.raises(ValueError):
        LiveLinkDropPlan(0, 0, 0.0, 1.0)
    with pytest.raises(ValueError):
        LiveDiskFaultPlan(0, 0.0, 1.0, mode="explode")
    with pytest.raises(ValueError):
        LiveCorruptFramePlan(0, 1, 0.0, 1.0, rate=1.5)


def test_partition_compiles_to_cross_group_blocks_only():
    plan = LiveFaultPlan(
        partitions=(
            LivePartitionPlan(at=0.5, groups=((0,), (1, 2)), heal_at=1.5),
        ),
    )
    cfg0 = plan.for_node(0, 3)
    cfg1 = plan.for_node(1, 3)
    blocked0 = {dst for dst, _, _ in cfg0["blocked"]}
    blocked1 = {dst for dst, _, _ in cfg1["blocked"]}
    assert blocked0 == {1, 2}       # p0 is alone: cut off from both
    assert blocked1 == {0}          # p1 keeps its intra-group link to p2


def test_one_way_drop_compiles_asymmetrically():
    plan = LiveFaultPlan(drops=(LiveLinkDropPlan(0, 1, 0.2, 0.9),))
    assert plan.for_node(0, 3)["blocked"] == [[1, 0.2, 0.9]]
    assert plan.for_node(1, 3)["blocked"] == []   # reverse link untouched


# ---------------------------------------------------------------------------
# NodeFaults: the node-side injector
# ---------------------------------------------------------------------------
def test_node_faults_inactive_before_clock_is_set():
    faults = NodeFaults(0, _full_plan().for_node(0, 3))
    assert not faults.send_blocked(1)
    framed = b"\x00" * 64
    assert faults.corrupt_frame(2, framed) == framed
    assert faults.gray_penalty(1, 1000) == 0.0


def test_node_faults_block_window_opens_and_heals():
    faults = NodeFaults(1, _full_plan().for_node(1, 3))
    clock = [0.0]
    faults.set_clock(lambda: clock[0])
    assert not faults.send_blocked(0)     # before the partition
    clock[0] = 1.0
    assert faults.send_blocked(0)         # inside [0.5, 1.5)
    assert not faults.send_blocked(2)     # intra-group link stays up
    clock[0] = 1.6
    assert not faults.send_blocked(0)     # healed
    assert faults.counters()["sends_blocked"] == 1


def test_corruption_is_seeded_and_actually_corrupts():
    cfg = LiveFaultPlan(
        corrupt_frames=(
            LiveCorruptFramePlan(0, 2, 0.0, 10.0, rate=1.0, seed=7,
                                 mode="bitflip"),
        ),
    ).for_node(0, 3)
    framed = bytes(range(64))
    a = NodeFaults(0, cfg)
    a.set_clock(lambda: 1.0)
    b = NodeFaults(0, cfg)
    b.set_clock(lambda: 1.0)
    out_a = [a.corrupt_frame(2, framed) for _ in range(5)]
    out_b = [b.corrupt_frame(2, framed) for _ in range(5)]
    assert out_a == out_b                 # same seed -> same corruption
    assert all(o != framed for o in out_a)
    assert all(len(o) == len(framed) for o in out_a)   # bitflip keeps size


def test_truncate_mode_returns_a_strict_prefix():
    cfg = LiveFaultPlan(
        corrupt_frames=(
            LiveCorruptFramePlan(0, 1, 0.0, 10.0, rate=1.0, seed=3,
                                 mode="truncate"),
        ),
    ).for_node(0, 3)
    faults = NodeFaults(0, cfg)
    faults.set_clock(lambda: 1.0)
    framed = bytes(range(64))
    out = faults.corrupt_frame(1, framed)
    assert len(out) < len(framed)
    assert framed.startswith(out)


def test_gray_penalty_includes_delay_jitter_and_bandwidth():
    cfg = LiveFaultPlan(
        gray_links=(
            LiveGrayLinkPlan(1, 2, 0.0, 10.0, delay=0.02, jitter=0.01,
                             bandwidth=1000.0),
        ),
    ).for_node(1, 3)
    faults = NodeFaults(1, cfg)
    faults.set_clock(lambda: 1.0)
    penalty = faults.gray_penalty(2, 500)
    # delay + [0, jitter] + 500 bytes / 1000 B/s
    assert 0.02 + 0.5 <= penalty <= 0.02 + 0.01 + 0.5
    assert faults.gray_penalty(0, 500) == 0.0   # other links unaffected


def test_disk_fault_fail_hits_window_persists_only():
    cfg = LiveFaultPlan(
        disk_faults=(LiveDiskFaultPlan(2, 0.5, 1.0, mode="fail"),),
    ).for_node(2, 3)
    faults = NodeFaults(2, cfg)
    faults.set_clock(lambda: 0.7)
    with pytest.raises(OSError, match="injected"):
        faults.disk_fault(window=True)
    faults.disk_fault(window=False)       # sync barriers pass through
    faults.set_clock(lambda: 1.2)
    faults.disk_fault(window=True)        # window closed
    assert faults.counters()["disk_fault_failures"] == 1


# ---------------------------------------------------------------------------
# Differential engine conformance: same partition plan, both engines
# ---------------------------------------------------------------------------
def _sim_partition_trace(n: int, jobs: int):
    from repro.apps.applications import PipelineApp
    from repro.core.recovery import DamaniGargProcess
    from repro.harness.runner import ExperimentSpec, run_experiment
    from repro.protocols.base import ProtocolConfig
    from repro.sim.failures import PartitionPlan

    partitions = PartitionPlan()
    partitions.partition(
        PARTITION_AT, ((0,), tuple(range(1, n))), PARTITION_HEAL
    )
    result = run_experiment(
        ExperimentSpec(
            n=n,
            app=PipelineApp(jobs=jobs),
            protocol=DamaniGargProcess,
            seed=7,
            horizon=30.0,
            partitions=partitions,
            config=ProtocolConfig(
                checkpoint_interval=0.5,
                flush_interval=0.15,
                retransmit_on_token=True,
            ),
        )
    )
    return result.trace


def test_same_partition_plan_passes_oracles_on_both_engines(tmp_path):
    """Heal-before-drain partition, pipeline app, both engines, one
    oracle function: the live failure model and the simulator's agree."""
    n, jobs = 3, 9

    sim_verdict = check_live_run(
        _sim_partition_trace(n, jobs), n=n, jobs=jobs
    )
    assert sim_verdict.ok, f"simulator: {sim_verdict.summary()}"
    assert sim_verdict.outputs_committed == jobs

    spec = LiveClusterSpec(
        n=n,
        jobs=jobs,
        run_seconds=4.0,
        linger=1.2,
        faults=LiveFaultPlan(
            partitions=(
                LivePartitionPlan(
                    at=PARTITION_AT,
                    groups=((0,), tuple(range(1, n))),
                    heal_at=PARTITION_HEAL,
                ),
            ),
        ),
    )
    result = run_cluster(spec, str(tmp_path))
    live_verdict = check_live_run(result.trace, n=n, jobs=jobs)
    assert live_verdict.ok, f"live: {live_verdict.summary()}"
    assert live_verdict.outputs_committed == jobs
    assert set(result.exit_codes.values()) == {0}, result.exit_codes

    # The partition was actually enforced, not a no-op: senders recorded
    # blocked transmissions on the cut links.
    blocked = sum(
        d["faults"]["sends_blocked"] for d in result.done.values()
    )
    assert blocked > 0, "partition never blocked a send"


# ---------------------------------------------------------------------------
# Live cluster under each remaining fault class
# ---------------------------------------------------------------------------
def test_asymmetric_drop_heals_and_oracles_hold(tmp_path):
    """One-way black-hole p0->p1: the reverse direction keeps flowing,
    the outbox retransmits after the heal, the pipeline completes."""
    spec = LiveClusterSpec(
        n=3,
        jobs=9,
        run_seconds=4.0,
        linger=1.2,
        faults=LiveFaultPlan(
            drops=(LiveLinkDropPlan(0, 1, 0.2, 1.2),),
        ),
    )
    result = run_cluster(spec, str(tmp_path))
    verdict = check_live_run(result.trace, n=3, jobs=9)
    assert verdict.ok, verdict.summary()
    assert set(result.exit_codes.values()) == {0}, result.exit_codes
    assert result.done[0]["faults"]["sends_blocked"] > 0
    # Asymmetry: only the src side of the directed link ever blocked.
    assert result.done[1]["faults"]["sends_blocked"] == 0


def test_gray_link_delays_but_oracles_hold(tmp_path):
    spec = LiveClusterSpec(
        n=3,
        jobs=9,
        run_seconds=4.0,
        linger=1.2,
        faults=LiveFaultPlan(
            gray_links=(
                LiveGrayLinkPlan(0, 1, 0.0, 2.0, delay=0.02, jitter=0.01,
                                 bandwidth=250_000.0),
            ),
        ),
    )
    result = run_cluster(spec, str(tmp_path))
    verdict = check_live_run(result.trace, n=3, jobs=9)
    assert verdict.ok, verdict.summary()
    assert result.done[0]["faults"]["gray_delays"] > 0


def test_failing_fsync_under_live_load_keeps_oracles_green(tmp_path):
    """Window flushes on p0 fail for the first 1.5s; the PR 7 retry path
    must carry the outbox through, and the run must stay oracle-clean."""
    spec = LiveClusterSpec(
        n=3,
        jobs=12,
        run_seconds=4.0,
        linger=1.2,
        faults=LiveFaultPlan(
            disk_faults=(LiveDiskFaultPlan(0, 0.0, 1.5, mode="fail"),),
        ),
    )
    result = run_cluster(spec, str(tmp_path))
    verdict = check_live_run(result.trace, n=3, jobs=12)
    assert verdict.ok, verdict.summary()
    assert set(result.exit_codes.values()) == {0}, result.exit_codes


# ---------------------------------------------------------------------------
# Stress integration: generation, reproducers, shrinking
# ---------------------------------------------------------------------------
def test_live_case_generation_is_deterministic_and_bounded():
    from repro.stress.live import generate_live_case

    for seed in range(12):
        case = generate_live_case(seed)
        assert case == generate_live_case(seed)
        case.faults.validate(case.n)
        assert case.n == 3
        assert 6 <= case.jobs <= 12
        assert len(case.crashes) <= 1
        # Every fault window closes before the drain margin.
        for p in case.faults.partitions:
            assert p.heal_at <= case.run_seconds - 2.0 + 1e-9
        for d in case.faults.drops:
            assert d.until <= case.run_seconds - 2.0 + 1e-9


def test_live_reproducer_round_trips_and_replays_shrunk(tmp_path):
    from repro.stress.live import (
        LiveCaseResult,
        dump_live_reproducer,
        generate_live_case,
        load_live_reproducer,
    )

    case = generate_live_case(2)
    shrunk = generate_live_case(3)
    path = dump_live_reproducer(
        LiveCaseResult(
            case=case, violations=("boom",), shrunk=shrunk
        ),
        tmp_path,
    )
    payload = json.loads(path.read_text())
    assert payload["live"] is True      # the --replay dispatch marker
    loaded, full = load_live_reproducer(path)
    assert loaded == shrunk             # shrunk case is what replays
    assert full["violations"] == ["boom"]


def test_shrink_live_case_minimises_to_the_culprit_event():
    """ddmin over a live schedule with a synthetic predicate: the shrunk
    case keeps exactly the fault the predicate needs."""
    from dataclasses import replace

    from repro.stress.live import LiveStressCase, shrink_live_case

    case = LiveStressCase(
        seed=0,
        n=3,
        jobs=9,
        run_seconds=5.0,
        linger=1.2,
        crashes=((0.8, 1, 0.6), (1.5, 2, 0.6)),
        faults=_full_plan(),
    )

    def fails(candidate: LiveStressCase) -> bool:
        # The "bug" needs the disk fault and nothing else.
        return bool(candidate.faults.disk_faults)

    shrunk = shrink_live_case(case, fails, max_attempts=40)
    assert shrunk.faults.disk_faults == case.faults.disk_faults
    assert shrunk.crashes == ()
    assert shrunk.faults.partitions == ()
    assert shrunk.faults.drops == ()
    assert shrunk.faults.gray_links == ()
    assert shrunk.faults.corrupt_frames == ()
    # The result is itself a valid, runnable schedule.
    shrunk.faults.validate(shrunk.n)
    assert replace(shrunk, faults=shrunk.faults) == shrunk
