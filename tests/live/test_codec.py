"""Round-trip and trust-boundary tests for the live wire codec."""

import pytest

from repro.core.ftvc import FaultTolerantVectorClock
from repro.core.tokens import RecoveryToken
from repro.live import codec
from repro.runtime.message import NetworkMessage


@pytest.mark.parametrize(
    "value",
    [
        None,
        True,
        0,
        -17,
        3.25,
        "hello",
        [1, "two", None],
        (1, 2, ("nested", 3)),
        {"k": [1, 2]},
        {("tuple", "key"): "v"},
        {1, 2, 3},
        frozenset({("a", 1), ("b", 2)}),
        [(), {}, set()],
    ],
)
def test_roundtrip_plain_values(value):
    assert codec.decode(codec.encode(value)) == value


def test_roundtrip_preserves_types():
    value = (1, [2, (3,)], frozenset({4}))
    out = codec.decode(codec.encode(value))
    assert isinstance(out, tuple)
    assert isinstance(out[1], list)
    assert isinstance(out[1][1], tuple)
    assert isinstance(out[2], frozenset)


def test_roundtrip_ftvc():
    clock = FaultTolerantVectorClock.of([(0, 5), (1, 9), (0, 3)])
    out = codec.decode(codec.encode(clock))
    assert isinstance(out, FaultTolerantVectorClock)
    assert out == clock


def test_roundtrip_repro_dataclass():
    token = RecoveryToken(
        origin=2,
        version=1,
        timestamp=40,
        full_clock=FaultTolerantVectorClock.of([(1, 40), (0, 7)]),
    )
    out = codec.decode(codec.encode(token))
    assert out == token


def test_roundtrip_network_message():
    msg = NetworkMessage(
        msg_id=7,
        src=0,
        dst=1,
        kind="token",
        payload=RecoveryToken(origin=0, version=2, timestamp=9),
        send_time=1.0,
    )
    out = codec.load_message(codec.dump_message(msg))
    assert out == msg


def test_set_encoding_is_deterministic():
    a = codec.encode({3, 1, 2})
    b = codec.encode({2, 3, 1})
    assert a == b


def test_encode_rejects_foreign_objects():
    class NotOurs:
        pass

    with pytest.raises(codec.CodecError):
        codec.encode(NotOurs())


def test_decode_rejects_untrusted_dataclass_module():
    with pytest.raises(codec.CodecError):
        codec.decode({"__dc__": "os.path:join", "fields": {}})
    with pytest.raises(codec.CodecError):
        codec.decode(
            {"__dc__": "subprocess:Popen", "fields": {"args": "x"}}
        )


def test_decode_rejects_dotted_qualname():
    # A dotted qualname could reach attributes of trusted classes.
    with pytest.raises(codec.CodecError):
        codec.decode({"__dc__": "repro.core.tokens:RecoveryToken.origin",
                      "fields": {}})


def test_decode_rejects_unknown_markers():
    with pytest.raises(codec.CodecError):
        codec.decode({"__pickle__": "base64..."})


def test_load_message_rejects_non_messages():
    with pytest.raises(codec.CodecError):
        codec.load_message(b'{"__tuple__": [1, 2]}')
