"""Live crash-window injection harness.

One call = one real cluster run with a stable-storage crash point armed
on one node (see :mod:`repro.storage.intents` for the point inventory).
The armed incarnation SIGKILLs itself the instant the named durable step
lands, the supervisor respawns it clean, and the startup crawler must
heal the partial image -- all graded by the unchanged live oracles.

Two arming modes, chosen per point:

- **Boot arming** (``at=None``): the point is armed from the node's first
  boot.  Right for steady-state windows (``flush:*``, ``*:committed``,
  ``rollback:*``, ``compaction:*``).
- **Respawn arming** (``at`` set): an ordinary supervisor SIGKILL at
  ``at`` and the *respawn* boots armed.  Required for ``restart:*`` (the
  window only exists inside ``on_restart``) and for
  ``checkpoint:log_flushed`` -- boot-armed it would kill checkpoint 0,
  and the fresh-start reboot legitimately broadcasts no token, which the
  live verdict (correctly) refuses to bless as a recovery.
"""

from __future__ import annotations

from repro.live.supervisor import (
    LiveClusterSpec,
    LiveCrashPointPlan,
    run_cluster,
)
from repro.live.verify import check_live_run

#: Points whose window only exists during (or immediately around) a
#: restart transition: these need respawn arming.
RESPAWN_ARMED_POINTS = frozenset(
    {
        "checkpoint:log_flushed",
        "restart:token_logged",
        "restart:committed",
    }
)

#: Heal action expected for each point when it fires.  ``None`` means the
#: image at death is already complete (committed windows) and the crawler
#: must take no action at all.
EXPECTED_HEAL = {
    "checkpoint:log_flushed": "rolled_back",
    "flush:log_flushed": "rolled_back",
    "restart:token_logged": "rolled_back",
    "rollback:log_flushed": "rolled_forward",
    "rollback:checkpoints_discarded": "rolled_forward",
    "rollback:log_truncated": "rolled_forward",
    "compaction:checkpoints_collected": "rolled_forward",
    "checkpoint:committed": None,
    "flush:committed": None,
    "restart:committed": None,
    "rollback:committed": None,
    "compaction:committed": None,
}


def plan_for(point: str, pid: int = 1, downtime: float = 0.8):
    """Build the right :class:`LiveCrashPointPlan` for ``point``."""
    at = 1.2 if point in RESPAWN_ARMED_POINTS else None
    return LiveCrashPointPlan(pid=pid, point=point, at=at, downtime=downtime)


def run_crash_point(point: str, workdir: str, *, pid: int = 1, **spec_kwargs):
    """Run one cluster with ``point`` armed on ``pid``; return
    ``(result, verdict)``."""
    defaults = dict(n=3, jobs=9, run_seconds=4.5, linger=1.2)
    defaults.update(spec_kwargs)
    spec = LiveClusterSpec(
        crash_points=[plan_for(point, pid=pid)],
        **defaults,
    )
    result = run_cluster(spec, workdir)
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    return result, verdict


def assert_healed(result, point: str, pid: int = 1) -> None:
    """If the point fired, the final incarnation's startup heal must have
    taken exactly the policy action for that window."""
    fired = [(p, pt) for p, pt, _ in result.point_kills if p == pid]
    if not fired:
        return
    assert fired == [(pid, point)], fired
    actions = result.done[pid]["heal_actions"]
    expected = EXPECTED_HEAL[point]
    if expected is None:
        assert actions == [], actions
    else:
        kind = point.split(":", 1)[0]
        assert [a["action"] for a in actions] == [expected], actions
        assert actions[0]["kind"] == kind, actions
