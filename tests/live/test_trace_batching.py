"""Trace batching: grouped writes, the flush-before-barrier rule, SIGKILL.

The batched :class:`LiveTrace` trades per-record flushes for grouped ones
under a bounded-loss rule: a SIGKILL loses at most the unflushed buffer,
and the buffer is forced out before every stable-storage sync barrier
(``FileStableStorage.pre_persist_hook``).  These tests pin each leg:

- the buffer actually batches (capacity flush, timer flush, close flush);
- the pre-persist hook orders the trace write *before* the storage
  barrier -- with a negative control proving the test would catch a
  broken hook;
- a live cluster under SIGKILL still grades PASS while flushing far
  fewer times than it records.
"""

import asyncio
import json
import os

import pytest

from repro.live.env import LiveTrace, merge_traces
from repro.live.storage import FileStableStorage
from repro.live.supervisor import LiveClusterSpec, LiveCrashPlan, run_cluster
from repro.live.verify import check_live_run
from repro.runtime.trace import EventKind


def _lines(path):
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


# ---------------------------------------------------------------------------
# Buffering unit tests
# ---------------------------------------------------------------------------
def test_buffer_records_must_be_positive(tmp_path):
    with open(tmp_path / "t.jsonl", "w", encoding="utf-8") as fh:
        with pytest.raises(ValueError):
            LiveTrace(fh, buffer_records=0)


def test_records_batch_until_capacity_then_flush_in_one_write(tmp_path):
    path = str(tmp_path / "t.jsonl")

    async def go():
        fh = open(path, "w", encoding="utf-8")
        trace = LiveTrace(fh, buffer_records=4, buffer_seconds=30.0)
        for i in range(3):
            trace.record(float(i), EventKind.SEND, 0, value=i)
        # Below capacity, timer far away: nothing on disk yet.
        assert _lines(path) == []
        assert trace.flushes == 0
        assert trace.records_buffered_max == 3

        trace.record(3.0, EventKind.SEND, 0, value=3)   # hits capacity
        assert len(_lines(path)) == 4
        assert trace.flushes == 1
        assert trace.records_written == 4
        trace.close()

    asyncio.run(go())
    assert [row["fields"]["value"] for row in _lines(path)] == [0, 1, 2, 3]


def test_timer_flushes_a_partial_buffer(tmp_path):
    path = str(tmp_path / "t.jsonl")

    async def go():
        fh = open(path, "w", encoding="utf-8")
        trace = LiveTrace(fh, buffer_records=64, buffer_seconds=0.02)
        trace.record(0.0, EventKind.SEND, 0, value="x")
        assert _lines(path) == []
        await asyncio.sleep(0.15)
        assert len(_lines(path)) == 1
        assert trace.flushes == 1
        trace.close()

    asyncio.run(go())


def test_without_a_loop_records_flush_immediately(tmp_path):
    # Synchronous callers (unit tests, merge tooling) have no loop to
    # fire the timer, so batching degrades to the old flush-per-record.
    path = str(tmp_path / "t.jsonl")
    fh = open(path, "w", encoding="utf-8")
    trace = LiveTrace(fh, buffer_records=64, buffer_seconds=30.0)
    trace.record(0.0, EventKind.SEND, 0, value="x")
    assert len(_lines(path)) == 1
    trace.close()


def test_close_flushes_the_tail(tmp_path):
    path = str(tmp_path / "t.jsonl")

    async def go():
        fh = open(path, "w", encoding="utf-8")
        trace = LiveTrace(fh, buffer_records=64, buffer_seconds=30.0)
        for i in range(5):
            trace.record(float(i), EventKind.SEND, 0, value=i)
        assert _lines(path) == []
        trace.close()
        assert len(_lines(path)) == 5

    asyncio.run(go())


def test_batched_trace_merges_identically(tmp_path):
    path = str(tmp_path / "t.jsonl")

    async def go():
        fh = open(path, "w", encoding="utf-8")
        trace = LiveTrace(fh, buffer_records=8, buffer_seconds=30.0)
        trace.record(1.0, EventKind.SEND, 0, value=("done", 3, 12))
        trace.record(3.0, EventKind.OUTPUT, 0, value=("done", 3, 12))
        trace.close()

    asyncio.run(go())
    merged = merge_traces([path])
    assert [e.kind for e in merged.events()] == [
        EventKind.SEND, EventKind.OUTPUT
    ]
    assert merged.events(EventKind.OUTPUT)[0].get("value") == ("done", 3, 12)


# ---------------------------------------------------------------------------
# The flush-before-barrier rule
# ---------------------------------------------------------------------------
def _barrier_scenario(tmp_path, *, hook: bool):
    """Buffer two trace records, then hit a storage sync barrier; return
    how many trace lines were durable at the instant of the barrier."""
    trace_path = str(tmp_path / "t.jsonl")
    at_barrier = []

    async def go():
        fh = open(trace_path, "w", encoding="utf-8")
        trace = LiveTrace(fh, buffer_records=64, buffer_seconds=30.0)
        storage = FileStableStorage(0, str(tmp_path / "stable.pickle"))
        if hook:
            storage.pre_persist_hook = trace.flush
        # fault_hook runs inside _persist *after* pre_persist_hook and
        # before the durable image is written: exactly the barrier
        # instant the rule is about.
        storage.fault_hook = lambda **kw: at_barrier.append(
            len(_lines(trace_path))
        )
        trace.record(0.0, EventKind.OUTPUT, 0, value=("done", 0, 1))
        trace.record(0.1, EventKind.SEND, 0, value="x")
        storage.put("k", "v")               # synchronous barrier
        trace.close()

    asyncio.run(go())
    assert len(at_barrier) == 1
    return at_barrier[0]


def test_trace_buffer_is_durable_before_the_storage_barrier(tmp_path):
    assert _barrier_scenario(tmp_path, hook=True) == 2


def test_negative_control_without_hook_buffer_misses_the_barrier(tmp_path):
    """Proof the test above has teeth: drop the hook and the buffered
    records are *not* on disk when the barrier runs -- the exact state an
    ordering bug would produce."""
    assert _barrier_scenario(tmp_path, hook=False) == 0


def test_failing_pre_persist_hook_aborts_the_persist(tmp_path):
    # A hook failure must behave like a fault: the durable image is not
    # advanced past a trace write that never happened.
    storage = FileStableStorage(0, str(tmp_path / "stable.pickle"))

    def boom():
        raise OSError("trace disk gone")

    storage.pre_persist_hook = boom
    before = storage.persist_count
    with pytest.raises(OSError):
        storage.put("k", "v")
    assert storage.persist_count == before
    assert not os.path.exists(str(tmp_path / "stable.pickle"))


# ---------------------------------------------------------------------------
# Live cluster: SIGKILL under batching
# ---------------------------------------------------------------------------
def test_sigkill_mid_window_still_grades_pass_and_batches(tmp_path):
    """The crash lands while trace buffers are in flight; the merged
    trace must still satisfy every conformance oracle (bounded loss: only
    volatile state died), and the done reports must show grouped writes
    actually happening."""
    spec = LiveClusterSpec(
        n=3,
        jobs=9,
        run_seconds=3.5,
        linger=1.0,
        crashes=[LiveCrashPlan(pid=1, at=0.8, downtime=0.8)],
    )
    result = run_cluster(spec, str(tmp_path))
    assert len(result.kills) == 1

    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    assert verdict.ok, verdict.summary()
    assert verdict.outputs_committed == spec.jobs
    assert set(result.exit_codes.values()) == {0}, result.exit_codes

    for pid, done in result.done.items():
        assert done["trace_records"] > 0
        assert done["trace_flushes"] > 0
        # Batching did its job: strictly fewer grouped writes than
        # records on at least the busy nodes, never more.
        assert done["trace_flushes"] <= done["trace_records"]
    assert any(
        d["trace_flushes"] < d["trace_records"]
        for d in result.done.values()
    ), "no node ever grouped trace records into one write"
    assert any(
        d["trace_records_buffered_max"] > 1 for d in result.done.values()
    ), "buffer high-water mark never exceeded one record"
