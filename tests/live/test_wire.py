"""The binary wire codec: framing, value roundtrips, delta chains,
dataclass interning, and the version/legacy-JSON dispatch rules."""

import dataclasses
import json

import pytest

from repro.core.ftvc import FaultTolerantVectorClock as FTVC
from repro.core.tokens import RecoveryToken
from repro.live import wire
from repro.live.codec import CodecError
from repro.live.wire import (
    FRAME_ACK,
    FRAME_DATA,
    FRAME_HELLO,
    MAGIC,
    WIRE_VERSION,
    WireDecoder,
    WireEncoder,
    ack_frame,
    frame_type,
    hello_frame,
    is_binary,
    parse_ack,
    parse_hello,
)


def roundtrip(value):
    return WireDecoder().decode_value(WireEncoder().encode_value(value))


class TestValueRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            1 << 40,
            -(1 << 40),
            3.14159,
            float("inf"),
            "",
            "héllo ↯",
            [1, "two", None],
            (1, (2, 3)),
            {"k": [1, 2], "nested": {"a": None}},
            {1, 2, 3},
            frozenset({("a", 1), ("b", 2)}),
        ],
    )
    def test_scalar_and_container_roundtrip(self, value):
        result = roundtrip(value)
        assert result == value
        assert type(result) is type(value)

    def test_bool_is_not_decoded_as_int(self):
        assert roundtrip(True) is True
        assert roundtrip(1) == 1 and roundtrip(1) is not True

    def test_clock_roundtrip(self):
        clock = FTVC.of([(0, 5), (2, 0), (1, 9)])
        assert roundtrip(clock) == clock

    def test_unencodable_type_raises(self):
        with pytest.raises(CodecError):
            WireEncoder().encode_value(object())

    def test_unknown_tag_raises(self):
        with pytest.raises(CodecError):
            WireDecoder().decode_value(b"\xff")

    def test_trailing_bytes_raise(self):
        data = WireEncoder().encode_value(1) + b"\x00"
        with pytest.raises(CodecError):
            WireDecoder().decode_value(data)


class TestFrames:
    def test_hello_roundtrip(self):
        frame = hello_frame(3, 7)
        assert is_binary(frame)
        assert frame_type(frame) == FRAME_HELLO
        assert parse_hello(frame) == (3, 7)

    def test_ack_roundtrip(self):
        frame = ack_frame(12345)
        assert frame_type(frame) == FRAME_ACK
        assert parse_ack(frame) == 12345

    def test_data_frame_roundtrip(self):
        enc, dec = WireEncoder(), WireDecoder()
        frame = enc.data_frame(42, {"payload": [1, 2]})
        assert frame_type(frame) == FRAME_DATA
        assert dec.decode_data(frame) == (42, {"payload": [1, 2]})

    def test_json_frames_are_not_binary(self):
        # Dispatch is per frame, by first byte: a legacy JSON frame
        # starts with '{' and must fall through to the text codec.
        legacy = json.dumps({"ack": 3}).encode("utf-8")
        assert not is_binary(legacy)
        assert is_binary(bytes([MAGIC, WIRE_VERSION, FRAME_ACK]))

    def test_unknown_wire_version_is_rejected(self):
        frame = bytearray(hello_frame(0, 1))
        frame[1] = WIRE_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            frame_type(bytes(frame))

    def test_truncated_header_is_rejected(self):
        with pytest.raises(CodecError):
            frame_type(bytes([MAGIC]))


class TestDeltaChain:
    def test_second_clock_on_a_connection_is_a_delta(self):
        enc, dec = WireEncoder(), WireDecoder()
        clock = FTVC.initial(0, 8)
        first = enc.encode_value(clock)
        clock2 = clock.tick(0)
        second = enc.encode_value(clock2)
        assert len(second) < len(first)
        assert dec.decode_value(first) == clock
        assert dec.decode_value(second) == clock2

    def test_fresh_connection_restarts_with_a_full_clock(self):
        # A reconnect builds a fresh encoder: its first clock must be
        # decodable with no prior state (the full-clock fallback).
        enc = WireEncoder()
        clock = FTVC.initial(0, 4).tick(0)
        enc.encode_value(clock)         # chain warmed up
        reconnect_enc, reconnect_dec = WireEncoder(), WireDecoder()
        frame = reconnect_enc.encode_value(clock)
        assert reconnect_dec.decode_value(frame) == clock

    def test_delta_with_no_prior_clock_is_rejected(self):
        enc = WireEncoder()
        clock = FTVC.initial(0, 4)
        enc.encode_value(clock)
        delta_frame = enc.encode_value(clock.tick(0))
        with pytest.raises(CodecError, match="no prior clock"):
            WireDecoder().decode_value(delta_frame)

    def test_duplicate_frames_keep_the_chain_in_lockstep(self):
        # The transport decodes every data frame it reads, including
        # dedup-dropped duplicates; a re-decoded delta must be a no-op.
        enc, dec = WireEncoder(), WireDecoder()
        clock = FTVC.initial(0, 4)
        clock2 = clock.tick(0)
        clock3 = clock2.tick(0)
        f1, f2, f3 = (enc.encode_value(c) for c in (clock, clock2, clock3))
        assert dec.decode_value(f1) == clock
        assert dec.decode_value(f2) == clock2
        assert dec.decode_value(f2) == clock2      # duplicate
        assert dec.decode_value(f3) == clock3

    def test_wholesale_change_falls_back_to_full_encoding(self):
        enc, dec = WireEncoder(), WireDecoder()
        clock = FTVC.of([(0, 1), (0, 2), (0, 3)])
        enc.encode_value(clock)
        changed = FTVC.of([(1, 0), (1, 0), (1, 0)])
        frame = enc.encode_value(changed)
        assert frame[0] == wire._T_FTVC_FULL
        assert dec is not None  # decoder unused: full frames are stateless

    def test_long_chain_roundtrips(self):
        enc, dec = WireEncoder(), WireDecoder()
        clock = FTVC.initial(0, 5)
        for step in range(30):
            clock = clock.tick(step % 5)
            if step == 10:
                clock = clock.restart(2)
            assert dec.decode_value(enc.encode_value(clock)) == clock


class TestDataclassInterning:
    def test_second_instance_is_smaller_and_equal(self):
        enc, dec = WireEncoder(), WireDecoder()
        a = RecoveryToken(origin=1, version=2, timestamp=7)
        b = RecoveryToken(origin=1, version=3, timestamp=9)
        first = enc.encode_value(a)
        second = enc.encode_value(b)
        assert len(second) < len(first)     # DC_REF drops path + fields
        assert dec.decode_value(first) == a
        assert dec.decode_value(second) == b

    def test_reference_before_definition_is_rejected(self):
        enc = WireEncoder()
        enc.encode_value(RecoveryToken(origin=0, version=0, timestamp=0))
        ref_frame = enc.encode_value(
            RecoveryToken(origin=0, version=1, timestamp=0)
        )
        with pytest.raises(CodecError, match="never defined"):
            WireDecoder().decode_value(ref_frame)

    def test_non_repro_dataclass_is_refused(self):
        @dataclasses.dataclass
        class Sneaky:
            x: int

        with pytest.raises(CodecError, match="non-repro"):
            WireEncoder().encode_value(Sneaky(x=1))
