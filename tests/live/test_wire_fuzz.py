"""Corrupt-frame fuzzing against the live wire stack.

Seeded bit-flips and truncations on outgoing data frames must never
crash a node and never violate the closed-form oracles: the CRC (or the
length cap, for flipped length bytes) rejects the frame, the receiver
drops the connection, and the sender's outbox retransmits on redial --
corruption degrades into the reconnect case the protocol already
handles.
"""

import struct

import pytest

from repro.live.faults import (
    CORRUPT_MODES,
    LiveCorruptFramePlan,
    LiveFaultPlan,
    NodeFaults,
)
from repro.live.framing import (
    MAX_FRAME,
    BufferedFrameReader,
    FramingError,
    frame,
)
from repro.live.supervisor import LiveClusterSpec, run_cluster
from repro.live.verify import check_live_run


# ---------------------------------------------------------------------------
# Framing hardening units: the two rejection layers corruption can hit
# ---------------------------------------------------------------------------
def test_length_cap_rejects_oversized_corrupt_prefix():
    """A bit flip in the length field can announce a multi-gigabyte
    frame; the cap must reject it instead of buffering forever."""
    corrupt = struct.pack(">II", MAX_FRAME + 1, 0) + b"x" * 32

    class _FakeReader:
        def __init__(self, data: bytes) -> None:
            self._data = data

        async def read(self, n: int) -> bytes:
            out, self._data = self._data[:n], self._data[n:]
            return out

    import asyncio

    async def scenario() -> None:
        reader = BufferedFrameReader(_FakeReader(corrupt))
        with pytest.raises(FramingError, match="exceeds cap"):
            await reader.read_batch()

    asyncio.run(scenario())


def test_crc_rejects_every_single_bit_flip_in_a_small_frame():
    framed = bytearray(frame(b"hello, recovery"))
    import asyncio

    class _FakeReader:
        def __init__(self, data: bytes) -> None:
            self._data = data

        async def read(self, n: int) -> bytes:
            out, self._data = self._data[:n], self._data[n:]
            return out

    async def feed(data: bytes):
        return await BufferedFrameReader(_FakeReader(data)).read_batch()

    for bit in range(len(framed) * 8):
        mutated = bytearray(framed)
        mutated[bit // 8] ^= 1 << (bit % 8)
        with pytest.raises(FramingError):
            asyncio.run(feed(bytes(mutated)))


# ---------------------------------------------------------------------------
# Corruptor units: the injector itself
# ---------------------------------------------------------------------------
def _corruptor(mode: str, rate: float = 1.0, seed: int = 0) -> NodeFaults:
    cfg = LiveFaultPlan(
        corrupt_frames=(
            LiveCorruptFramePlan(0, 1, 0.0, 100.0, rate=rate, seed=seed,
                                 mode=mode),
        ),
    ).for_node(0, 3)
    faults = NodeFaults(0, cfg)
    faults.set_clock(lambda: 1.0)
    return faults


@pytest.mark.parametrize("mode", CORRUPT_MODES)
def test_every_corruption_mode_is_rejected_by_the_receiver(mode):
    """Whatever the corruptor emits, the framing layer must refuse it
    (or, for a truncation, refuse at EOF) -- never decode it."""
    import asyncio

    class _FakeReader:
        def __init__(self, data: bytes) -> None:
            self._data = data

        async def read(self, n: int) -> bytes:
            out, self._data = self._data[:n], self._data[n:]
            return out

    faults = _corruptor(mode, seed=11)
    framed = frame(b"\xb5" + bytes(range(200)))
    for _ in range(50):
        mutated = faults.corrupt_frame(1, framed)
        if mutated == framed:       # mixed mode can no-op at rate < 1.0
            continue

        async def scenario(data: bytes = mutated) -> None:
            reader = BufferedFrameReader(_FakeReader(data))
            with pytest.raises(FramingError):
                while True:
                    frames = await reader.read_batch()
                    assert frames != [framed[8:]]
                    if frames is None:
                        # Clean EOF: a truncation that removed the whole
                        # frame.  Nothing was decoded; that's a pass.
                        raise FramingError("nothing decoded")

        asyncio.run(scenario())
    assert faults.counters()["frames_corrupted"] > 0


def test_corruptor_respects_rate_and_link_scoping():
    faults = _corruptor("bitflip", rate=0.0)
    framed = frame(b"payload")
    assert faults.corrupt_frame(1, framed) == framed   # rate 0: never
    hot = _corruptor("bitflip", rate=1.0)
    assert hot.corrupt_frame(2, framed) == framed      # other link: never
    assert hot.corrupt_frame(1, framed) != framed


# ---------------------------------------------------------------------------
# End-to-end fuzz: a hot corrupted link under a real cluster
# ---------------------------------------------------------------------------
def test_fuzzed_link_never_crashes_a_node_and_oracles_hold(tmp_path):
    """40% of frames p0->p1 are flipped or truncated for the first two
    seconds.  Every node must exit 0 (no crash), and the pipeline must
    still commit exactly the closed-form outputs."""
    spec = LiveClusterSpec(
        n=3,
        jobs=9,
        run_seconds=4.0,
        linger=1.2,
        faults=LiveFaultPlan(
            corrupt_frames=(
                LiveCorruptFramePlan(0, 1, 0.0, 2.0, rate=0.4, seed=5,
                                     mode="mixed"),
            ),
        ),
    )
    result = run_cluster(spec, str(tmp_path))
    verdict = check_live_run(result.trace, n=3, jobs=9)
    assert verdict.ok, verdict.summary()
    assert set(result.exit_codes.values()) == {0}, result.exit_codes
    assert result.done[0]["faults"]["frames_corrupted"] > 0
    # Corruption forced at least one drop-and-redial; the outbox
    # retransmitted rather than losing the frames.
    assert result.done[0]["transport"]["dial_attempts"] > 2
