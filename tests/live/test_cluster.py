"""End-to-end live cluster: real OS processes, real SIGKILL, real TCP.

One bounded scenario keeps the suite honest without making it slow: a
3-process pipeline where the middle stage is SIGKILLed mid-run, restarts
from its file-backed stable storage, and the merged trace must pass the
conformance oracles (full recovery, no orphan output, all jobs done).
"""

import os

from repro.live.supervisor import LiveClusterSpec, LiveCrashPlan, run_cluster
from repro.live.verify import check_live_run
from repro.runtime.trace import EventKind


def test_cluster_survives_a_sigkill(tmp_path):
    spec = LiveClusterSpec(
        n=3,
        jobs=9,
        run_seconds=3.5,
        linger=1.0,
        crashes=[LiveCrashPlan(pid=1, at=0.8, downtime=0.8)],
    )
    result = run_cluster(spec, str(tmp_path))

    # The kill really happened and really was a SIGKILL.
    assert len(result.kills) == 1
    assert result.kills[0][0] == 1

    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    assert verdict.ok, verdict.summary()
    assert verdict.crashes == 1
    assert verdict.restarts >= 1
    assert verdict.outputs_committed == spec.jobs

    # Every node exited cleanly (no orphan processes, no crashes at exit).
    assert set(result.exit_codes.values()) == {0}, result.exit_codes

    # The restarted node resumed from its durable image: its trace shows
    # a checkpoint RESTORE before the post-restart work.
    restores = [e for e in result.trace.events(EventKind.RESTORE) if
                e.pid == 1]
    assert restores, "p1 restarted but never restored a checkpoint"

    # Per-node artifacts exist for debugging.
    for pid in range(spec.n):
        assert os.path.exists(os.path.join(str(tmp_path),
                                           f"trace_p{pid}.jsonl"))
        assert os.path.exists(os.path.join(str(tmp_path), "data",
                                           f"stable_p{pid}.pickle"))


def test_cluster_compacts_history_under_gossiped_stability(tmp_path):
    """Live-engine GC boundary test: two SIGKILLs of the same node make
    token v1 supersede token v0, gossiped frontiers drive local
    apply_stability sweeps (no coordinator), and compaction runs while
    crashes land around it.  The run must stay oracle-clean and the done
    reports must show superseded records actually dropped."""
    spec = LiveClusterSpec(
        n=3,
        jobs=9,
        run_seconds=5.0,
        linger=1.2,
        crashes=[
            LiveCrashPlan(pid=1, at=0.6, downtime=0.6),
            LiveCrashPlan(pid=1, at=2.4, downtime=0.6),
        ],
        gossip_stability=True,
        gossip_interval=0.4,
        compact_history=True,
        enable_gc=True,
    )
    result = run_cluster(spec, str(tmp_path))

    assert len(result.kills) == 2
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    assert verdict.ok, verdict.summary()
    assert verdict.crashes == 2

    compacted = sum(
        d["stats"]["history_compacted"] for d in result.done.values()
    )
    assert compacted > 0, "no history record was ever compacted"
    assert set(result.exit_codes.values()) == {0}, result.exit_codes


def test_env_clocks_stay_monotonic_across_sigkill_restart(tmp_path):
    """Regression for the negative-latency bug: every trace timestamp
    must be non-negative, and each process's trace file -- which spans
    the SIGKILL boundary, with the two incarnations anchoring env-time
    independently -- must never step backwards."""
    import json

    spec = LiveClusterSpec(
        n=3,
        jobs=6,
        run_seconds=3.0,
        linger=1.0,
        crashes=[LiveCrashPlan(pid=1, at=0.6, downtime=0.6)],
    )
    result = run_cluster(spec, str(tmp_path))
    verdict = check_live_run(result.trace, n=spec.n, jobs=spec.jobs)
    assert verdict.ok, verdict.summary()

    # Merged trace: nothing before env-time zero, outputs included.
    assert all(e.time >= 0.0 for e in result.trace), (
        "trace carries events before the cluster epoch"
    )
    outputs = result.trace.events(EventKind.OUTPUT)
    assert outputs and all(e.time >= 0.0 for e in outputs)

    # Per-process files: monotonic across the crash/restart boundary.
    for pid in range(spec.n):
        path = os.path.join(str(tmp_path), f"trace_p{pid}.jsonl")
        with open(path, "r", encoding="utf-8") as fh:
            stamps = [json.loads(line)["t"] for line in fh if line.strip()]
        assert stamps, f"p{pid} wrote no trace"
        assert stamps == sorted(stamps), (
            f"p{pid} trace time-warped across restart"
        )

    # The done reports carry sane env-clock readings too.
    for pid, done in result.done.items():
        assert done["env_time"] > 0.0
