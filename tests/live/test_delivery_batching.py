"""Delivery batching: ready messages apply back to back in one tick.

The hot-path change: everything a read batch (or a synchronous self-send
burst) makes ready is applied to the protocol inside a *single*
event-loop callback, FIFO, instead of costing one loop iteration per
message.  These tests pin the FIFO-within-one-tick contract and the
batch counters the done report exposes; the conformance argument -- the
simulator's semantics are untouched -- is carried by the golden
signature suite, which must stay bit-identical.
"""

import asyncio
import socket

from repro.live.transport import MeshTransport
from repro.runtime.message import NetworkMessage


class Collector:
    def __init__(self):
        self.received = []

    def on_network_message(self, msg):
        self.received.append(msg)


def _free_ports(count):
    sockets = []
    try:
        for _ in range(count):
            s = socket.socket()
            s.bind(("127.0.0.1", 0))
            sockets.append(s)
        return [s.getsockname()[1] for s in sockets]
    finally:
        for s in sockets:
            s.close()


def _msg(msg_id, src, dst, payload):
    return NetworkMessage(
        msg_id=msg_id, src=src, dst=dst, kind="app",
        payload=payload, send_time=0.0,
    )


async def _wait_until(predicate, timeout=5.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition not reached")
        await asyncio.sleep(0.01)


def test_deliver_batch_is_fifo_and_counts(tmp_path):
    a = MeshTransport(0, 1, [0])
    c = Collector()
    a.attach(c)
    a._deliver_batch([_msg(i + 1, 0, 0, i) for i in range(5)])
    assert [m.payload for m in c.received] == [0, 1, 2, 3, 4]
    assert a.delivery_batches == 1
    assert a.delivery_batch_max == 5
    a._deliver_batch([])                 # empty batch is not a batch
    assert a.delivery_batches == 1
    a._deliver_batch([_msg(9, 0, 0, "x")])
    assert a.delivery_batches == 2
    assert a.delivery_batch_max == 5     # high-water mark sticks


def test_self_send_burst_applies_in_one_tick_fifo():
    """A synchronous burst of self-sends coalesces into one deferred
    drain: by the time the *next* scheduled callback runs, the whole
    burst has been applied, in send order."""

    async def go():
        ports = _free_ports(1)
        a = MeshTransport(0, 1, ports)
        c = Collector()
        a.attach(c)
        for i in range(7):
            a.send(0, _msg(i + 1, 0, 0, i))
        assert c.received == []          # nothing applied synchronously
        seen_by_next_callback = []
        asyncio.get_running_loop().call_soon(
            lambda: seen_by_next_callback.append(len(c.received))
        )
        await asyncio.sleep(0)
        # The drain callback (scheduled by the first send) ran before the
        # sentinel: the entire burst landed in one tick.
        assert seen_by_next_callback == [7]
        assert [m.payload for m in c.received] == list(range(7))
        assert a.delivery_batches == 1
        assert a.delivery_batch_max == 7

    asyncio.run(go())


def test_two_bursts_are_two_batches():
    async def go():
        ports = _free_ports(1)
        a = MeshTransport(0, 1, ports)
        c = Collector()
        a.attach(c)
        a.send(0, _msg(1, 0, 0, "a"))
        a.send(0, _msg(2, 0, 0, "b"))
        await asyncio.sleep(0)
        a.send(0, _msg(3, 0, 0, "c"))
        await asyncio.sleep(0)
        assert [m.payload for m in c.received] == ["a", "b", "c"]
        assert a.delivery_batches == 2
        assert a.delivery_batch_max == 2

    asyncio.run(go())


def test_pre_attach_backlog_drains_as_one_batch():
    async def go():
        ports = _free_ports(1)
        a = MeshTransport(0, 1, ports)
        # No protocol yet: deliveries buffer in _undelivered.
        a._deliver_batch([_msg(i + 1, 0, 0, i) for i in range(4)])
        assert a.delivery_batches == 1       # the buffering pass
        c = Collector()
        a.attach(c)
        assert c.received == []              # attach defers one tick
        await asyncio.sleep(0)
        assert [m.payload for m in c.received] == [0, 1, 2, 3]
        assert a.delivery_batches == 2       # backlog applied as one batch
        assert a.delivery_batch_max == 4

    asyncio.run(go())


def test_network_burst_delivers_fifo_and_batches():
    """A burst queued before the peer is even listening arrives through
    one pump batch and applies FIFO; the receiver observes at least one
    multi-message batch (the counters the scale bench reports)."""

    async def go():
        ports = _free_ports(2)
        a = MeshTransport(0, 2, ports)
        a.attach(Collector())
        await a.start()
        try:
            for i in range(20):
                a.send(1, _msg(i + 1, 0, 1, i))
            b = MeshTransport(1, 2, ports)
            cb = Collector()
            b.attach(cb)
            await b.start()
            try:
                await _wait_until(lambda: len(cb.received) == 20)
                assert [m.payload for m in cb.received] == list(range(20))
                assert b.delivery_batch_max > 1, (
                    "a 20-message burst never produced a grouped delivery"
                )
                assert b.delivery_batches < 20
                await _wait_until(lambda: a.unacked == 0)
            finally:
                await b.stop()
        finally:
            await a.stop()

    asyncio.run(go())
