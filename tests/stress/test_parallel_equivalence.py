"""The oracle that keeps the engine honest: jobs>1 == jobs=1, bit for bit.

Every per-seed :class:`CaseResult` -- violations, error text, shrunk case,
and crucially the ``trace_signature`` digest of the whole simulation --
must come back identical whether the block ran serially or across worker
processes.
"""

import pytest

from repro.exec import ResultCache
from repro.stress import PROFILES, sweep

QUICK = PROFILES["quick"]
SCHEDULES = 12


def collect(schedules, **kwargs):
    """Run a sweep capturing every per-seed result, keyed by seed."""
    results = {}

    def progress(_index, result):
        results[result.case.seed] = result

    report = sweep(
        schedules, profile=QUICK, shrink=False, progress=progress, **kwargs
    )
    return report, [results[seed] for seed in sorted(results)]


def test_parallel_results_identical_to_serial():
    serial_report, serial = collect(SCHEDULES)
    parallel_report, parallel = collect(SCHEDULES, jobs=2)

    assert len(serial) == len(parallel) == SCHEDULES
    for s, p in zip(serial, parallel):
        assert s == p            # full dataclass equality ...
        assert s.trace_signature is not None
        assert s.trace_signature == p.trace_signature   # ... digest included

    assert serial_report.failures == parallel_report.failures
    assert serial_report.cases_run == parallel_report.cases_run
    assert serial_report.crash_events == parallel_report.crash_events
    assert serial_report.partition_events == parallel_report.partition_events


def test_cached_rerun_identical_to_fresh(tmp_path):
    cache = ResultCache(tmp_path)
    fresh_report, fresh = collect(6, jobs=2, cache=cache)
    cached_report, cached = collect(6, jobs=2, cache=cache)
    assert fresh == cached
    assert fresh_report.cache_hits == 0
    assert cached_report.cache_hits == 6


def test_parallel_rejects_injected_runner():
    with pytest.raises(ValueError):
        sweep(2, profile=QUICK, jobs=2, run=lambda case, **kw: None)


def test_parallel_rejects_fail_fast():
    with pytest.raises(ValueError):
        sweep(2, profile=QUICK, jobs=2, fail_fast=True)


def test_reproducers_match_modulo_path(tmp_path):
    """A failing schedule dumps the same reproducer JSON either way."""
    from repro.stress.sweep import CaseResult, dump_reproducer
    from repro.stress.generate import generate_case

    case = generate_case(99, QUICK)
    result = CaseResult(case=case, violations=("synthetic: boom",))
    serial_path = dump_reproducer(result, tmp_path / "serial")
    parallel_path = dump_reproducer(result, tmp_path / "parallel")
    assert serial_path.name == parallel_path.name
    assert serial_path.read_text() == parallel_path.read_text()
