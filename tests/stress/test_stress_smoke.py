"""End-to-end stress smoke: real simulations, real oracles.

A bounded quick-profile sweep must come back clean -- this is the
tier-1 face of the acceptance criterion that the full 500-schedule run
(`python -m repro stress --schedules 500 --seed 0`) holds every
invariant.  The pinned seeds replay the schedules that exposed the two
recovery bugs this PR fixes, so they are regression tests for
``repro.core.recovery`` as much as harness tests.
"""

import pytest

from repro.stress import DEFAULT_PROFILE, PROFILES, generate_case, run_case, sweep


def test_quick_sweep_holds_every_invariant():
    report = sweep(30, base_seed=0, profile=PROFILES["quick"], shrink=False)
    assert report.cases_run == 30
    assert report.ok, report.summary()
    # The profile must actually inject adversity, or "all invariants
    # held" is vacuous.
    assert report.crash_events > 0
    assert report.duplicate_cases > 0


# Shrunk reproducers of the two protocol bugs the stress harness found:
#
# - seed 55: a rollback interleaved between a process's checkpoints, so
#   its *second* crash restored a pre-rollback checkpoint and the restart
#   token re-announced an already-dead version (orphans of the later
#   incarnation survived), and replay recomputed clocks without the
#   rollback's tick (Theorem 1 disagreements);
# - seed 12: a rollback truncated the stable log right after flushing it,
#   so the durable own-entry frontier covered vanished states and the
#   next restart token under-condemned (lost state never rolled back).
@pytest.mark.parametrize("seed", [12, 55, 174, 284])
def test_pinned_regression_seeds_stay_clean(seed):
    case = generate_case(seed, DEFAULT_PROFILE)
    result = run_case(
        case, theorem_max_states=DEFAULT_PROFILE.theorem_max_states
    )
    assert not result.failed, (
        f"{case.describe()}: {result.headline()}"
    )


def test_heavy_profile_single_case_runs_clean():
    case = generate_case(1, PROFILES["heavy"])
    result = run_case(
        case, theorem_max_states=PROFILES["heavy"].theorem_max_states
    )
    assert not result.failed, result.headline()
