"""The shrinker, exercised against synthetic failure predicates.

Using predicates instead of real simulations keeps these tests
millisecond-fast while still pinning the properties that matter: the
result always fails, is never larger than the input, removes everything
removable, and respects the attempt budget.
"""

from dataclasses import replace

from repro.stress import generate_case, shrink_case
from repro.stress.generate import with_events

# A case with plenty to remove: many crashes and at least one partition.
CASE = next(
    case
    for case in (generate_case(seed) for seed in range(200))
    if case.crash_count >= 5 and case.partition_count >= 1
    and case.duplicate_rate > 0
)


def test_shrinks_to_single_essential_crash():
    essential = CASE.crashes[2]

    def fails(candidate):
        return essential in candidate.crashes

    shrunk = shrink_case(CASE, fails)
    assert shrunk.crashes == (essential,)
    assert shrunk.partitions == ()


def test_shrinks_to_essential_pair_in_different_halves():
    first, last = CASE.crashes[0], CASE.crashes[-1]

    def fails(candidate):
        return first in candidate.crashes and last in candidate.crashes

    shrunk = shrink_case(CASE, fails)
    assert set(shrunk.crashes) == {first, last}


def test_result_always_satisfies_the_predicate():
    calls = []

    def fails(candidate):
        calls.append(candidate)
        return candidate.crash_count >= 2

    shrunk = shrink_case(CASE, fails)
    assert fails(shrunk)
    assert shrunk.crash_count == 2


def test_incidental_flags_are_switched_off():
    def fails(candidate):
        return bool(candidate.crashes)

    shrunk = shrink_case(CASE, fails)
    assert shrunk.duplicate_rate == 0.0
    assert not shrunk.retransmit_on_token
    assert not shrunk.commit_outputs and not shrunk.enable_gc


def test_essential_flag_is_kept():
    def fails(candidate):
        return candidate.duplicate_rate > 0

    shrunk = shrink_case(CASE, fails)
    assert shrunk.duplicate_rate == CASE.duplicate_rate


def test_horizon_is_cut_toward_the_last_event():
    def fails(candidate):
        return bool(candidate.crashes)

    shrunk = shrink_case(CASE, fails)
    last = max(t + d for t, _, d in shrunk.crashes)
    assert shrunk.horizon <= max(last + 2.0, CASE.horizon / 2) + 1e-9


def test_budget_bounds_predicate_calls():
    calls = []

    def fails(candidate):
        calls.append(candidate)
        return bool(candidate.crashes)

    shrink_case(CASE, fails, max_attempts=7)
    assert len(calls) <= 7


def test_unshrinkable_case_is_returned_unchanged():
    bare = replace(
        with_events(CASE, crashes=(CASE.crashes[0],), partitions=()),
        duplicate_rate=0.0,
        retransmit_on_token=False,
        commit_outputs=False,
        enable_gc=False,
        stability_interval=None,
        horizon=round(CASE.crashes[0][0] + CASE.crashes[0][2] + 2.0, 3),
    )

    def fails(candidate):
        return candidate == bare

    assert shrink_case(bare, fails) == bare


def test_crash_points_are_shrunk():
    case = replace(
        CASE,
        retransmit_on_token=True,
        crash_points=(
            (0, "flush:log_flushed", 1.0),
            (1, "rollback:log_flushed", 2.0),
            (2, "checkpoint:log_flushed", 1.5),
        ),
    )
    essential = case.crash_points[1]

    def fails(candidate):
        return essential in candidate.crash_points

    shrunk = shrink_case(case, fails)
    assert shrunk.crash_points == (essential,)


def test_dropping_retransmit_also_drops_crash_points():
    """Crash points are only generated for retransmit-enabled cases; a
    candidate with points but no retransmission would be a schedule the
    generator can never produce (and an unfair one: completeness after a
    mid-transition kill relies on Remark-1 retransmission)."""
    case = replace(
        CASE,
        retransmit_on_token=True,
        crash_points=((0, "flush:log_flushed", 1.0),),
    )

    def fails(candidate):
        # Fails regardless of flags: the shrinker will try dropping both.
        return True

    shrunk = shrink_case(case, fails)
    assert not shrunk.retransmit_on_token
    assert shrunk.crash_points == ()
