"""The ``python -m repro stress`` subcommand."""

import json

from repro.__main__ import main
from repro.stress import CaseResult, dump_reproducer, generate_case
from repro.stress.profiles import PROFILES


def test_stress_sweep_clean(capsys):
    code = main(
        ["stress", "--schedules", "8", "--seed", "0",
         "--profile", "quick", "--quiet"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "8/8 schedules" in out
    assert "all invariants held" in out


def test_stress_progress_lines(capsys):
    # Progress prints every 100 schedules; 8 schedules -> none, but the
    # non-quiet path must still run and stay clean.
    assert main(
        ["stress", "--schedules", "8", "--profile", "quick"]
    ) == 0
    capsys.readouterr()


def test_stress_replay_passing_reproducer(tmp_path, capsys):
    case = generate_case(2, PROFILES["quick"])
    path = dump_reproducer(
        CaseResult(case=case, violations=("recovery: historic",)), tmp_path
    )
    code = main(["stress", "--profile", "quick", "--replay", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "now passing" in out
    assert "historic" in out


def test_stress_replay_failing_reproducer_exits_nonzero(
    tmp_path, capsys, monkeypatch
):
    import repro.__main__ as cli
    import repro.stress as stress

    case = generate_case(2, PROFILES["quick"])
    path = dump_reproducer(
        CaseResult(case=case, violations=("recovery: boom",)), tmp_path
    )

    def fake_run(case, *, theorem_max_states):
        return CaseResult(case=case, violations=("recovery: still broken",))

    monkeypatch.setattr(stress, "run_case", fake_run)
    code = main(["stress", "--profile", "quick", "--replay", str(path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "still failing" in out
    assert "still broken" in out


def test_stress_failure_path_writes_reproducer_and_exits_nonzero(
    tmp_path, capsys, monkeypatch
):
    import repro.stress as stress

    real_run = stress.run_case

    def flaky_run(case, *, theorem_max_states):
        if case.seed == 1:
            return CaseResult(case=case, violations=("recovery: synthetic",))
        return real_run(case, theorem_max_states=theorem_max_states)

    monkeypatch.setattr(stress, "run_case", flaky_run)
    code = main(
        ["stress", "--schedules", "3", "--profile", "quick", "--no-shrink",
         "--out-dir", str(tmp_path), "--quiet"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "FAILURES: 1" in out
    repro_path = tmp_path / "stress-repro-seed1.json"
    assert repro_path.exists()
    payload = json.loads(repro_path.read_text())
    assert payload["violations"] == ["recovery: synthetic"]
