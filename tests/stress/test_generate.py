"""The stress-case generator: determinism, bounds, JSON round-trip.

The whole harness rests on cases being pure functions of ``(seed,
profile)`` that replay byte-identically from JSON -- otherwise a dumped
reproducer would not reproduce anything.
"""

import json
from dataclasses import replace

import pytest

from repro.storage.intents import SIM_CRASH_POINTS

from repro.harness.runner import run_experiment
from repro.sim.network import DeliveryOrder
from repro.stress import (
    DEFAULT_PROFILE,
    PROFILES,
    WORKLOADS,
    build_spec,
    case_from_dict,
    case_to_dict,
    generate_case,
)

SEEDS = range(40)


def test_same_seed_same_case():
    for seed in SEEDS:
        assert generate_case(seed) == generate_case(seed)


def test_different_seeds_differ():
    cases = {generate_case(seed) for seed in SEEDS}
    assert len(cases) == len(SEEDS)


def test_profiles_draw_independent_streams():
    # The stream is derived from the profile name, so the same seed
    # under two profiles must not yield correlated schedules.
    quick = generate_case(3, PROFILES["quick"])
    default = generate_case(3, PROFILES["default"])
    assert quick.crashes != default.crashes


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_cases_respect_profile_bounds(profile):
    prof = PROFILES[profile]
    for seed in SEEDS:
        case = generate_case(seed, prof)
        assert prof.min_n <= case.n <= prof.max_n
        assert prof.min_horizon <= case.horizon <= prof.max_horizon
        assert case.workload in prof.workloads
        assert case.order in ("fifo", "random")
        for time, pid, downtime in case.crashes:
            assert 0.0 < time < case.horizon
            assert 0 <= pid < case.n
            assert prof.downtime[0] <= downtime <= prof.downtime[1]
        per_pid: dict[int, int] = {}
        for _, pid, _ in case.crashes:
            per_pid[pid] = per_pid.get(pid, 0) + 1
        # Poisson arrivals are capped; the burst can add at most one more.
        assert all(
            count <= prof.max_failures_per_process + 1
            for count in per_pid.values()
        )
        assert len(case.partitions) <= prof.max_partitions
        for time, groups, heal in case.partitions:
            assert time < heal < case.horizon
            assert sorted(p for g in groups for p in g) == list(range(case.n))


def test_partition_windows_never_overlap():
    for seed in SEEDS:
        case = generate_case(seed, PROFILES["heavy"])
        for (_, _, heal), (start, _, _) in zip(
            case.partitions, case.partitions[1:]
        ):
            assert start > heal


def test_extension_flags_travel_together():
    for seed in SEEDS:
        case = generate_case(seed)
        assert case.commit_outputs == case.enable_gc
        assert (case.stability_interval is not None) == case.commit_outputs


def test_json_round_trip_is_identity():
    for seed in SEEDS:
        case = generate_case(seed)
        encoded = json.dumps(case_to_dict(case))
        assert case_from_dict(json.loads(encoded)) == case


def test_build_spec_reflects_case():
    case = generate_case(11)
    spec = build_spec(case)
    assert spec.n == case.n
    assert spec.seed == case.seed
    assert spec.horizon == case.horizon
    assert spec.duplicate_rate == case.duplicate_rate
    assert spec.order is (
        DeliveryOrder.FIFO if case.order == "fifo" else DeliveryOrder.RANDOM
    )
    assert spec.config.retransmit_on_token == case.retransmit_on_token
    assert spec.config.commit_outputs == case.commit_outputs
    assert (spec.crashes is not None) == bool(case.crashes)
    assert (spec.partitions is not None) == bool(case.partitions)


def test_replayed_case_reproduces_the_run_exactly():
    case = generate_case(5, PROFILES["quick"])
    twin = case_from_dict(json.loads(json.dumps(case_to_dict(case))))
    first = run_experiment(build_spec(case)).trace.signature()
    second = run_experiment(build_spec(twin)).trace.signature()
    assert first == second


def test_every_workload_factory_builds():
    for name, factory in WORKLOADS.items():
        assert factory(4) is not None, name


def test_crash_points_only_on_retransmit_cases():
    seen_points = False
    for seed in range(120):
        case = generate_case(seed)
        if case.crash_points:
            seen_points = True
            assert case.retransmit_on_token
            for pid, point, downtime in case.crash_points:
                assert 0 <= pid < case.n
                assert point in SIM_CRASH_POINTS
                assert downtime > 0
    assert seen_points  # the 0.35 gate hits well within 120 seeds


def test_crash_points_are_disabled_by_profile():
    quiet = replace(PROFILES["default"], crash_point_prob=0.0)
    assert all(
        generate_case(seed, quiet).crash_points == () for seed in range(40)
    )


def test_legacy_reproducers_without_crash_points_load():
    case = generate_case(7)
    data = case_to_dict(case)
    del data["crash_points"]   # recorded before crash points existed
    loaded = case_from_dict(json.loads(json.dumps(data)))
    assert loaded == replace(case, crash_points=())


def test_build_spec_arms_crash_points():
    case = next(
        c for c in (generate_case(s) for s in range(200)) if c.crash_points
    )
    spec = build_spec(case)
    assert tuple(
        (ev.pid, ev.point, ev.downtime) for ev in spec.crash_points
    ) == case.crash_points
