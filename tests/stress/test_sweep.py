"""Sweep plumbing (injectable runner) and reproducer files.

The real end-to-end sweep is covered by ``test_stress_smoke.py``; here a
fake runner makes failures cheap and deterministic so the accounting,
shrink hookup, fail-fast, and dump/load paths can be pinned exactly.
"""

from repro.stress import (
    exception_line,
    CaseResult,
    PROFILES,
    dump_reproducer,
    generate_case,
    load_reproducer,
    sweep,
)

QUICK = PROFILES["quick"]


def _passing(case, *, theorem_max_states):
    return CaseResult(case=case)


def _failing_on(seeds):
    def run(case, *, theorem_max_states):
        if case.seed in seeds:
            return CaseResult(
                case=case, violations=("recovery: synthetic violation",)
            )
        return CaseResult(case=case)

    return run


def test_clean_sweep_reports_ok():
    report = sweep(10, profile=QUICK, run=_passing)
    assert report.ok
    assert report.cases_run == 10
    assert report.failures == []
    assert "all invariants held" in report.summary()


def test_injection_counters_match_generated_cases():
    report = sweep(25, profile=QUICK, run=_passing)
    cases = [generate_case(seed, QUICK) for seed in range(25)]
    assert report.crash_events == sum(c.crash_count for c in cases)
    assert report.partition_events == sum(c.partition_count for c in cases)
    assert report.duplicate_cases == sum(
        1 for c in cases if c.duplicate_rate
    )


def test_failures_are_collected_and_summarised():
    report = sweep(10, profile=QUICK, run=_failing_on({3, 7}), shrink=False)
    assert not report.ok
    assert [f.case.seed for f in report.failures] == [3, 7]
    summary = report.summary()
    assert "FAILURES: 2" in summary
    assert "seed 3" in summary and "seed 7" in summary


def test_fail_fast_stops_at_first_failure():
    report = sweep(10, profile=QUICK, run=_failing_on({2}), fail_fast=True)
    assert report.cases_run == 3
    assert len(report.failures) == 1


def test_base_seed_offsets_the_block():
    report = sweep(5, base_seed=100, profile=QUICK, run=_failing_on({102}))
    assert [f.case.seed for f in report.failures] == [102]


def test_sweep_shrinks_failures_with_the_injected_runner():
    # The synthetic failure only needs the first crash event, so the
    # sweep's shrink pass must strip everything else.
    target = next(
        seed for seed in range(50)
        if generate_case(seed, QUICK).crash_count >= 2
    )
    essential = generate_case(target, QUICK).crashes[0]

    def run(case, *, theorem_max_states):
        if case.seed == target and essential in case.crashes:
            return CaseResult(case=case, violations=("synthetic",))
        return CaseResult(case=case)

    report = sweep(target + 1, profile=QUICK, run=run)
    (failure,) = report.failures
    assert failure.shrunk is not None
    assert failure.shrunk.crashes == (essential,)


def test_progress_callback_sees_every_case():
    seen = []
    sweep(6, profile=QUICK, run=_passing, progress=lambda i, r: seen.append(i))
    assert seen == list(range(6))


def test_reproducer_round_trip(tmp_path):
    case = generate_case(4, QUICK)
    shrunk = generate_case(5, QUICK)
    result = CaseResult(
        case=case, violations=("recovery: boom",), shrunk=shrunk
    )
    path = dump_reproducer(result, tmp_path)
    assert path.name == "stress-repro-seed4.json"
    loaded, payload = load_reproducer(path)
    assert loaded == shrunk          # replay prefers the shrunk form
    assert payload["violations"] == ["recovery: boom"]
    assert payload["error"] is None


def test_reproducer_without_shrunk_replays_original(tmp_path):
    case = generate_case(9, QUICK)
    path = dump_reproducer(
        CaseResult(case=case, error="Traceback: boom"), tmp_path
    )
    loaded, payload = load_reproducer(path)
    assert loaded == case
    assert payload["shrunk"] is None
    assert "boom" in payload["error"]


def test_sweep_writes_reproducers_to_out_dir(tmp_path):
    report = sweep(
        5,
        profile=QUICK,
        run=_failing_on({1, 4}),
        shrink=False,
        out_dir=tmp_path,
    )
    assert [p.name for p in report.reproducers] == [
        "stress-repro-seed1.json",
        "stress-repro-seed4.json",
    ]
    for path in report.reproducers:
        assert path.exists()


def test_exceptions_are_failures_not_crashes():
    def run(case, *, theorem_max_states):
        if case.seed == 2:
            return CaseResult(case=case, error="Traceback: ZeroDivisionError")
        return CaseResult(case=case)

    report = sweep(5, profile=QUICK, run=run, shrink=False)
    assert report.cases_run == 5
    (failure,) = report.failures
    assert failure.failed
    assert "exception" in failure.headline()


# ---------------------------------------------------------------------------
# headline() format
# ---------------------------------------------------------------------------
def test_headline_reports_the_exception_line():
    """Lock the format: the headline names the exception itself (the last
    non-blank line of the traceback), never an intermediate frame."""
    case = generate_case(0, QUICK)
    error = (
        "Traceback (most recent call last):\n"
        '  File "repro/sim/kernel.py", line 10, in fire\n'
        "    raise ValueError('clock went backwards')\n"
        "ValueError: clock went backwards\n"
        "\n"
    )
    result = CaseResult(case=case, error=error)
    assert result.headline() == "exception: ValueError: clock went backwards"


def test_headline_prefers_violations_over_ok():
    case = generate_case(0, QUICK)
    assert CaseResult(case=case).headline() == "ok"
    assert (
        CaseResult(case=case, violations=("recovery: x", "theorem1: y"))
        .headline()
        == "recovery: x"
    )


def test_exception_line_handles_degenerate_tracebacks():
    assert exception_line("KeyError: 'frontier'") == "KeyError: 'frontier'"
    assert exception_line("  \n\n") == "unknown error"
    assert exception_line("") == "unknown error"
