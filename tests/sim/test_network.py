"""Unit tests for the simulated network."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import (
    DeliveryOrder,
    FixedLatency,
    Network,
    UniformLatency,
)
from repro.sim.rng import RandomStreams


def make_net(n=3, order=DeliveryOrder.RANDOM, latency=None, seed=0):
    sim = Simulator()
    net = Network(
        sim,
        n,
        streams=RandomStreams(seed),
        latency=latency or UniformLatency(0.5, 1.5),
        order=order,
    )
    inboxes = {pid: [] for pid in range(n)}
    for pid in range(n):
        net.register(pid, lambda m, pid=pid: inboxes[pid].append(m))
    return sim, net, inboxes


def test_point_to_point_delivery():
    sim, net, inboxes = make_net()
    net.send(0, 1, "hello")
    sim.run()
    assert [m.payload for m in inboxes[1]] == ["hello"]
    assert inboxes[0] == [] and inboxes[2] == []


def test_message_ids_are_unique_and_increasing():
    sim, net, _ = make_net()
    ids = [net.send(0, 1, i).msg_id for i in range(5)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_fifo_preserves_per_channel_order():
    sim, net, inboxes = make_net(order=DeliveryOrder.FIFO, seed=3)
    for i in range(50):
        net.send(0, 1, i)
    sim.run()
    assert [m.payload for m in inboxes[1]] == list(range(50))


def test_random_order_reorders_some_messages():
    sim, net, inboxes = make_net(order=DeliveryOrder.RANDOM, seed=3)
    for i in range(50):
        net.send(0, 1, i)
    sim.run()
    received = [m.payload for m in inboxes[1]]
    assert sorted(received) == list(range(50))
    assert received != list(range(50))   # with this seed, reordering occurs


def test_latency_override_forces_exact_timing():
    sim, net, inboxes = make_net(latency=UniformLatency(5.0, 9.0))
    net.send(0, 1, "slow")
    net.send(0, 1, "fast", latency=0.1)
    sim.run(until=1.0)
    assert [m.payload for m in inboxes[1]] == ["fast"]


def test_broadcast_excludes_self_by_default():
    sim, net, inboxes = make_net(n=4)
    sent = net.broadcast(2, "tok")
    sim.run()
    assert len(sent) == 3
    assert inboxes[2] == []
    for pid in (0, 1, 3):
        assert [m.payload for m in inboxes[pid]] == ["tok"]


def test_broadcast_include_self():
    sim, net, inboxes = make_net(n=3)
    net.broadcast(0, "tok", include_self=True)
    sim.run()
    assert [m.payload for m in inboxes[0]] == ["tok"]


def test_partition_holds_cross_group_messages():
    sim, net, inboxes = make_net(n=4, latency=FixedLatency(1.0))
    net.partition([[0, 1], [2, 3]])
    net.send(0, 2, "blocked")
    net.send(0, 1, "local")
    sim.run()
    assert [m.payload for m in inboxes[1]] == ["local"]
    assert inboxes[2] == []
    assert net.held_messages == 1


def test_heal_releases_held_messages():
    sim, net, inboxes = make_net(n=4, latency=FixedLatency(1.0))
    net.partition([[0, 1], [2, 3]])
    net.send(0, 2, "delayed")
    sim.run()
    net.heal()
    sim.run()
    assert [m.payload for m in inboxes[2]] == ["delayed"]
    assert net.held_messages == 0


def test_partition_catches_in_flight_messages():
    sim, net, inboxes = make_net(n=2, latency=FixedLatency(5.0))
    net.send(0, 1, "in-flight")
    sim.run(until=1.0)
    net.partition([[0], [1]])
    sim.run(until=20.0)
    assert inboxes[1] == []           # caught mid-flight and held
    net.heal()
    sim.run()
    assert [m.payload for m in inboxes[1]] == ["in-flight"]


def test_fifo_order_survives_partition_heal():
    """Regression: a message caught *in flight* by a partition joins the
    held list at its delivery time -- after later sends held at send time.
    heal() must release held messages in per-channel send order, or the
    FIFO floor cements the inversion."""
    sim, net, inboxes = make_net(
        n=2, order=DeliveryOrder.FIFO, latency=FixedLatency(5.0)
    )
    net.send(0, 1, "first")                  # in flight, would deliver at t=5
    sim.run(until=1.0)
    net.partition([[0], [1]])                # imposed while "first" in flight
    sim.schedule_at(2.0, lambda: net.send(0, 1, "second"))  # held at send
    sim.run(until=10.0)
    assert inboxes[1] == []
    net.heal()
    sim.run()
    assert [m.payload for m in inboxes[1]] == ["first", "second"]


def test_fifo_heal_release_many_messages():
    """Same inversion with interleaved in-flight and held-at-send traffic."""
    sim, net, inboxes = make_net(
        n=2, order=DeliveryOrder.FIFO, latency=FixedLatency(8.0)
    )
    for i in range(3):
        net.send(0, 1, ("flight", i))        # all in flight at partition time
    sim.run(until=1.0)
    net.partition([[0], [1]])
    for i in range(3):
        sim.schedule_at(2.0 + i, lambda i=i: net.send(0, 1, ("held", i)))
    sim.run(until=20.0)
    net.heal()
    sim.run()
    got = [m.payload for m in inboxes[1]]
    assert got == [("flight", 0), ("flight", 1), ("flight", 2),
                   ("held", 0), ("held", 1), ("held", 2)]


def test_second_partition_while_active_rejected():
    sim, net, _ = make_net(n=3)
    net.partition([[0, 1], [2]])
    with pytest.raises(ValueError, match="already partitioned"):
        net.partition([[0], [1, 2]])
    net.heal()
    net.partition([[0], [1, 2]])             # legal again after heal
    net.heal()


def test_partition_validation():
    sim, net, _ = make_net(n=3)
    with pytest.raises(ValueError, match="missing"):
        net.partition([[0, 1]])
    with pytest.raises(ValueError, match="two partition groups"):
        net.partition([[0, 1], [1, 2]])


def test_register_twice_rejected():
    sim = Simulator()
    net = Network(sim, 2)
    net.register(0, lambda m: None)
    with pytest.raises(ValueError):
        net.register(0, lambda m: None)
    with pytest.raises(ValueError):
        net.register(5, lambda m: None)


def test_send_counts_by_kind():
    sim, net, _ = make_net()
    net.send(0, 1, "a")
    net.send(0, 1, "b", kind="token")
    net.send(0, 1, "c", kind="token")
    sim.run()
    assert net.sent_count == {"app": 1, "token": 2}
    assert net.delivered_count == {"app": 1, "token": 2}


def test_deterministic_delivery_times():
    def run_once():
        sim, net, inboxes = make_net(seed=11)
        for i in range(20):
            net.send(0, 1, i)
        times = []
        net._receivers[1] = lambda m: times.append((sim.now, m.payload))
        sim.run()
        return times

    assert run_once() == run_once()


def test_latency_model_validation():
    with pytest.raises(ValueError):
        UniformLatency(-1.0, 2.0)
    with pytest.raises(ValueError):
        UniformLatency(3.0, 2.0)
