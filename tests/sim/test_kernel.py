"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_starts_at_time_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_fired == 0
    assert sim.pending == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, lambda n=name: fired.append(n))
    sim.run()
    assert fired == list("abcde")


def test_priority_breaks_ties_before_sequence():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("normal"))
    sim.schedule(1.0, lambda: fired.append("urgent"), priority=-1)
    sim.run()
    assert fired == ["urgent", "normal"]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_zero_delay_allowed_and_fires_after_current():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == ["outer", "inner"]


def test_events_scheduled_during_run_are_honoured():
    sim = Simulator()
    fired = []

    def chain(k):
        fired.append(k)
        if k < 5:
            sim.schedule(1.0, lambda: chain(k + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run(until=2.0)
    assert fired == [1, 2]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 2, 3]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_max_events_limit():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append("cancelled"))
    sim.schedule(2.0, lambda: fired.append("kept"))
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == ["kept"]


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_fired == 0


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [5.0]


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_drain_raises_on_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="did not quiesce"):
        sim.drain(limit=100)


def test_drain_succeeds_on_finite_work():
    sim = Simulator()
    fired = []
    for i in range(20):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    sim.drain(limit=100)
    assert len(fired) == 20


def test_pending_ignores_cancelled():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    h1.cancel()
    assert sim.pending == 1


def test_pending_raw_counts_tombstones():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.pending == 1
    assert sim.pending_raw == 2
    sim.run()
    assert sim.pending == 0
    assert sim.pending_raw == 0


def test_max_events_with_until_does_not_time_warp():
    """Regression: stopping on max_events with work still pending before
    ``until`` must not fast-forward the clock past the unfired events."""
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(until=50.0, max_events=2)
    assert fired == [0, 1]
    assert sim.now == 2.0          # not 50.0
    sim.run(until=50.0)
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == 50.0         # queue exhausted: fast-forward is fine


def test_max_events_with_until_fast_forwards_when_remaining_beyond_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(99.0, lambda: fired.append("late"))
    sim.run(until=10.0, max_events=5)
    assert fired == ["a"]
    assert sim.now == 10.0         # only event left is past until


def test_max_events_with_until_ignores_cancelled_leftovers():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    handle = sim.schedule(2.0, lambda: fired.append("dead"))
    handle.cancel()
    sim.run(until=10.0, max_events=1)
    assert fired == ["a"]
    assert sim.now == 10.0         # tombstone does not hold the clock back


def test_schedule_at_clamps_float_rounding_to_now():
    """Regression: ``schedule_at(t)`` where ``t`` equals ``now`` up to float
    rounding (e.g. 0.1 + 0.2 vs 0.3) must not raise SimulationError."""
    sim = Simulator()
    fired = []
    sim.schedule(0.1, lambda: sim.schedule(0.2, lambda: None))
    sim.run()
    assert sim.now == 0.1 + 0.2 and sim.now != 0.3  # the classic ulp gap
    sim.schedule_at(0.3, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [sim.now]


def test_schedule_at_still_rejects_genuinely_past_times():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(4.9, lambda: None)
