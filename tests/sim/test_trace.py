"""Unit tests for the ground-truth trace recorder."""

from repro.sim.trace import EventKind, SimTrace


def test_record_and_len():
    trace = SimTrace()
    trace.record(1.0, EventKind.SEND, 0, msg_id=1)
    trace.record(2.0, EventKind.DELIVER, 1, msg_id=1)
    assert len(trace) == 2


def test_sequence_numbers_are_dense():
    trace = SimTrace()
    events = [trace.record(float(i), EventKind.CUSTOM, 0) for i in range(5)]
    assert [e.seq for e in events] == [0, 1, 2, 3, 4]


def test_filter_by_kind_and_pid():
    trace = SimTrace()
    trace.record(1.0, EventKind.SEND, 0)
    trace.record(1.0, EventKind.SEND, 1)
    trace.record(2.0, EventKind.CRASH, 0)
    assert len(trace.events(EventKind.SEND)) == 2
    assert len(trace.events(EventKind.SEND, pid=0)) == 1
    assert len(trace.events(pid=0)) == 2
    assert trace.count(EventKind.CRASH) == 1


def test_last_returns_most_recent_match():
    trace = SimTrace()
    trace.record(1.0, EventKind.CRASH, 0, count=1)
    trace.record(5.0, EventKind.CRASH, 0, count=2)
    event = trace.last(EventKind.CRASH)
    assert event is not None and event["count"] == 2
    assert trace.last(EventKind.ROLLBACK) is None


def test_field_access():
    trace = SimTrace()
    event = trace.record(1.0, EventKind.SEND, 0, msg_id=7, dst=3)
    assert event["msg_id"] == 7
    assert event.get("dst") == 3
    assert event.get("missing", "d") == "d"


def test_signature_deterministic_and_sensitive():
    t1, t2, t3 = SimTrace(), SimTrace(), SimTrace()
    for t in (t1, t2):
        t.record(1.0, EventKind.SEND, 0, msg_id=1)
        t.record(2.0, EventKind.DELIVER, 1, msg_id=1)
    t3.record(1.0, EventKind.SEND, 0, msg_id=2)   # differs
    t3.record(2.0, EventKind.DELIVER, 1, msg_id=2)
    assert t1.signature() == t2.signature()
    assert t1.signature() != t3.signature()


def test_iteration_order_is_record_order():
    trace = SimTrace()
    trace.record(5.0, EventKind.CUSTOM, 0, tag="first")
    trace.record(1.0, EventKind.CUSTOM, 0, tag="second")
    tags = [e["tag"] for e in trace]
    assert tags == ["first", "second"]
