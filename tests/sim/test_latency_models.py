"""Tests for latency models, including the scripted model the figure
scenarios rely on."""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import (
    FixedLatency,
    Network,
    ScriptedLatency,
    UniformLatency,
)
from repro.sim.rng import RandomStreams


def test_fixed_latency_constant():
    model = FixedLatency(3.5)
    rng = random.Random(0)
    assert [model.sample(rng, 0, 1, "app") for _ in range(3)] == [3.5] * 3


def test_uniform_latency_within_bounds():
    model = UniformLatency(1.0, 2.0)
    rng = random.Random(0)
    samples = [model.sample(rng, 0, 1, "app") for _ in range(100)]
    assert all(1.0 <= s <= 2.0 for s in samples)
    assert len(set(samples)) > 10


class TestScriptedLatency:
    def test_planned_delays_pop_in_order(self):
        model = ScriptedLatency(default=9.0).plan(0, 1, 1.0, 2.0, 3.0)
        rng = random.Random(0)
        assert model.sample(rng, 0, 1, "app") == 1.0
        assert model.sample(rng, 0, 1, "app") == 2.0
        assert model.sample(rng, 0, 1, "app") == 3.0
        # Exhausted: falls back to the default.
        assert model.sample(rng, 0, 1, "app") == 9.0

    def test_channels_are_independent(self):
        model = ScriptedLatency(default=9.0).plan(0, 1, 1.0).plan(1, 0, 2.0)
        rng = random.Random(0)
        assert model.sample(rng, 1, 0, "app") == 2.0
        assert model.sample(rng, 0, 1, "app") == 1.0

    def test_kinds_are_independent(self):
        model = (
            ScriptedLatency(default=9.0)
            .plan(0, 1, 1.0)
            .plan(0, 1, 5.0, kind="token")
        )
        rng = random.Random(0)
        assert model.sample(rng, 0, 1, "token") == 5.0
        assert model.sample(rng, 0, 1, "app") == 1.0

    def test_drives_network_delivery_times(self):
        sim = Simulator()
        model = ScriptedLatency(default=1.0).plan(0, 1, 7.0, 2.0)
        net = Network(sim, 2, streams=RandomStreams(0), latency=model)
        arrivals = []
        net.register(0, lambda m: None)
        net.register(1, lambda m: arrivals.append((sim.now, m.payload)))
        net.send(0, 1, "slow")
        net.send(0, 1, "fast")
        sim.run()
        assert arrivals == [(2.0, "fast"), (7.0, "slow")]
