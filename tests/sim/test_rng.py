"""Unit tests for named deterministic random streams."""

from repro.sim.rng import RandomStreams, derive_seed


def test_same_name_returns_same_stream():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_different_names_are_independent():
    streams = RandomStreams(1)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_factories():
    a = [RandomStreams(42).stream("x").random() for _ in range(3)]
    b = [RandomStreams(42).stream("x").random() for _ in range(3)]
    assert a == b


def test_root_seed_changes_streams():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_adding_a_stream_does_not_perturb_others():
    """The property plain random.Random sharing would violate."""
    lone = RandomStreams(9)
    values_alone = [lone.stream("keep").random() for _ in range(4)]

    busy = RandomStreams(9)
    busy.stream("noise-1").random()
    keep = busy.stream("keep")
    busy.stream("noise-2").random()
    values_busy = [keep.random() for _ in range(4)]
    assert values_alone == values_busy


def test_derive_seed_is_stable():
    # A fixed value: guards against accidentally changing the derivation,
    # which would silently re-randomise every recorded experiment.
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")
    assert 0 <= derive_seed(123, "anything") < 2**64


def test_spawn_is_independent_of_parent():
    parent = RandomStreams(5)
    child = parent.spawn("child")
    assert parent.stream("s").random() != child.stream("s").random()


def test_spawn_reproducible():
    a = RandomStreams(5).spawn("c").stream("s").random()
    b = RandomStreams(5).spawn("c").stream("s").random()
    assert a == b
