"""Simulator crash-point injection: kill a process mid-transition.

Each armed ``"<kind>:<step>"`` point (see :mod:`repro.storage.intents`)
fires once, when that durable step would land, crashing the process with
the exact partial image the point names.  The startup crawler must heal
every such image, and the run must still satisfy the recovery oracles.
"""

import pytest

from repro.analysis import check_recovery
from repro.apps import PingPongApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan, CrashPointEvent
from repro.sim.trace import EventKind
from repro.storage.intents import HEAL_LOG_KEY, SIM_CRASH_POINTS


def run(
    *,
    crash_points,
    crashes=None,
    app=None,
    n=4,
    seed=0,
    horizon=110.0,
    stability_interval=None,
    enable_gc=False,
):
    spec = ExperimentSpec(
        n=n,
        app=app or RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=crashes,
        crash_points=tuple(crash_points),
        seed=seed,
        horizon=horizon,
        stability_interval=stability_interval,
        config=ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            retransmit_on_token=True,
            commit_outputs=enable_gc,
            enable_gc=enable_gc,
        ),
    )
    return run_experiment(spec)


def fired_points(result, pid=None):
    return [
        e["point"]
        for e in result.trace.events(EventKind.CUSTOM, pid)
        if e.fields.get("what") == "crash_point"
    ]


def test_checkpoint_point_kills_the_initial_checkpoint_and_recovers():
    """``checkpoint:log_flushed`` armed from boot fires inside checkpoint
    0 (the very first checkpoint transition): the process dies with a
    flushed-but-uncheckpointed image, heals by aborting the intent, and
    reboots through the fresh-start path."""
    result = run(
        crash_points=[CrashPointEvent(1, "checkpoint:log_flushed", 2.0)]
    )
    assert fired_points(result, pid=1) == ["checkpoint:log_flushed"]
    assert result.trace.count(EventKind.CRASH, 1) == 1
    fresh = [
        e
        for e in result.trace.events(EventKind.CUSTOM, 1)
        if e.fields.get("what") == "fresh_start"
    ]
    assert len(fresh) == 1
    assert result.protocols[1].storage.intents_aborted >= 1
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    assert result.total_delivered > 30


def test_flush_point_kills_a_periodic_flush_and_recovers():
    result = run(crash_points=[CrashPointEvent(2, "flush:log_flushed", 2.0)])
    assert fired_points(result, pid=2) == ["flush:log_flushed"]
    assert result.trace.count(EventKind.CRASH, 2) == 1
    assert result.trace.count(EventKind.RESTART, 2) == 1
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_restart_point_kills_the_restart_path_itself():
    """An ordinary crash at t=15 brings pid 1 into ``on_restart``; the
    armed point kills it again between the token log and the restart
    checkpoint.  The second restart heals (abort: the token-log dedupe
    absorbs the relog) and completes."""
    result = run(
        crashes=CrashPlan().crash(15.0, 1, 2.0),
        crash_points=[CrashPointEvent(1, "restart:token_logged", 2.0)],
    )
    assert fired_points(result, pid=1) == ["restart:token_logged"]
    assert result.trace.count(EventKind.CRASH, 1) == 2
    assert result.protocols[1].stats.restarts >= 2
    # The healed token log holds exactly one token per (origin, version).
    assert result.protocols[1].storage.token_log_dedups >= 1
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


@pytest.mark.parametrize(
    "point",
    [
        "rollback:log_flushed",
        "rollback:checkpoints_discarded",
        "rollback:log_truncated",
    ],
)
def test_rollback_points_heal_forward_and_preserve_entries(point):
    """Crash pid 0 so its token orphans pid 1; the armed point kills
    pid 1 mid-rollback.  The crawler must roll the rollback *forward*
    (the payload names the complete target state) and the run must
    still satisfy every oracle."""
    result = run(
        app=PingPongApp(rounds=60),
        n=2,
        crashes=CrashPlan().crash(15.0, 0, 2.0),
        crash_points=[CrashPointEvent(1, point, 2.0)],
        horizon=120.0,
    )
    assert fired_points(result, pid=1) == [point]
    storage = result.protocols[1].storage
    heal_log = storage.get(HEAL_LOG_KEY) or []
    assert [a["action"] for a in heal_log] == ["rolled_forward"]
    assert heal_log[0]["kind"] == "rollback"
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_compaction_point_kills_the_stability_sweep():
    """The GC block of ``apply_stability`` is a two-persist transition;
    the armed point kills the process between them and the sweep must
    carry on for every other process."""
    result = run(
        crash_points=[
            CrashPointEvent(1, "compaction:checkpoints_collected", 2.0)
        ],
        stability_interval=5.0,
        enable_gc=True,
        horizon=140.0,
    )
    assert fired_points(result, pid=1) == ["compaction:checkpoints_collected"]
    storage = result.protocols[1].storage
    heal_log = storage.get(HEAL_LOG_KEY) or []
    assert [a["action"] for a in heal_log] == ["rolled_forward"]
    assert heal_log[0]["kind"] == "compaction"
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    # Other processes kept collecting after pid 1 died mid-sweep.
    assert result.coordinator.stats.rounds > 0


@pytest.mark.parametrize("point", SIM_CRASH_POINTS)
def test_every_sim_point_is_armable_and_harmless_when_unreached(point):
    """Arming any enumerated point never corrupts a run: whether or not
    the transition occurs, the oracles hold."""
    result = run(
        crashes=CrashPlan().crash(20.0, 1, 2.0),
        crash_points=[CrashPointEvent(1, point, 2.0)],
        stability_interval=6.0,
        enable_gc=True,
        horizon=130.0,
    )
    assert fired_points(result, pid=1) in ([], [point])
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_crash_point_runs_are_deterministic():
    a = run(crash_points=[CrashPointEvent(1, "flush:log_flushed", 2.0)])
    b = run(crash_points=[CrashPointEvent(1, "flush:log_flushed", 2.0)])
    assert len(a.trace) == len(b.trace)
    assert [
        (e.time, e.kind, e.pid) for e in a.trace
    ] == [(e.time, e.kind, e.pid) for e in b.trace]
    assert a.total_delivered == b.total_delivered
