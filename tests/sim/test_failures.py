"""Unit tests for failure injection."""

import pytest

from repro.sim.failures import (
    CrashEvent,
    CrashPlan,
    FailureInjector,
    PartitionPlan,
)
from repro.sim.kernel import Simulator
from repro.sim.network import FixedLatency, Network
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams


class NullProtocol:
    def on_start(self):
        pass

    def on_network_message(self, msg):
        pass

    def on_crash(self):
        pass

    def on_restart(self):
        pass


def make_stack(n=3):
    sim = Simulator()
    net = Network(sim, n, latency=FixedLatency(1.0))
    hosts = [ProcessHost(pid, sim, net) for pid in range(n)]
    for h in hosts:
        h.attach(NullProtocol())
    return sim, net, hosts


def test_crash_plan_builder():
    plan = CrashPlan().crash(5.0, 1).crash(9.0, 2, downtime=3.0)
    assert plan.failure_count == 2
    assert plan.events[1].downtime == 3.0


def test_crash_event_validation():
    with pytest.raises(ValueError):
        CrashEvent(-1.0, 0)
    with pytest.raises(ValueError):
        CrashEvent(1.0, 0, downtime=0.0)


def test_concurrent_builder():
    plan = CrashPlan().concurrent(5.0, [0, 1, 2])
    assert plan.failure_count == 3
    assert all(e.time == 5.0 for e in plan.events)


def test_injector_executes_crash_and_restart():
    sim, net, hosts = make_stack()
    plan = CrashPlan().crash(5.0, 1, downtime=2.0)
    FailureInjector(sim, hosts, net).install(plan)
    sim.run(until=5.5)
    assert not hosts[1].alive
    sim.run(until=7.5)
    assert hosts[1].alive
    assert hosts[1].crash_count == 1


def test_crash_precedes_same_time_delivery():
    """A message arriving at the crash instant must be buffered, not lost."""
    sim, net, hosts = make_stack()
    received = []
    hosts[1]._protocol.on_network_message = lambda m: received.append(m.payload)
    net.send(0, 1, "at-crash-time", latency=5.0)
    FailureInjector(sim, hosts, net).install(CrashPlan().crash(5.0, 1, 1.0))
    sim.run()
    assert received == ["at-crash-time"]   # delivered after restart


def test_poisson_plan_reproducible():
    a = CrashPlan.poisson(n=4, horizon=100.0, rate=0.05,
                          streams=RandomStreams(7))
    b = CrashPlan.poisson(n=4, horizon=100.0, rate=0.05,
                          streams=RandomStreams(7))
    assert a.events == b.events
    assert all(e.time < 100.0 for e in a.events)


def test_poisson_rate_scales_failures():
    low = CrashPlan.poisson(n=8, horizon=200.0, rate=0.01,
                            streams=RandomStreams(1))
    high = CrashPlan.poisson(n=8, horizon=200.0, rate=0.1,
                             streams=RandomStreams(1))
    assert high.failure_count > low.failure_count


def test_poisson_max_failures_cap():
    plan = CrashPlan.poisson(n=2, horizon=1e6, rate=1.0,
                             streams=RandomStreams(1),
                             max_failures_per_process=3)
    per_pid = {}
    for e in plan.events:
        per_pid[e.pid] = per_pid.get(e.pid, 0) + 1
    assert all(count <= 3 for count in per_pid.values())


def test_partition_plan_executes():
    sim, net, hosts = make_stack()
    received = []
    hosts[2]._protocol.on_network_message = lambda m: received.append(m.payload)
    plan = PartitionPlan().partition(2.0, [[0, 1], [2]], heal_time=10.0)
    FailureInjector(sim, hosts, net).install(partitions=plan)
    sim.schedule_at(3.0, lambda: net.send(0, 2, "cross"))
    sim.run(until=9.0)
    assert received == []
    sim.run()
    assert received == ["cross"]


def test_partition_requires_network():
    sim, _, hosts = make_stack()
    injector = FailureInjector(sim, hosts, network=None)
    with pytest.raises(ValueError):
        injector.install(partitions=PartitionPlan().partition(1.0, [[0, 1, 2]], 2.0))


def test_partition_heal_before_form_rejected():
    with pytest.raises(ValueError):
        PartitionPlan().partition(5.0, [[0], [1]], heal_time=5.0)
