"""Unit tests for failure injection."""

import pytest

from repro.sim.failures import (
    CrashEvent,
    CrashPlan,
    FailureInjector,
    PartitionPlan,
)
from repro.sim.kernel import Simulator
from repro.sim.network import FixedLatency, Network
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams


class NullProtocol:
    def on_start(self):
        pass

    def on_network_message(self, msg):
        pass

    def on_crash(self):
        pass

    def on_restart(self):
        pass


def make_stack(n=3):
    sim = Simulator()
    net = Network(sim, n, latency=FixedLatency(1.0))
    hosts = [ProcessHost(pid, sim, net) for pid in range(n)]
    for h in hosts:
        h.attach(NullProtocol())
    return sim, net, hosts


def test_crash_plan_builder():
    plan = CrashPlan().crash(5.0, 1).crash(9.0, 2, downtime=3.0)
    assert plan.failure_count == 2
    assert plan.events[1].downtime == 3.0


def test_crash_event_validation():
    with pytest.raises(ValueError):
        CrashEvent(-1.0, 0)
    with pytest.raises(ValueError):
        CrashEvent(1.0, 0, downtime=0.0)


def test_concurrent_builder():
    plan = CrashPlan().concurrent(5.0, [0, 1, 2])
    assert plan.failure_count == 3
    assert all(e.time == 5.0 for e in plan.events)


def test_injector_executes_crash_and_restart():
    sim, net, hosts = make_stack()
    plan = CrashPlan().crash(5.0, 1, downtime=2.0)
    FailureInjector(sim, hosts, net).install(plan)
    sim.run(until=5.5)
    assert not hosts[1].alive
    sim.run(until=7.5)
    assert hosts[1].alive
    assert hosts[1].crash_count == 1


def test_crash_precedes_same_time_delivery():
    """A message arriving at the crash instant must be buffered, not lost."""
    sim, net, hosts = make_stack()
    received = []
    hosts[1]._protocol.on_network_message = lambda m: received.append(m.payload)
    net.send(0, 1, "at-crash-time", latency=5.0)
    FailureInjector(sim, hosts, net).install(CrashPlan().crash(5.0, 1, 1.0))
    sim.run()
    assert received == ["at-crash-time"]   # delivered after restart


def test_poisson_plan_reproducible():
    a = CrashPlan.poisson(n=4, horizon=100.0, rate=0.05,
                          streams=RandomStreams(7))
    b = CrashPlan.poisson(n=4, horizon=100.0, rate=0.05,
                          streams=RandomStreams(7))
    assert a.events == b.events
    assert all(e.time < 100.0 for e in a.events)


def test_poisson_rate_scales_failures():
    low = CrashPlan.poisson(n=8, horizon=200.0, rate=0.01,
                            streams=RandomStreams(1))
    high = CrashPlan.poisson(n=8, horizon=200.0, rate=0.1,
                             streams=RandomStreams(1))
    assert high.failure_count > low.failure_count


def test_poisson_max_failures_cap():
    plan = CrashPlan.poisson(n=2, horizon=1e6, rate=1.0,
                             streams=RandomStreams(1),
                             max_failures_per_process=3)
    per_pid = {}
    for e in plan.events:
        per_pid[e.pid] = per_pid.get(e.pid, 0) + 1
    assert all(count <= 3 for count in per_pid.values())


def test_overlapping_crashes_do_not_truncate_downtime():
    """Regression: a crash landing mid-downtime is a no-op, and its paired
    restart must not fire either -- otherwise it resurrects the process
    early, silently truncating the first crash's downtime."""
    sim, net, hosts = make_stack()
    plan = (
        CrashPlan()
        .crash(10.0, 1, downtime=5.0)       # down [10, 15)
        .crash(11.0, 1, downtime=1.0)       # overlaps; restart at 12 must not fire
    )
    FailureInjector(sim, hosts, net).install(plan)
    alive_at = {}
    for t in (10.5, 12.5, 14.5, 15.5):
        sim.schedule_at(t, lambda t=t: alive_at.setdefault(t, hosts[1].alive))
    sim.run()
    assert alive_at == {10.5: False, 12.5: False, 14.5: False, 15.5: True}
    assert hosts[1].crash_count == 1        # the overlapping crash was skipped


def test_overlapping_crash_restart_never_fires_late_either():
    """The skipped crash's restart is not merely deferred: a long second
    downtime must not extend the first crash's outage."""
    sim, net, hosts = make_stack()
    plan = (
        CrashPlan()
        .crash(10.0, 1, downtime=4.0)       # down [10, 14)
        .crash(12.0, 1, downtime=100.0)     # skipped as a whole
    )
    FailureInjector(sim, hosts, net).install(plan)
    sim.run(until=15.0)
    assert hosts[1].alive                   # back at 14, not 112
    assert hosts[1].crash_count == 1
    sim.run()
    assert hosts[1].alive


def test_sequential_crashes_still_both_fire():
    sim, net, hosts = make_stack()
    plan = CrashPlan().crash(5.0, 1, downtime=2.0).crash(9.0, 1, downtime=2.0)
    FailureInjector(sim, hosts, net).install(plan)
    sim.run()
    assert hosts[1].alive
    assert hosts[1].crash_count == 2


def test_partition_plan_executes():
    sim, net, hosts = make_stack()
    received = []
    hosts[2]._protocol.on_network_message = lambda m: received.append(m.payload)
    plan = PartitionPlan().partition(2.0, [[0, 1], [2]], heal_time=10.0)
    FailureInjector(sim, hosts, net).install(partitions=plan)
    sim.schedule_at(3.0, lambda: net.send(0, 2, "cross"))
    sim.run(until=9.0)
    assert received == []
    sim.run()
    assert received == ["cross"]


def test_partition_requires_network():
    sim, _, hosts = make_stack()
    injector = FailureInjector(sim, hosts, network=None)
    with pytest.raises(ValueError):
        injector.install(partitions=PartitionPlan().partition(1.0, [[0, 1, 2]], 2.0))


def test_partition_heal_before_form_rejected():
    with pytest.raises(ValueError):
        PartitionPlan().partition(5.0, [[0], [1]], heal_time=5.0)


def test_overlapping_partition_plan_rejected():
    """Regression: the docstring promises non-overlap but nothing enforced
    it -- a second partition overwrote the first and the first heal
    released everything early."""
    sim, net, hosts = make_stack()
    plan = (
        PartitionPlan()
        .partition(5.0, [[0, 1], [2]], heal_time=15.0)
        .partition(10.0, [[0], [1, 2]], heal_time=20.0)
    )
    with pytest.raises(ValueError, match="overlapping partitions"):
        FailureInjector(sim, hosts, net).install(partitions=plan)


def test_overlap_detection_is_order_independent():
    plan = (
        PartitionPlan()
        .partition(10.0, [[0], [1, 2]], heal_time=20.0)
        .partition(5.0, [[0, 1], [2]], heal_time=15.0)
    )
    with pytest.raises(ValueError, match="overlapping partitions"):
        plan.validate()


def test_back_to_back_partitions_allowed():
    """Non-overlapping windows, including one forming exactly at the
    previous heal instant, execute cleanly."""
    sim, net, hosts = make_stack()
    plan = (
        PartitionPlan()
        .partition(2.0, [[0, 1], [2]], heal_time=6.0)
        .partition(6.0, [[0], [1, 2]], heal_time=9.0)
        .partition(12.0, [[0, 2], [1]], heal_time=14.0)
    )
    FailureInjector(sim, hosts, net).install(partitions=plan)
    sim.run()
    assert net._partition is None
    assert net.held_messages == 0
