"""Unit tests for the process/application model and the executor."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import (
    AppExecutor,
    ProcessContext,
    ProcessHost,
)
from repro.sim.trace import EventKind, SimTrace


class CountingApp:
    """Counts receives; forwards small integers onward."""

    def initial_state(self, pid, n):
        return 0

    def bootstrap(self, pid, n, ctx):
        if pid == 0:
            ctx.send(1, "seed")

    def handle(self, state, payload, ctx):
        if isinstance(payload, int) and payload > 0:
            ctx.send((ctx.pid + 1) % ctx.n, payload - 1)
        if payload == "emit":
            ctx.output(state)
        return state + 1


def make_executor(trace=None):
    sim = Simulator()
    return AppExecutor(CountingApp(), pid=0, n=3, sim=sim, trace=trace), sim


class TestProcessContext:
    def test_send_collects(self):
        ctx = ProcessContext(0, 3)
        ctx.send(1, "a")
        ctx.send(2, "b")
        assert [(s.dst, s.payload) for s in ctx.sends] == [(1, "a"), (2, "b")]

    def test_send_validates_destination(self):
        ctx = ProcessContext(0, 3)
        with pytest.raises(ValueError):
            ctx.send(3, "x")
        with pytest.raises(ValueError):
            ctx.send(-1, "x")

    def test_output_collects(self):
        ctx = ProcessContext(0, 3)
        ctx.output(42)
        assert [o.value for o in ctx.outputs] == [42]


class TestAppExecutor:
    def test_initial_uid(self):
        ex, _ = make_executor()
        assert ex.current_uid == (0, 0, 0)
        assert ex.state == 0

    def test_live_execute_advances_state_and_uid(self):
        ex, _ = make_executor()
        ex.execute("x", msg_id=1)
        assert ex.state == 1
        assert ex.step == 1
        assert ex.current_uid == (0, 0, 1)

    def test_replay_requires_uid(self):
        ex, _ = make_executor()
        with pytest.raises(ValueError):
            ex.execute("x", msg_id=1, replay=True)

    def test_replay_recreates_original_uid(self):
        ex, _ = make_executor()
        ex.execute("x", msg_id=1)
        snap_before = ex.snapshot()
        ex.execute("y", msg_id=2)
        original = ex.current_uid
        ex.restore(snap_before)
        ex.execute("y", msg_id=2, replay=True, uid=original)
        assert ex.current_uid == original
        assert ex.state == 2

    def test_restore_does_not_reset_serial(self):
        ex, _ = make_executor()
        ex.execute("x", msg_id=1)
        snap = ex.snapshot()
        ex.execute("y", msg_id=2)       # serial 2, gets undone
        ex.restore(snap)
        ex.execute("z", msg_id=3)       # fresh state: must NOT reuse serial 2
        assert ex.current_uid == (0, 0, 3)

    def test_snapshot_deep_copies_state(self):
        class ListApp:
            def initial_state(self, pid, n):
                return []

            def bootstrap(self, pid, n, ctx):
                pass

            def handle(self, state, payload, ctx):
                return state + [payload]

        sim = Simulator()
        ex = AppExecutor(ListApp(), 0, 2, sim, None)
        ex.execute("a", msg_id=1)
        snap = ex.snapshot()
        ex.execute("b", msg_id=2)
        assert snap["state"] == ["a"]
        ex.restore(snap)
        assert ex.state == ["a"]

    def test_begin_incarnation_resets_serial_and_epoch(self):
        ex, _ = make_executor()
        ex.execute("x", msg_id=1)
        prev = ex.begin_incarnation(mint_tag=1, epoch=1)
        assert prev == (0, 0, 1)
        assert ex.current_uid == (0, 1, 0)
        assert ex.epoch == 1
        ex.execute("y", msg_id=2)
        assert ex.current_uid == (0, 1, 1)

    def test_new_recovery_state_mints_fresh_uid(self):
        ex, _ = make_executor()
        ex.execute("x", msg_id=1)
        snap = ex.snapshot()
        ex.execute("y", msg_id=2)
        ex.restore(snap)
        prev = ex.new_recovery_state()
        assert prev == (0, 0, 1)
        assert ex.current_uid == (0, 0, 3)   # serial 2 was consumed by "y"

    def test_trace_records_deliver_with_uids(self):
        trace = SimTrace()
        ex, _ = make_executor(trace)
        ex.execute("x", msg_id=9)
        events = trace.events(EventKind.DELIVER)
        assert len(events) == 1
        assert events[0]["msg_id"] == 9
        assert events[0]["uid"] == (0, 0, 1)
        assert events[0]["prev_uid"] == (0, 0, 0)
        assert events[0]["replay"] is False

    def test_bootstrap_returns_initial_sends(self):
        ex, _ = make_executor()
        ctx = ex.bootstrap()
        assert [(s.dst, s.payload) for s in ctx.sends] == [(1, "seed")]


class TestProcessHost:
    def make_host(self):
        sim = Simulator()
        net = Network(sim, 2)
        trace = SimTrace()
        host = ProcessHost(0, sim, net, trace)
        ProcessHost(1, sim, net, trace)

        class FakeProtocol:
            def __init__(self):
                self.received = []
                self.crashes = 0
                self.restarts = 0

            def on_start(self):
                pass

            def on_network_message(self, msg):
                self.received.append(msg.payload)

            def on_crash(self):
                self.crashes += 1

            def on_restart(self):
                self.restarts += 1

        proto = FakeProtocol()
        host.attach(proto)
        return sim, net, host, proto, trace

    def test_delivery_reaches_protocol(self):
        sim, net, host, proto, _ = self.make_host()
        net.send(1, 0, "m")
        sim.run()
        assert proto.received == ["m"]

    def test_crash_buffers_messages_until_restart(self):
        sim, net, host, proto, _ = self.make_host()
        host.crash()
        net.send(1, 0, "while-down")
        sim.run()
        assert proto.received == []
        host.restart()
        assert proto.received == ["while-down"]
        assert proto.crashes == 1 and proto.restarts == 1

    def test_crash_records_trace_and_count(self):
        sim, net, host, proto, trace = self.make_host()
        host.crash()
        host.restart()
        host.crash()
        assert host.crash_count == 2
        assert trace.count(EventKind.CRASH, pid=0) == 2

    def test_crash_idempotent_while_down(self):
        sim, net, host, proto, _ = self.make_host()
        host.crash()
        host.crash()
        assert proto.crashes == 1
        assert host.crash_count == 1

    def test_restart_noop_when_alive(self):
        sim, net, host, proto, _ = self.make_host()
        host.restart()
        assert proto.restarts == 0

    def test_attach_twice_rejected(self):
        sim, net, host, proto, _ = self.make_host()
        with pytest.raises(RuntimeError):
            host.attach(proto)

    def test_protocol_required(self):
        sim = Simulator()
        net = Network(sim, 1)
        host = ProcessHost(0, sim, net)
        with pytest.raises(RuntimeError):
            _ = host.protocol
