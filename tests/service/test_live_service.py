"""Live-engine service tests: exactly-once through a real SIGKILL.

One real shard (gateway + 2 replicas over TCP), one closed-loop session
hammering a single key through the supervisor's SIGKILL window with the
real :class:`~repro.service.client.KVClient` retry machinery.  The
sequential acked versions 1..N are the strongest client-visible form of
the exactly-once contract: a duplicated application would skip a number,
a lost acked write would repeat one, and a stale ack would regress.
The simulator half of this contract is
``tests/service/test_exactly_once.py``.
"""

import asyncio

from repro.service import KVClient, ServiceConfig, ShardManager


def test_single_session_versions_survive_sigkill(tmp_path):
    config = ServiceConfig(
        shards=1,
        nodes_per_shard=3,
        run_seconds=7.0,
        crash_at=1.2,
        downtime=0.5,
        request_timeout=0.3,
        sessions=1,
    )
    manager = ShardManager(config, str(tmp_path))
    manager.start()
    manager.wait_ready()

    async def drive():
        client = KVClient(
            manager.routing,
            manager.endpoints(),
            request_timeout=config.request_timeout,
        )
        await client.start()
        session = client.session()
        versions = []
        # Keep one put in flight until well past the crash+recovery
        # window, retrying the same op id on every timeout.
        while client.now() < config.crash_at + config.downtime + 1.5:
            reply = await session.put(
                "hot", len(versions), deadline=client.now() + 10.0
            )
            assert reply is not None, "put never acked"
            versions.append(int(reply["version"]))
        read = await session.get(
            "hot",
            min_version=len(versions),
            deadline=client.now() + 10.0,
        )
        retries = sum(m.retries for m in client.metrics)
        await client.aclose()
        return versions, read, retries

    versions, read, retries = asyncio.run(drive())
    manager.stop()   # run_seconds is a cap; the workload is done
    results = manager.join()

    # The SIGKILL actually happened mid-session.
    assert results[0].kills, "no SIGKILL was delivered"

    # Exactly-once + monotone: acked versions are exactly 1..N in order.
    assert len(versions) >= 3
    assert versions == list(range(1, len(versions) + 1))

    # Read-your-writes after recovery: the final read sits exactly at
    # the last acked version and holds the last written value.
    assert read is not None, "post-recovery read never satisfied the floor"
    assert int(read["version"]) == len(versions)
    assert int(read["value"]) == len(versions) - 1

    # The gateway injected every attempt; the dedup ledger absorbed the
    # retried ones (at least one retry happened around the kill in the
    # common case -- but a lucky schedule may dodge the window, so only
    # the version sequence above is load-bearing).
    assert retries >= 0
