"""Unit tests for the service KV application and its session ledger.

The ledger is the exactly-once mechanism: these tests pin its semantics
(a set of applied seqs, not a high-water mark; cached-reply re-acks;
rollback-safe re-application) at the pure-function level, where every
case is a one-line scenario instead of a cluster run.
"""

import pytest

from repro.service.kv import (
    KVGet,
    KVPut,
    KVReplicate,
    KVReply,
    KVServiceApp,
    ServiceReplicaState,
    SessionSlot,
    lookup_sorted,
)
from repro.sim.process import ProcessContext


def ctx(pid, n=4):
    return ProcessContext(pid, n)


class TestSessionSlot:
    def test_record_and_has(self):
        reply = KVReply(op_id=(7, 3), key="a", value=1, version=1)
        slot = SessionSlot().record(3, reply)
        assert slot.has(3)
        assert not slot.has(2) and not slot.has(4)
        assert slot.last_reply == reply

    def test_is_a_set_not_a_high_water_mark(self):
        """Out-of-order recording (a rollback re-applying seq 1 after a
        retried seq 2 landed) must keep both seqs, sorted."""
        r2 = KVReply(op_id=(7, 2), key="a", value=2, version=1)
        r1 = KVReply(op_id=(7, 1), key="a", value=1, version=2)
        slot = SessionSlot().record(2, r2).record(1, r1)
        assert slot.applied == (1, 2)
        assert slot.has(1) and slot.has(2) and not slot.has(0)


class TestServiceReplicaState:
    def test_store_lookup_and_ledger(self):
        reply = KVReply(op_id=(9, 0), key="a", value=5, version=1)
        state = ServiceReplicaState().store(
            "a", 5, 1, session=9, slot=SessionSlot().record(0, reply)
        )
        assert state.lookup("a") == (5, 1)
        assert state.lookup("zzz") is None
        assert state.slot(9).has(0)
        assert not state.slot(8).has(0)    # unknown session: empty slot
        assert state.applied == 1

    def test_states_stay_hashable(self):
        reply = KVReply(op_id=(1, 0), key="a", value=1, version=1)
        state = ServiceReplicaState().store(
            "a", 1, 1, session=1, slot=SessionSlot().record(0, reply)
        )
        assert hash(state) == hash(
            ServiceReplicaState().store(
                "a", 1, 1, session=1, slot=SessionSlot().record(0, reply)
            )
        )

    def test_lookup_sorted_prefix_probe(self):
        data = (("a", 1), ("b", 2), ("c", 3))
        assert lookup_sorted(data, "b") == 2
        assert lookup_sorted(data, "bb") is None
        assert lookup_sorted((), "a") is None


class TestKVServiceApp:
    def test_gateway_must_not_receive_app_messages(self):
        """A delivery at pid 0 would make the gateway rollback-able and
        regress its injection dedup ids -- it is a bug, loudly."""
        app = KVServiceApp(replicas=3)
        with pytest.raises(TypeError):
            app.handle(
                ServiceReplicaState(),
                KVPut(key="a", value=1, op_id=(0, 0)),
                ctx(0),
            )

    def test_primary_range_excludes_gateway(self):
        app = KVServiceApp(replicas=3)
        for i in range(50):
            assert 1 <= app.primary_for(f"k{i}") <= 3

    def test_put_replies_via_output_and_replicates(self):
        app = KVServiceApp(replicas=3)
        c = ctx(1)
        state = app.handle(
            ServiceReplicaState(), KVPut(key="a", value=5, op_id=(7, 0)), c
        )
        assert state.lookup("a") == (5, 1)
        assert state.slot(7).has(0)
        # Reply leaves through the environment (the node's reply port),
        # never as a send back to the gateway.
        assert [o.value.version for o in c.outputs] == [1]
        assert all(s.dst != 0 for s in c.sends)
        assert {s.dst for s in c.sends} == {2, 3}
        assert all(isinstance(s.payload, KVReplicate) for s in c.sends)

    def test_duplicate_put_reacks_from_cache_without_reapplying(self):
        app = KVServiceApp(replicas=2)
        put = KVPut(key="a", value=5, op_id=(7, 0))
        c1 = ctx(1, 3)
        state = app.handle(ServiceReplicaState(), put, c1)
        c2 = ctx(1, 3)
        deduped = app.handle(state, put, c2)
        # No double application: same version, no new replicate.
        assert deduped.lookup("a") == (5, 1)
        assert c2.sends == []
        assert [o.value for o in c2.outputs] == [c1.outputs[0].value]

    def test_distinct_ops_on_one_key_bump_versions(self):
        app = KVServiceApp(replicas=2)
        c = ctx(1, 3)
        state = app.handle(
            ServiceReplicaState(), KVPut(key="a", value=5, op_id=(7, 0)), c
        )
        state = app.handle(state, KVPut(key="a", value=6, op_id=(7, 1)), c)
        assert state.lookup("a") == (6, 2)
        assert [o.value.version for o in c.outputs] == [1, 2]

    def test_get_is_not_deduplicated(self):
        """A retried get must observe the current store (that is how a
        client's version floor escapes a stale window)."""
        app = KVServiceApp(replicas=2)
        get = KVGet(key="a", op_id=(7, 5))
        state = ServiceReplicaState().store("a", 1, 1)
        c = ctx(1, 3)
        app.handle(state, get, c)
        state = state.store("a", 2, 2)
        app.handle(state, get, c)
        assert [o.value.version for o in c.outputs] == [1, 2]

    def test_replicate_applies_only_newer_versions(self):
        app = KVServiceApp(replicas=2)
        state = ServiceReplicaState().store("a", 5, 3)
        newer = app.handle(
            state,
            KVReplicate(key="a", value=9, version=4, op_id=(7, 1)),
            ctx(2, 3),
        )
        assert newer.lookup("a") == (9, 4)
        stale = app.handle(
            newer,
            KVReplicate(key="a", value=1, version=2, op_id=(7, 2)),
            ctx(2, 3),
        )
        assert stale.lookup("a") == (9, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            KVServiceApp(replicas=0)
