"""Exactly-once across crash and rollback, on the deterministic simulator.

The scenario the service's session ledger exists for: a client retries
the same ``op_id`` around a primary crash.  The gateway (pid 0) injects
the put and its retries via ``inject_app_send`` -- exactly what the live
gateway does -- the primary is crashed mid-run, and afterwards the
surviving timeline must show the op applied exactly once, with versions
that never regress.  The live-engine half of this contract is
``tests/service/test_live_service.py``.
"""

from repro.core.recovery import DamaniGargProcess
from repro.protocols.base import ProtocolConfig
from repro.runtime.trace import EventKind
from repro.service.kv import KVPut, KVReply, KVServiceApp
from repro.sim.failures import CrashPlan, FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import DeliveryOrder, Network, ScriptedLatency
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTrace


def _boot(n=4, crashes=None, seed=0):
    """A manual shard: gateway at pid 0, replicas 1..n-1, like live."""
    sim = Simulator()
    trace = SimTrace()
    network = Network(
        sim,
        n,
        streams=RandomStreams(seed),
        latency=ScriptedLatency(default=0.05),
        order=DeliveryOrder.RANDOM,
        trace=trace,
    )
    hosts = [ProcessHost(pid, sim, network, trace) for pid in range(n)]
    app = KVServiceApp(replicas=n - 1)
    protocols = [
        DamaniGargProcess(
            host.runtime_env(),
            app,
            ProtocolConfig(
                checkpoint_interval=2.0,
                flush_interval=0.5,
                retransmit_on_token=True,
            ),
        )
        for host in hosts
    ]
    for host in hosts:
        host.start()
    if crashes is not None:
        FailureInjector(sim, hosts, network).install(crashes=crashes)
    return sim, trace, hosts, protocols, app


def _settle(sim, protocols, horizon):
    sim.run(until=horizon)
    for protocol in protocols:
        protocol.halt_periodic_tasks()
    sim.drain()


def _replies(protocol, op_id):
    return [
        value
        for _, value in protocol.outputs
        if isinstance(value, KVReply) and value.op_id == op_id
    ]


def test_retry_through_primary_crash_applies_once():
    app_probe = KVServiceApp(replicas=3)
    primary = app_probe.primary_for("a")
    plan = CrashPlan()
    plan.crash(5.0, primary, 2.0)
    sim, trace, hosts, protocols, app = _boot(crashes=plan)
    gateway = protocols[0]

    def put(op_id, value):
        return lambda: gateway.inject_app_send(
            primary, KVPut(key="a", value=value, op_id=op_id)
        )

    # One op, retried before, during, and after the crash window --
    # always the same op_id, as the service client does.
    for t in (1.0, 2.0, 6.0, 12.0):
        sim.schedule(t, put((7, 0), 9))
    # A second op after recovery must land on the next version.
    sim.schedule(14.0, put((7, 1), 10))
    _settle(sim, protocols, horizon=40.0)

    assert trace.events(EventKind.CRASH, pid=primary)
    assert trace.events(EventKind.RESTART, pid=primary)

    # Exactly one application per op on the surviving timeline.
    state = protocols[primary].executor.state
    assert state.lookup("a") == (10, 2)
    assert state.slot(7).applied == (0, 1)

    # Every ack for the retried op carries the same version -- retries
    # and crash recovery never surfaced a second application -- and the
    # follow-up op observes the next version: monotone, no regression.
    first = _replies(protocols[primary], (7, 0))
    second = _replies(protocols[primary], (7, 1))
    assert first and {r.version for r in first} == {1}
    assert second and {r.version for r in second} == {2}

    # Replication converged: every replica holds the final write.
    for pid in range(1, 4):
        assert protocols[pid].executor.state.lookup("a") == (10, 2)


def test_retry_without_crash_is_deduplicated():
    sim, trace, hosts, protocols, app = _boot()
    primary = app.primary_for("k")
    gateway = protocols[0]
    for t in (1.0, 1.2, 1.4):
        sim.schedule(
            t,
            lambda: gateway.inject_app_send(
                primary, KVPut(key="k", value=3, op_id=(5, 0))
            ),
        )
    _settle(sim, protocols, horizon=20.0)
    state = protocols[primary].executor.state
    assert state.lookup("k") == (3, 1)
    replies = _replies(protocols[primary], (5, 0))
    # Three acks (one per delivery), all for the single application.
    assert len(replies) == 3
    assert {r.version for r in replies} == {1}


def test_interleaved_sessions_get_distinct_versions():
    sim, trace, hosts, protocols, app = _boot()
    primary = app.primary_for("shared")
    gateway = protocols[0]
    for i, session in enumerate((11, 22, 33)):
        sim.schedule(
            1.0 + 0.3 * i,
            lambda s=session: gateway.inject_app_send(
                primary, KVPut(key="shared", value=s, op_id=(s, 0))
            ),
        )
    _settle(sim, protocols, horizon=20.0)
    state = protocols[primary].executor.state
    assert state.lookup("shared")[1] == 3
    versions = {
        op_id: [r.version for r in _replies(protocols[primary], op_id)]
        for op_id in ((11, 0), (22, 0), (33, 0))
    }
    flat = sorted(v for vs in versions.values() for v in vs)
    assert flat == [1, 2, 3]
