"""Routing-table tests: stability, salting, versioning, serialisation.

The table is the client's only notion of the service topology, so its
key placement must be deterministic (every client agrees), independent
of the in-shard primary placement (the salt), and round-trippable
through JSON (clients can bootstrap from ``routing.json``).
"""

import pytest

from repro.service import RoutingTable
from repro.service.kv import KVServiceApp


def test_rejects_bad_shard_count():
    with pytest.raises(ValueError):
        RoutingTable(shards=0)


def test_placement_is_deterministic_and_in_range():
    table = RoutingTable(shards=5)
    for i in range(200):
        key = f"user:{i}"
        shard = table.shard_for(key)
        assert 0 <= shard < 5
        assert shard == table.shard_for(key)


def test_single_shard_maps_everything_to_zero():
    table = RoutingTable(shards=1)
    assert {table.shard_for(f"k{i}") for i in range(50)} == {0}


def test_all_shards_get_keys():
    table = RoutingTable(shards=4)
    hits = {table.shard_for(f"key-{i}") for i in range(400)}
    assert hits == {0, 1, 2, 3}


def test_shard_salt_decouples_routing_from_primary_placement():
    """Key -> shard must not correlate with key -> primary: without the
    salt, every key landing on shard s would also land on the same
    primary inside it, concentrating all load on one replica."""
    table = RoutingTable(shards=3)
    app = KVServiceApp(replicas=3)
    primaries = {
        app.primary_for(f"key-{i}")
        for i in range(300)
        if table.shard_for(f"key-{i}") == 0
    }
    assert primaries == {1, 2, 3}


def test_reshard_bumps_version():
    table = RoutingTable(shards=2)
    grown = table.reshard(4)
    assert grown.shards == 4
    assert grown.version == table.version + 1


def test_round_trip_through_dict():
    table = RoutingTable(shards=3).reshard(6)
    clone = RoutingTable.from_dict(table.to_dict())
    assert clone == table
    assert [clone.shard_for(f"k{i}") for i in range(50)] == [
        table.shard_for(f"k{i}") for i in range(50)
    ]


def test_from_dict_rejects_unknown_format():
    with pytest.raises(ValueError):
        RoutingTable.from_dict({"format": "not-routing", "shards": 2})
