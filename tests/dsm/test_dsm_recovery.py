"""DSM under failures: coherence invariants must survive recovery."""

from collections import defaultdict

import pytest

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.core.recovery import DamaniGargProcess
from repro.dsm import DSMApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan

HOMES, WORKERS, OPS = 2, 3, 20


def run_dsm(*, seed=0, crashes=None, record=False, retransmit=True):
    spec = ExperimentSpec(
        n=HOMES + WORKERS,
        app=DSMApp(homes=HOMES, pages=4, ops_per_worker=OPS),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=400.0,
        record_states=record,
        config=ProtocolConfig(
            checkpoint_interval=12.0,
            flush_interval=4.0,
            retransmit_on_token=retransmit,
        ),
    )
    return run_experiment(spec)


def home_states(result):
    return [result.protocols[pid].executor.state for pid in range(HOMES)]


def worker_states(result):
    return [
        result.protocols[pid].executor.state
        for pid in range(HOMES, HOMES + WORKERS)
    ]


def test_failure_free_all_sessions_complete():
    result = run_dsm()
    for worker in worker_states(result):
        assert worker.ops_sent == OPS and worker.replies == OPS


def test_failure_free_versions_dense():
    result = run_dsm()
    for home in home_states(result):
        per_page = defaultdict(list)
        for page, version, _value, _writer, _kind in home.write_log:
            per_page[page].append(version)
        for versions in per_page.values():
            assert versions == list(range(1, len(versions) + 1))


@pytest.mark.parametrize("seed", range(4))
def test_recovery_with_home_and_worker_crashes(seed):
    result = run_dsm(
        seed=seed,
        crashes=CrashPlan().crash(40.0, 0, 2.0).crash(80.0, 3, 2.0),
    )
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    # Liveness: every worker completes its whole session despite the
    # crashes (log re-presentation + Remark-1 retransmission).
    for worker in worker_states(result):
        assert worker.replies == OPS


def test_versions_stay_dense_after_recovery():
    result = run_dsm(
        seed=1, crashes=CrashPlan().crash(40.0, 0, 2.0).crash(80.0, 1, 2.0)
    )
    for home in home_states(result):
        per_page = defaultdict(list)
        for page, version, _v, _w, _k in home.write_log:
            per_page[page].append(version)
        for versions in per_page.values():
            assert versions == list(range(1, len(versions) + 1))


def test_every_read_saw_a_committed_write():
    """Reads must return (version, value) pairs from some home's write log
    (or the initial (0, 0)) -- even across rollbacks."""
    result = run_dsm(
        seed=2, crashes=CrashPlan().crash(40.0, 1, 2.0)
    )
    app = DSMApp(homes=HOMES, pages=4, ops_per_worker=OPS)
    committed = {}
    for home in home_states(result):
        for page, version, value, _writer, _kind in home.write_log:
            committed[(page, version)] = value
    for worker in worker_states(result):
        for page, version, value in worker.reads_log:
            if version == 0:
                assert value == 0
            else:
                assert committed.get((page, version)) == value, (
                    page, version, value,
                )


def test_worker_version_monotonicity_on_surviving_chain():
    result = run_dsm(
        seed=3,
        crashes=CrashPlan().crash(40.0, 0, 2.0).crash(90.0, 4, 2.0),
        record=True,
    )
    gt = build_ground_truth(result.trace, HOMES + WORKERS)
    for pid in range(HOMES, HOMES + WORKERS):
        states = result.protocols[pid].executor.state_by_uid
        last: dict[int, int] = {}
        for uid in gt.surviving[pid]:
            snapshot = states.get(uid)
            if snapshot is None:
                continue
            for page, version, _value in snapshot.reads_log:
                pass   # reads_log is append-only; check the tail instead
            if snapshot.reads_log:
                page, version, _value = snapshot.reads_log[-1]
                assert version >= last.get(page, 0)
                last[page] = version


def test_no_fetch_add_is_lost_or_duplicated():
    """Home counters equal the number of committed fetch-adds, and every
    surviving acked increment is reflected."""
    result = run_dsm(
        seed=1, crashes=CrashPlan().crash(50.0, 0, 2.0)
    )
    committed_adds = defaultdict(int)
    counters = {}
    for home in home_states(result):
        for page, _version, value, _writer, kind in home.write_log:
            if kind == "fetchadd":
                committed_adds[page] += 1
        for page, (value, _version) in home.pages:
            counters[page] = value
    # Pure fetch-add pages would equal their add count; with interleaved
    # writes the invariant is the weaker global one:
    acked = sum(w.adds_acked for w in worker_states(result))
    total_committed = sum(committed_adds.values())
    assert acked <= total_committed
    verdict = check_recovery(result)
    assert verdict.ok
