"""Unit tests for the DSM coherence protocol (no failures here)."""

import pytest

from repro.dsm.coherence import (
    DSMApp,
    DSMFetchAdd,
    DSMFetchAddAck,
    DSMInvAck,
    DSMInvalidate,
    DSMRead,
    DSMReadData,
    DSMWrite,
    DSMWriteAck,
    HomeState,
    WorkerState,
)
from repro.sim.process import ProcessContext


def ctx(pid=0, n=4):
    return ProcessContext(pid, n)


def payloads(c):
    return [(s.dst, s.payload) for s in c.sends]


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            DSMApp(homes=0)
        with pytest.raises(ValueError):
            DSMApp(pages=0)

    def test_topology(self):
        app = DSMApp(homes=2, pages=4)
        assert app.is_home(0) and app.is_home(1) and not app.is_home(2)
        assert app.home_of(0) == 0 and app.home_of(1) == 1
        assert app.home_of(2) == 0


class TestReads:
    def test_read_returns_current_and_registers_copy(self):
        app = DSMApp(homes=1, pages=2)
        c = ctx(0)
        state = app.handle(HomeState(), DSMRead(page=0, reader=2, req=5), c)
        (dst, reply), = payloads(c)
        assert dst == 2
        assert reply == DSMReadData(page=0, value=0, version=0, req=5)
        assert state.copyset(0) == (2,)

    def test_read_during_pending_write_is_deferred(self):
        app = DSMApp(homes=1, pages=1)
        # Reader 2 caches; writer 3 starts a write (invalidation pending).
        state = app.handle(HomeState(), DSMRead(0, 2, 0), ctx(0))
        c = ctx(0)
        state = app.handle(state, DSMWrite(0, 99, 3, 1), c)
        assert any(isinstance(p, DSMInvalidate) for _d, p in payloads(c))
        c2 = ctx(0)
        state = app.handle(state, DSMRead(0, 1, 2), c2)
        assert payloads(c2) == []                  # deferred, not answered
        assert state.deferred_reads == ((0, 1, 2),)
        # The invack commits the write AND releases the read with the NEW value.
        c3 = ctx(0)
        state = app.handle(state, DSMInvAck(page=0, sender=2), c3)
        sent = payloads(c3)
        read_replies = [p for _d, p in sent if isinstance(p, DSMReadData)]
        assert read_replies == [DSMReadData(page=0, value=99, version=1, req=2)]


class TestWrites:
    def test_uncached_write_commits_immediately(self):
        app = DSMApp(homes=1, pages=1)
        c = ctx(0)
        state = app.handle(HomeState(), DSMWrite(0, 7, 2, 0), c)
        (dst, ack), = payloads(c)
        assert dst == 2
        assert ack == DSMWriteAck(page=0, value=7, version=1, req=0)
        assert state.page_entry(0) == (7, 1)
        assert state.copyset(0) == (2,)
        assert state.write_log[-1] == (0, 1, 7, 2, "write")

    def test_cached_write_waits_for_all_invacks(self):
        app = DSMApp(homes=1, pages=1)
        state = app.handle(HomeState(), DSMRead(0, 2, 0), ctx(0))
        state = app.handle(state, DSMRead(0, 3, 0), ctx(0))
        c = ctx(0, 5)
        state = app.handle(state, DSMWrite(0, 9, 4, 1), c)
        invalidations = [d for d, p in payloads(c)
                         if isinstance(p, DSMInvalidate)]
        assert sorted(invalidations) == [2, 3]
        assert state.page_entry(0) == (0, 0)        # not committed yet
        c2 = ctx(0, 5)
        state = app.handle(state, DSMInvAck(0, 2), c2)
        assert payloads(c2) == []                   # still waiting for 3
        c3 = ctx(0, 5)
        state = app.handle(state, DSMInvAck(0, 3), c3)
        assert state.page_entry(0) == (9, 1)
        acks = [p for _d, p in payloads(c3) if isinstance(p, DSMWriteAck)]
        assert acks == [DSMWriteAck(page=0, value=9, version=1, req=1)]

    def test_writer_keeps_cached_copy_others_invalidated(self):
        app = DSMApp(homes=1, pages=1)
        state = app.handle(HomeState(), DSMRead(0, 2, 0), ctx(0))
        c = ctx(0)
        state = app.handle(state, DSMWrite(0, 5, 2, 1), c)
        # The writer itself was the only cacher: no invalidations needed.
        assert not any(isinstance(p, DSMInvalidate) for _d, p in payloads(c))
        assert state.copyset(0) == (2,)

    def test_queued_writes_commit_in_order(self):
        app = DSMApp(homes=1, pages=1)
        state = app.handle(HomeState(), DSMRead(0, 2, 0), ctx(0))
        state = app.handle(state, DSMWrite(0, 10, 3, 1), ctx(0))
        state = app.handle(state, DSMWrite(0, 20, 1, 2), ctx(0))
        c = ctx(0)
        state = app.handle(state, DSMInvAck(0, 2), c)
        # First write committed (v1=10); the second then commits directly
        # because after the first commit only writer 3 caches the page --
        # which must itself be invalidated before writer 1's write.
        assert state.write_log[0][:3] == (0, 1, 10)
        # Second write invalidates writer 3's copy before committing.
        pending_inv = [d for d, p in payloads(c)
                       if isinstance(p, DSMInvalidate)]
        assert pending_inv == [3]
        c2 = ctx(0)
        state = app.handle(state, DSMInvAck(0, 3), c2)
        assert state.page_entry(0) == (20, 2)


class TestFetchAdd:
    def test_fetch_add_is_computed_at_commit(self):
        app = DSMApp(homes=1, pages=1)
        state = HomeState().with_page(0, 10, 3)
        c = ctx(0)
        state = app.handle(state, DSMFetchAdd(page=0, delta=5, writer=2,
                                              req=0), c)
        (dst, ack), = payloads(c)
        assert ack == DSMFetchAddAck(page=0, value=15, version=4, req=0)
        assert state.page_entry(0) == (15, 4)

    def test_two_queued_adds_never_lose_an_increment(self):
        app = DSMApp(homes=1, pages=1)
        state = app.handle(HomeState(), DSMRead(0, 1, 0), ctx(0))
        state = app.handle(state, DSMFetchAdd(0, 1, 2, 1), ctx(0))
        state = app.handle(state, DSMFetchAdd(0, 1, 3, 2), ctx(0))
        state = app.handle(state, DSMInvAck(0, 1), ctx(0))
        state = app.handle(state, DSMInvAck(0, 2), ctx(0))
        assert state.page_entry(0)[0] == 2


class TestWorker:
    def test_invalidate_drops_cache_and_acks(self):
        app = DSMApp(homes=1, pages=1)
        worker = WorkerState().with_cache(0, (5, 1))
        c = ctx(2)
        worker = app.handle(worker, DSMInvalidate(page=0, home=0), c)
        assert worker.cached(0) is None
        assert payloads(c) == [(0, DSMInvAck(page=0, sender=2))]

    def test_reply_caches_logs_and_issues_next_op(self):
        app = DSMApp(homes=1, pages=2, ops_per_worker=5)
        worker = WorkerState(ops_sent=1)
        c = ctx(2)
        worker = app.handle(
            worker, DSMReadData(page=1, value=8, version=2, req=0), c
        )
        assert worker.cached(1) == (8, 2)
        assert worker.reads_log == ((1, 2, 8),)
        assert worker.replies == 1
        assert worker.ops_sent == 2
        assert len(c.sends) == 1

    def test_worker_stops_at_budget(self):
        app = DSMApp(homes=1, pages=1, ops_per_worker=1)
        worker = WorkerState(ops_sent=1)
        c = ctx(2)
        worker = app.handle(
            worker, DSMWriteAck(page=0, value=1, version=1, req=0), c
        )
        assert c.sends == []
        assert worker.ops_sent == 1


class TestFetchAddAtomicity:
    def test_sequential_fetch_adds_never_share_a_base(self):
        """Each fetch-add computes at commit time: results must be the
        strictly increasing sequence 1, 2, never a repeated base."""
        app = DSMApp(homes=1, pages=1)
        c = ctx(0, n=8)
        state = app.handle(HomeState(), DSMFetchAdd(0, 1, 2, 0), c)
        (_, ack1), = payloads(c)
        assert ack1 == DSMFetchAddAck(page=0, value=1, version=1, req=0)

        # Worker 2 now holds the only copy; worker 3's fetch-add must wait
        # for 2's invalidation ack and then see the committed base.
        c = ctx(0, n=8)
        state = app.handle(state, DSMFetchAdd(0, 1, 3, 1), c)
        (inv_dst, inv), = payloads(c)
        assert inv_dst == 2 and isinstance(inv, DSMInvalidate)

        c = ctx(0, n=8)
        state = app.handle(state, DSMInvAck(page=0, sender=2), c)
        (_, ack2), = payloads(c)
        assert ack2 == DSMFetchAddAck(page=0, value=2, version=2, req=1)
        assert state.copyset(0) == (3,)

    def test_write_log_records_both_commits_in_order(self):
        app = DSMApp(homes=1, pages=1)
        state = app.handle(HomeState(), DSMFetchAdd(0, 1, 2, 0), ctx(0, n=8))
        state = app.handle(state, DSMFetchAdd(0, 1, 3, 1), ctx(0, n=8))
        state = app.handle(state, DSMInvAck(page=0, sender=2), ctx(0, n=8))
        assert [entry[1:3] for entry in state.write_log] == [
            (1, 1), (2, 2)
        ]


class TestDrainOrdering:
    def _pending_write_with_backlog(self, app):
        """Reader 2 caches; writer 3 stalls on 2's ack; a fetch-add from 4
        and a read from 5 pile up behind it."""
        state = app.handle(HomeState(), DSMRead(0, 2, 0), ctx(0, n=8))
        state = app.handle(state, DSMWrite(0, 100, 3, 1), ctx(0, n=8))
        state = app.handle(state, DSMFetchAdd(0, 1, 4, 2), ctx(0, n=8))
        state = app.handle(state, DSMRead(0, 5, 3), ctx(0, n=8))
        return state

    def test_backlog_is_queued_not_served(self):
        app = DSMApp(homes=1, pages=1)
        state = self._pending_write_with_backlog(app)
        assert state.has_pending(0)
        assert state.deferred_reads == ((0, 5, 3),)
        # The fetch-add is queued behind the write, not started.
        assert [op.kind for op in state.pending] == ["write", "fetchadd"]

    def test_commit_serves_deferred_reads_then_next_op(self):
        app = DSMApp(homes=1, pages=1)
        state = self._pending_write_with_backlog(app)
        c = ctx(0, n=8)
        state = app.handle(state, DSMInvAck(page=0, sender=2), c)
        sent = payloads(c)
        # 1) the write commits and acks writer 3 with its value,
        assert sent[0] == (
            3, DSMWriteAck(page=0, value=100, version=1, req=1)
        )
        # 2) the deferred read is served the *committed* value -- the
        #    stale pre-write copy can never leak past the commit,
        assert sent[1] == (
            5, DSMReadData(page=0, value=100, version=1, req=3)
        )
        # 3) only then does the queued fetch-add start, invalidating the
        #    writer's and the reader's fresh copies.
        inv_targets = sorted(
            dst for dst, p in sent[2:] if isinstance(p, DSMInvalidate)
        )
        assert inv_targets == [3, 5]

    def test_queued_op_commits_after_all_acks(self):
        app = DSMApp(homes=1, pages=1)
        state = self._pending_write_with_backlog(app)
        state = app.handle(state, DSMInvAck(page=0, sender=2), ctx(0, n=8))
        state = app.handle(state, DSMInvAck(page=0, sender=3), ctx(0, n=8))
        c = ctx(0, n=8)
        state = app.handle(state, DSMInvAck(page=0, sender=5), c)
        (dst, ack), = payloads(c)
        assert dst == 4
        assert ack == DSMFetchAddAck(page=0, value=101, version=2, req=2)
        assert not state.has_pending(0)


class TestWorkerInvalidation:
    def test_invalidate_drops_cache_and_acks_home(self):
        app = DSMApp(homes=1, pages=1)
        worker = WorkerState(cache=((0, (7, 1)),))
        c = ctx(2, n=8)
        worker = app.handle(worker, DSMInvalidate(page=0, home=0), c)
        assert worker.cached(0) is None
        assert payloads(c) == [(0, DSMInvAck(page=0, sender=2))]
