"""CLI surface snapshot: ``python -m repro`` flag names are frozen.

Scripts, docs, and the CI workflows spell these flags out; renaming one
is a breaking change that must be made here deliberately, in the same
commit that updates every caller.  The snapshot pins, per subcommand,
the exact set of option strings (and positional dests in ``<angle>``
brackets); defaults and help texts are free to evolve.
"""

import argparse

import pytest

from repro.__main__ import build_parser

# The frozen flag inventory.  Additions are fine (append here); removals
# and renames are breaking.
CLI_SURFACE = {
    "run": ["--checkpoint-interval", "--crash", "--fifo", "--flush-interval",
            "--help", "--horizon", "--protocol", "--seed", "--timeline",
            "--timeline-limit", "--workload", "-h", "-n"],
    "table1": ["--help", "--jobs", "--seeds", "-h", "-n"],
    "figures": ["--help", "-h"],
    "trace": ["--help", "--out", "--seed", "-h", "<scenario>"],
    "bench": ["--help", "--jobs", "--matrix", "--out", "--repeats", "--seed",
              "-h", "<scenario>"],
    "stress": ["--cache-dir", "--fail-fast", "--help", "--jobs", "--live",
               "--no-shrink", "--out-dir", "--profile", "--quiet", "--replay",
               "--schedules", "--seed", "-h"],
    "exec-bench": ["--budget-slots", "--help", "--jobs", "--min-speedup",
                   "--out", "--profile", "--schedules", "--seed", "-h"],
    "overhead": ["--crash", "--help", "--horizon", "--seed", "-h", "-n"],
    "live": ["--crash-at", "--crash-pid", "--downtime", "--fault-seed",
             "--faults", "--help", "--jobs", "--no-crash", "--run-seconds",
             "--workdir", "-h", "-n"],
    "rollback": ["--at", "--data-dir", "--dry-run", "--earliest", "--help",
                 "--pids", "--reason", "--witness", "-h", "-n"],
    "live-bench": ["--help", "--jobs", "--out", "--run-seconds", "--workdir",
                   "-h", "-n"],
    "wire-bench": ["--help", "--jobs", "--min-piggyback-reduction", "--out",
                   "--run-seconds", "--seed", "--skip-live", "--workdir",
                   "-h", "-n"],
    "load": ["--check-trend", "--duration", "--help",
             "--min-deliveries-per-sec", "--out", "--rates", "--start-at",
             "--trend-file", "--workdir", "-h", "-n"],
    "scale-bench": ["--budget-slots", "--check-trend", "--help", "--jobs",
                    "--max-exponent", "--ns", "--out", "--runner-jobs",
                    "--trend-file", "--workdir", "-h"],
    "serve": ["--crash-at", "--downtime", "--fault-seed", "--help",
              "--no-crash", "--nodes-per-shard", "--run-seconds", "--shards",
              "--workdir", "-h"],
    "service-bench": ["--crash-at", "--downtime", "--fault-seed", "--help",
                      "--keys", "--no-crash", "--nodes-per-shard",
                      "--ops-per-session", "--out", "--put-ratio",
                      "--request-timeout", "--run-seconds", "--seed",
                      "--sessions", "--shards", "--workdir", "--zipf-s",
                      "-h"],
}


def _subparsers() -> dict[str, argparse.ArgumentParser]:
    parser = build_parser()
    action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return dict(action.choices)


def test_subcommand_set_is_frozen():
    assert sorted(_subparsers()) == sorted(CLI_SURFACE)


@pytest.mark.parametrize("name", sorted(CLI_SURFACE))
def test_subcommand_flags_are_frozen(name):
    sub = _subparsers()[name]
    surface = []
    for action in sub._actions:
        if action.option_strings:
            surface.extend(action.option_strings)
        else:
            surface.append(f"<{action.dest}>")
    assert sorted(surface) == sorted(CLI_SURFACE[name]), name


@pytest.mark.parametrize("name", sorted(CLI_SURFACE))
def test_every_subcommand_has_a_runner_and_help(name):
    sub = _subparsers()[name]
    assert callable(sub.get_default("func")), name


def test_shared_concepts_spell_the_same_flag():
    """The consistency contract behind the shared helpers: wherever a
    concept appears, it uses one spelling (never --outfile/--work-dir/
    --rand-seed variants)."""
    forbidden = {"--outfile", "--output", "--work-dir", "--out-file",
                 "--rand-seed", "--random-seed", "--num-shards"}
    for name, sub in _subparsers().items():
        for action in sub._actions:
            assert not forbidden.intersection(action.option_strings), (
                name, action.option_strings
            )
