"""Unit tests for the Lamport scalar clock."""

import pytest

from repro.clocks.lamport import LamportClock


def test_initial_value():
    assert LamportClock().value == 0
    assert LamportClock(5).value == 5


def test_negative_initial_rejected():
    with pytest.raises(ValueError):
        LamportClock(-1)


def test_tick_increments():
    clock = LamportClock()
    assert clock.tick() == 1
    assert clock.tick() == 2


def test_merge_takes_max_plus_one():
    clock = LamportClock(3)
    assert clock.merge(10) == 11
    assert clock.merge(2) == 12


def test_merge_rejects_negative():
    with pytest.raises(ValueError):
        LamportClock().merge(-1)


def test_clock_condition_on_request_response_chain():
    """a -> b implies C(a) < C(b) along a causal request/response chain."""
    a, b = LamportClock(), LamportClock()
    timestamps = []
    for _ in range(5):
        ts = a.tick()                    # a sends a request
        timestamps.append(ts)
        ts = b.merge(ts)                 # b receives it
        timestamps.append(ts)
        ts = b.tick()                    # b sends the response
        timestamps.append(ts)
        ts = a.merge(ts)                 # a receives it
        timestamps.append(ts)
    assert all(x < y for x, y in zip(timestamps, timestamps[1:]))
