"""Unit tests for the Mattern vector clock."""

import pytest

from repro.clocks.vector import VectorClock


def test_constructors():
    assert VectorClock.zero(3).entries == (0, 0, 0)
    assert VectorClock.initial(1, 3).entries == (0, 1, 0)


def test_validation():
    with pytest.raises(ValueError):
        VectorClock([])
    with pytest.raises(ValueError):
        VectorClock([1, -1])


def test_tick_returns_new_instance():
    a = VectorClock.zero(3)
    b = a.tick(1)
    assert a.entries == (0, 0, 0)
    assert b.entries == (0, 1, 0)


def test_merge_componentwise_max():
    a = VectorClock([3, 0, 5])
    b = VectorClock([1, 4, 5])
    assert a.merge(b).entries == (3, 4, 5)


def test_merge_length_mismatch():
    with pytest.raises(ValueError):
        VectorClock([1]).merge(VectorClock([1, 2]))


def test_partial_order():
    a = VectorClock([1, 0, 0])
    b = VectorClock([1, 1, 0])
    assert a < b
    assert a <= b
    assert not b < a
    assert not a < a
    assert a <= a


def test_concurrency():
    a = VectorClock([1, 0])
    b = VectorClock([0, 1])
    assert a.concurrent_with(b)
    assert b.concurrent_with(a)
    assert not a.concurrent_with(a)


def test_equality_and_hash():
    a = VectorClock([1, 2])
    b = VectorClock([1, 2])
    assert a == b
    assert hash(a) == hash(b)
    assert a != VectorClock([2, 1])
    assert a != "not a clock"


def test_happen_before_iff_on_simulated_run():
    """Classic three-process exchange: clock order == causal order."""
    # P0 sends to P1; P1 sends to P2.  Events: a (send at P0),
    # b (recv at P1), c (send at P1), d (recv at P2), e (local at P2 before d)
    p0 = VectorClock.zero(3).tick(0)            # a
    p1 = VectorClock.zero(3).merge(p0).tick(1)  # b
    c = p1.tick(1)                              # c (send)
    e = VectorClock.zero(3).tick(2)             # e, concurrent with all above
    d = e.merge(c).tick(2)                      # d
    assert p0 < d and c < d and p1 < d
    assert e.concurrent_with(p0)
    assert e.concurrent_with(c)
    assert e < d
