"""Every example script must run clean: they are executable documentation,
and each one asserts the claims it prints."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "predicate_detection.py",
    "network_partition.py",
    "paper_figures.py",
]

SLOW_EXAMPLES = [
    "bank_cluster.py",
    "kv_store.py",
    "dsm_shared_memory.py",
    "logging_taxonomy.py",
    "protocol_comparison.py",
]


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs_clean(name, capsys):
    out = _run(name, capsys)
    assert out.strip(), f"{name} printed nothing"


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs_clean(name, capsys):
    out = _run(name, capsys)
    assert out.strip(), f"{name} printed nothing"


def test_quickstart_reports_success(capsys):
    out = _run("quickstart.py", capsys)
    assert "all checks passed" in out
    assert "oracle verdict     : OK" in out


def test_paper_figures_verifies_both(capsys):
    out = _run("paper_figures.py", capsys)
    assert "figure 1 verified" in out
    assert "figure 5 verified" in out


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
