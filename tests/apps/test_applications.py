"""Tests for the deterministic workload applications."""

from repro.apps import (
    BankApp,
    BankState,
    PingPongApp,
    PipelineApp,
    RandomRoutingApp,
    RoutingState,
    Transfer,
    mix64,
)
from repro.sim.process import ProcessContext


def ctx(pid=0, n=4):
    return ProcessContext(pid, n)


class TestMix64:
    def test_deterministic(self):
        assert mix64(1, 2) == mix64(1, 2)

    def test_spreads(self):
        values = {mix64(i, 0) for i in range(1000)}
        assert len(values) == 1000

    def test_64_bit_range(self):
        for i in range(100):
            assert 0 <= mix64(i, i * 7) < 2**64


class TestRandomRoutingApp:
    def test_handle_is_pure(self):
        app = RandomRoutingApp()
        state = RoutingState(received=3, acc=42)
        payload = next(iter(self._bootstrap_items(app)))
        c1, c2 = ctx(), ctx()
        out1 = app.handle(state, payload, c1)
        out2 = app.handle(state, payload, c2)
        assert out1 == out2
        assert [(s.dst, s.payload) for s in c1.sends] == [
            (s.dst, s.payload) for s in c2.sends
        ]
        assert state.received == 3          # input untouched

    @staticmethod
    def _bootstrap_items(app):
        c = ctx(pid=0)
        app.bootstrap(0, 4, c)
        return [s.payload for s in c.sends]

    def test_bootstrap_only_on_seeds(self):
        app = RandomRoutingApp(seeds=(1,), initial_items=3)
        c0, c1 = ctx(0), ctx(1)
        app.bootstrap(0, 4, c0)
        app.bootstrap(1, 4, c1)
        assert c0.sends == []
        assert len(c1.sends) == 3

    def test_hops_decrease_and_terminate(self):
        app = RandomRoutingApp(hops=2, seeds=(0,), initial_items=1)
        item = self._bootstrap_items(app)[0]
        assert item.hops_left == 2
        c = ctx(1)
        app.handle(RoutingState(), item, c)
        forwarded = c.sends[0].payload
        assert forwarded.hops_left == 1
        c2 = ctx(2)
        app.handle(RoutingState(), forwarded, c2)
        final = c2.sends[0].payload
        assert final.hops_left == 0
        c3 = ctx(3)
        app.handle(RoutingState(), final, c3)
        assert c3.sends == []

    def test_never_routes_to_self(self):
        app = RandomRoutingApp(hops=100, seeds=(0,), initial_items=5)
        for pid in range(4):
            c = ctx(pid)
            app.bootstrap(pid, 4, c)
            for send in c.sends:
                assert send.dst != pid

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            RandomRoutingApp(hops=-1)
        with pytest.raises(ValueError):
            RandomRoutingApp(fanout=0)


class TestPingPong:
    def test_round_trip(self):
        app = PingPongApp(rounds=3)
        c = ctx(0, 2)
        app.bootstrap(0, 2, c)
        ping = c.sends[0].payload
        assert ping.round == 1
        c1 = ctx(1, 2)
        app.handle(0, ping, c1)
        assert c1.sends[0].dst == 0
        assert c1.sends[0].payload.round == 2

    def test_stops_at_round_limit(self):
        app = PingPongApp(rounds=2)
        from repro.apps.applications import Ping

        c = ctx(1, 2)
        app.handle(0, Ping(round=2), c)
        assert c.sends == []


class TestBankApp:
    def test_conservation_in_a_closed_exchange(self):
        """Total money (balances + in-flight) is invariant."""
        app = BankApp(initial_balance=1000, seeds=(0,))
        n = 3
        states = {pid: app.initial_state(pid, n) for pid in range(n)}
        in_flight = []
        c = ctx(0, n)
        app.bootstrap(0, n, c)       # the seed state is already pre-debited
        in_flight.extend(c.sends)

        for _ in range(200):
            if not in_flight:
                break
            send = in_flight.pop(0)
            c = ctx(send.dst, n)
            states[send.dst] = app.handle(states[send.dst], send.payload, c)
            in_flight.extend(c.sends)
            total = sum(s.balance for s in states.values()) + sum(
                s.payload.amount for s in in_flight
            )
            assert total == 3 * 1000

    def test_balance_never_negative(self):
        app = BankApp(initial_balance=100, seeds=(0,))
        state = app.initial_state(1, 3)
        for serial in range(50):
            c = ctx(1, 3)
            state = app.handle(
                state, Transfer(amount=7, serial=(0, serial % 30)), c
            )
            assert state.balance >= 0


class TestPipeline:
    def test_jobs_flow_to_sink_output(self):
        app = PipelineApp(jobs=2)
        n = 3
        c = ctx(0, n)
        app.bootstrap(0, n, c)
        assert len(c.sends) == 2
        job = c.sends[0].payload
        c1 = ctx(1, n)
        app.handle(0, job, c1)
        assert c1.sends[0].dst == 2
        final = c1.sends[0].payload
        c2 = ctx(2, n)
        app.handle(0, final, c2)
        assert c2.sends == []
        assert len(c2.outputs) == 1
        assert c2.outputs[0].value[0] == "done"

    def test_value_is_deterministic_chain_of_mixes(self):
        app = PipelineApp(jobs=1)
        c = ctx(0, 3)
        app.bootstrap(0, 3, c)
        job = c.sends[0].payload
        expected = mix64(mix64(job.value, 2), 3)
        c1, c2 = ctx(1, 3), ctx(2, 3)
        app.handle(0, job, c1)
        app.handle(0, c1.sends[0].payload, c2)
        assert c2.outputs[0].value == ("done", 0, expected)
