"""Tests for the replicated key-value store workload."""

import pytest

from repro.analysis import check_recovery
from repro.apps.kvstore import (
    ClientState,
    KVGet,
    KVPut,
    KVReplicate,
    KVReply,
    KVStoreApp,
    ReplicaState,
)
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.process import ProcessContext


def ctx(pid, n=5):
    return ProcessContext(pid, n)


class TestReplicaState:
    def test_store_and_lookup(self):
        state = ReplicaState().store("a", 7, 1)
        assert state.lookup("a") == (7, 1)
        assert state.lookup("missing") is None
        assert state.applied == 1

    def test_store_is_immutable(self):
        base = ReplicaState().store("a", 7, 1)
        base.store("a", 9, 2)
        assert base.lookup("a") == (7, 1)

    def test_as_dict(self):
        state = ReplicaState().store("a", 1, 1).store("b", 2, 1)
        assert state.as_dict() == {"a": (1, 1), "b": (2, 1)}


class TestClientState:
    def test_observe_tracks_versions(self):
        state = ClientState().observe("k", 3)
        assert state.observed_version("k") == 3
        assert state.observed_version("other") == 0
        assert state.replies == 1


class TestAppUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            KVStoreApp(replicas=0)
        with pytest.raises(ValueError):
            KVStoreApp(put_ratio=4)

    def test_roles(self):
        app = KVStoreApp(replicas=2)
        assert app.is_replica(0) and app.is_replica(1)
        assert not app.is_replica(2)

    def test_primary_is_stable_and_in_range(self):
        app = KVStoreApp(replicas=3)
        for i in range(10):
            key = f"k{i}"
            primary = app.primary_for(key)
            assert 0 <= primary < 3
            assert primary == app.primary_for(key)

    def test_put_bumps_version_replicates_and_replies(self):
        app = KVStoreApp(replicas=2)
        c = ctx(0)
        state = app.handle(
            ReplicaState(), KVPut(key="a", value=5, op_id=(2, 0)), c
        )
        assert state.lookup("a") == (5, 1)
        kinds = [type(s.payload) for s in c.sends]
        assert kinds.count(KVReplicate) == 1
        assert kinds.count(KVReply) == 1
        reply = next(s for s in c.sends if isinstance(s.payload, KVReply))
        assert reply.dst == 2
        assert reply.payload.version == 1

    def test_replicate_applies_only_newer_versions(self):
        app = KVStoreApp(replicas=2)
        state = ReplicaState().store("a", 5, 3)
        newer = app.handle(
            state, KVReplicate(key="a", value=9, version=4, op_id=(2, 1)),
            ctx(1),
        )
        assert newer.lookup("a") == (9, 4)
        stale = app.handle(
            newer, KVReplicate(key="a", value=1, version=2, op_id=(2, 2)),
            ctx(1),
        )
        assert stale.lookup("a") == (9, 4)

    def test_get_replies_with_current(self):
        app = KVStoreApp(replicas=1)
        state = ReplicaState().store("a", 5, 3)
        c = ctx(0, 3)
        app.handle(state, KVGet(key="a", op_id=(2, 7)), c)
        reply = c.sends[0].payload
        assert reply.value == 5 and reply.version == 3

    def test_get_of_missing_key(self):
        app = KVStoreApp(replicas=1)
        c = ctx(0, 3)
        app.handle(ReplicaState(), KVGet(key="nope", op_id=(2, 0)), c)
        reply = c.sends[0].payload
        assert reply.value is None and reply.version == 0

    def test_client_stops_at_op_budget(self):
        app = KVStoreApp(replicas=1, ops_per_client=2)
        state = ClientState(ops_sent=2)
        c = ctx(2, 3)
        final = app.handle(
            state, KVReply(op_id=(2, 1), key="a", value=1, version=1), c
        )
        assert c.sends == []
        assert final.replies == 1


class _CountingKey(str):
    """A key that counts its comparisons (perf shape, not wall time)."""

    comparisons = 0

    def _count(op):
        def compare(self, other):
            _CountingKey.comparisons += 1
            return getattr(str, op)(self, other)
        return compare

    __lt__ = _count("__lt__")
    __gt__ = _count("__gt__")
    __le__ = _count("__le__")
    __ge__ = _count("__ge__")
    __eq__ = _count("__eq__")
    __hash__ = str.__hash__
    del _count


class TestLookupIsLogarithmic:
    """``ReplicaState.lookup`` must binary-search, not scan.

    The states are sorted tuples already; a linear scan costs O(keys)
    comparisons per lookup, which multiplies into every put, get, and
    replicate of every replay.  Counting key comparisons pins the
    O(log n) shape without a timing-flaky benchmark.
    """

    KEYS = 1024

    def _state(self):
        data = tuple(
            (_CountingKey(f"k{i:05d}"), (i, 1)) for i in range(self.KEYS)
        )
        return ReplicaState(data=data)

    def test_hit_and_miss_cost_log_comparisons(self):
        state = self._state()
        budget = 64                      # ~6x log2(1024), far below 1024
        for probe in ("k00000", "k00511", "k01023", "missing", "k005110"):
            _CountingKey.comparisons = 0
            state.lookup(probe)
            assert _CountingKey.comparisons <= budget, (
                probe, _CountingKey.comparisons
            )

    def test_results_match_the_dict_view(self):
        state = self._state()
        as_dict = state.as_dict()
        for i in (0, 1, 511, 1022, 1023):
            key = f"k{i:05d}"
            assert state.lookup(key) == as_dict[key]
        assert state.lookup("k99999") is None


def run_kv(*, seed=0, crashes=None, retransmit=True, horizon=250.0,
           record=False):
    app = KVStoreApp(replicas=2, keys=6, ops_per_client=25)
    spec = ExperimentSpec(
        n=5,
        app=app,
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        record_states=record,
        config=ProtocolConfig(
            checkpoint_interval=10.0,
            flush_interval=3.0,
            retransmit_on_token=retransmit,
        ),
    )
    return run_experiment(spec)


class TestEndToEnd:
    def test_failure_free_all_ops_complete(self):
        result = run_kv()
        for client in result.protocols[2:]:
            state = client.executor.state
            assert state.ops_sent == 25 and state.replies == 25

    def test_replicas_converge_without_failures(self):
        result = run_kv()
        a, b = (p.executor.state.as_dict() for p in result.protocols[:2])
        assert a == b and a    # non-empty and identical

    def test_recovery_with_replica_crashes(self):
        for seed in range(4):
            result = run_kv(
                seed=seed,
                crashes=CrashPlan().crash(30.0, 0, 2.0).crash(60.0, 1, 2.0),
            )
            verdict = check_recovery(result)
            assert verdict.ok, (seed, verdict.violations)
            a, b = (p.executor.state.as_dict() for p in result.protocols[:2])
            assert a == b, f"replicas diverged (seed {seed})"
            for client in result.protocols[2:]:
                assert client.executor.state.replies == 25

    def test_recovery_with_client_crash(self):
        result = run_kv(
            seed=2, crashes=CrashPlan().crash(40.0, 3, 2.0)
        )
        assert check_recovery(result).ok

    def test_version_monotonicity_along_surviving_chains(self):
        """Along every surviving replica chain, key versions never drop."""
        from repro.analysis.causality import build_ground_truth

        result = run_kv(
            seed=1,
            crashes=CrashPlan().crash(30.0, 0, 2.0),
            record=True,
        )
        gt = build_ground_truth(result.trace, 5)
        for pid in (0, 1):
            states = result.protocols[pid].executor.state_by_uid
            last: dict[str, int] = {}
            for uid in gt.surviving[pid]:
                snapshot = states.get(uid)
                if snapshot is None:
                    continue
                for key, (_value, version) in snapshot.data:
                    assert version >= last.get(key, 0), (pid, uid, key)
                    last[key] = version

    def test_session_monotonicity_for_clients(self):
        """A client never sees a key's version go backwards."""
        from repro.analysis.causality import build_ground_truth

        result = run_kv(
            seed=3,
            crashes=CrashPlan().crash(30.0, 0, 2.0).crash(70.0, 1, 2.0),
            record=True,
        )
        gt = build_ground_truth(result.trace, 5)
        for pid in (2, 3, 4):
            states = result.protocols[pid].executor.state_by_uid
            last: dict[str, int] = {}
            for uid in gt.surviving[pid]:
                snapshot = states.get(uid)
                if snapshot is None:
                    continue
                for key, version in snapshot.observed:
                    assert version >= last.get(key, 0), (pid, uid, key)
                    last[key] = version
