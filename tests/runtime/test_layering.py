"""Layering guard: engine-neutral packages must not import an engine.

``repro.core``, ``repro.clocks``, ``repro.protocols`` and ``repro.runtime``
are the portable layers -- everything they need from an engine comes
through :class:`~repro.runtime.env.RuntimeEnv`.  A direct import of
``repro.sim`` or ``repro.live`` from any of them would silently re-couple
the protocols to one engine, so this test walks the AST of every module
in those packages and fails on any such import (including ones hidden
inside functions or ``TYPE_CHECKING`` blocks -- lazy imports are how
layering violations usually sneak in).
"""

import ast
import os

import pytest

import repro

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))

PORTABLE_PACKAGES = ["core", "clocks", "protocols", "runtime"]
FORBIDDEN_PREFIXES = ("repro.sim", "repro.live")


def _python_files(package: str):
    root = os.path.join(SRC_ROOT, package)
    for dirpath, _, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _imported_modules(path: str):
    with open(path, "r", encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level == 0:
                yield node.module


@pytest.mark.parametrize("package", PORTABLE_PACKAGES)
def test_portable_package_does_not_import_an_engine(package):
    violations = []
    for path in _python_files(package):
        for module in _imported_modules(path):
            if module.startswith(FORBIDDEN_PREFIXES):
                rel = os.path.relpath(path, SRC_ROOT)
                violations.append(f"{rel} imports {module}")
    assert not violations, (
        f"repro.{package} must stay engine-agnostic; route engine access "
        f"through RuntimeEnv instead of: " + "; ".join(violations)
    )


def test_engines_do_not_import_each_other():
    violations = []
    for package, forbidden in [("sim", "repro.live"), ("live", "repro.sim")]:
        for path in _python_files(package):
            for module in _imported_modules(path):
                if module.startswith(forbidden):
                    rel = os.path.relpath(path, SRC_ROOT)
                    violations.append(f"{rel} imports {module}")
    assert not violations, "; ".join(violations)


def test_service_workload_half_is_engine_free():
    """``repro.service.kv`` and ``repro.service.routing`` run under both
    engines (the sim in tests, live in production shards), so neither
    may import one -- the same rule the portable packages obey."""
    violations = []
    for module_file in ("kv.py", "routing.py"):
        path = os.path.join(SRC_ROOT, "service", module_file)
        for module in _imported_modules(path):
            if module.startswith(FORBIDDEN_PREFIXES):
                violations.append(f"service/{module_file} imports {module}")
    assert not violations, "; ".join(violations)
