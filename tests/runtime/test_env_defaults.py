"""Unit tests for the :class:`RuntimeEnv` default method implementations.

The defaults (``schedule_at``, ``suspend_timer``, ``resume_timer``) are
what a third-party engine inherits, so they are tested against a minimal
fake engine rather than through the simulator.
"""

from repro.runtime.env import RuntimeEnv, TimerHandle


class _FakeTimer:
    def __init__(self, time, callback):
        self.time_ = time
        self.callback = callback
        self._cancelled = False

    @property
    def time(self):
        return self.time_

    @property
    def cancelled(self):
        return self._cancelled

    def cancel(self):
        self._cancelled = True


class _FakeEnv(RuntimeEnv):
    """Deliberately bare engine: only the abstract minimum, no overrides."""

    def __init__(self):
        self.pid = 0
        self.n = 1
        self.storage = None
        self.trace = None
        self.clock = 0.0
        self.timers = []

    @property
    def now(self):
        return self.clock

    @property
    def alive(self):
        return True

    @property
    def crash_count(self):
        return 0

    @property
    def tracer(self):
        return None

    def send(self, dst, payload, *, kind="app", latency=None):
        raise NotImplementedError

    def broadcast(self, payload, *, kind="token", include_self=False):
        raise NotImplementedError

    def schedule_after(self, delay, callback, *, priority=0, label=""):
        timer = _FakeTimer(self.clock + delay, callback)
        self.timers.append(timer)
        return timer

    def attach(self, protocol):
        raise NotImplementedError


def test_timer_handle_protocol_matches_fake():
    assert isinstance(_FakeTimer(1.0, lambda: None), TimerHandle)


def test_schedule_at_converts_to_delay():
    env = _FakeEnv()
    env.clock = 3.0
    handle = env.schedule_at(10.0, lambda: None)
    assert handle.time == 10.0


def test_schedule_at_in_the_past_fires_now():
    env = _FakeEnv()
    env.clock = 5.0
    handle = env.schedule_at(1.0, lambda: None)
    assert handle.time == 5.0


def test_suspend_cancels_and_remembers_deadline():
    env = _FakeEnv()
    pending = env.schedule_after(4.0, lambda: None)
    suspended = env.suspend_timer(pending, interval=4.0)
    assert pending.cancelled
    assert suspended.time == 4.0
    assert not suspended.cancelled
    suspended.cancel()
    assert suspended.cancelled


def test_resume_keeps_the_chain_phase():
    # Chain fired at 4, 8, ... with a deadline pending at 12 when the
    # owner went down; resuming at now=17 must fire at 20 (the next
    # multiple of the interval counted from the old deadline), not 21.
    env = _FakeEnv()
    pending = env.schedule_after(12.0, lambda: None)
    suspended = env.suspend_timer(pending, interval=4.0)
    env.clock = 17.0
    resumed = env.resume_timer(suspended, 4.0, lambda: None)
    assert resumed.time == 20.0


def test_resume_before_the_old_deadline_keeps_it():
    env = _FakeEnv()
    pending = env.schedule_after(12.0, lambda: None)
    suspended = env.suspend_timer(pending, interval=4.0)
    env.clock = 9.0
    resumed = env.resume_timer(suspended, 4.0, lambda: None)
    assert resumed.time == 12.0


def test_resumed_callback_is_the_new_one():
    fired = []
    env = _FakeEnv()
    pending = env.schedule_after(2.0, lambda: fired.append("old"))
    suspended = env.suspend_timer(pending, interval=2.0)
    env.clock = 3.0
    resumed = env.resume_timer(suspended, 2.0, lambda: fired.append("new"))
    resumed.callback()
    assert fired == ["new"]
