"""Periodic checkpoint/flush behaviour across crash and restart (SimEnv).

The engine pauses a protocol's periodic chains when its process crashes
and resumes them at restart.  These tests pin the contract:

- a dead process does no checkpoint/flush work;
- the resumed chain keeps its original phase (fires at the instants the
  never-crashed chain would have used) and there is exactly ONE chain --
  a restart that naively re-armed the timers would double the cadence;
- halting while down abandons the suspended chains for good.
"""

import pytest

from repro.harness.scenarios import ScriptedApp
from repro.protocols.base import ProtocolConfig
from repro.runtime.trace import EventKind
from repro.testing import ScenarioBuilder

CKPT = 2.0
CRASH_AT = 5.0
DOWNTIME = 4.0          # restart at t = 9.0; periodic fires 6.0, 8.0 skipped
HORIZON = 20.0


@pytest.fixture(scope="module")
def crash_run():
    return (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(
            bootstrap_sends={0: [(1, "m1")]},
            rules={(1, "m1"): [(0, "m2")]},
        ))
        .config(ProtocolConfig(checkpoint_interval=CKPT,
                               flush_interval=3.0))
        .crash(at=CRASH_AT, pid=1, downtime=DOWNTIME)
        .horizon(HORIZON)
        .run()
    )


def _ckpt_times(run, pid):
    return [e.time for e in run.trace.events(EventKind.CHECKPOINT, pid)]


def test_recovery_still_passes(crash_run):
    crash_run.assert_recovered()


def test_no_checkpoints_while_dead(crash_run):
    restart = crash_run.trace.events(EventKind.RESTART, 1)[0]
    dead_window = [
        t for t in _ckpt_times(crash_run, 1) if CRASH_AT < t < restart.time
    ]
    assert dead_window == []


def test_no_flushes_while_dead(crash_run):
    restart = crash_run.trace.events(EventKind.RESTART, 1)[0]
    dead_window = [
        e.time
        for e in crash_run.trace.events(EventKind.LOG_FLUSH, 1)
        if CRASH_AT < e.time < restart.time
    ]
    assert dead_window == []


def test_survivor_cadence_is_undisturbed(crash_run):
    # p0 never crashed: its periodic checkpoints sit exactly on the grid.
    times = _ckpt_times(crash_run, 0)
    assert times, "p0 took no periodic checkpoints at all"
    for t in times:
        assert t % CKPT == pytest.approx(0.0), times


def test_resumed_chain_keeps_phase_and_is_single(crash_run):
    restart = crash_run.trace.events(EventKind.RESTART, 1)[0]
    after = [t for t in _ckpt_times(crash_run, 1) if t > restart.time]
    # Phase: every post-restart periodic checkpoint lands on the original
    # grid (multiples of the interval), not on restart_time + k*interval.
    periodic = [t for t in after if t % CKPT == pytest.approx(0.0)]
    # Single chain: consecutive grid fires are exactly one interval apart;
    # a duplicated chain would fire twice per instant or halve the gaps.
    assert len(periodic) == len(set(periodic)), (
        f"duplicate periodic checkpoints: {periodic}"
    )
    gaps = [b - a for a, b in zip(periodic, periodic[1:])]
    assert all(gap == pytest.approx(CKPT) for gap in gaps), periodic
    # And the chain did actually resume.
    assert periodic, after


def test_periodic_state_is_initialised_before_start():
    # Regression: _periodic_enabled used to be set only inside
    # start_periodic_tasks, so pause/resume/halt before on_start crashed
    # with AttributeError.
    from repro.core.recovery import DamaniGargProcess
    from repro.sim.kernel import Simulator
    from repro.sim.network import Network
    from repro.sim.process import ProcessHost
    from repro.sim.rng import RandomStreams

    sim = Simulator()
    network = Network(sim, 1, streams=RandomStreams(0))
    host = ProcessHost(0, sim, network)
    protocol = DamaniGargProcess(host.runtime_env(), ScriptedApp())
    assert protocol._periodic_enabled is False
    protocol.pause_periodic_tasks()       # no chains yet: must be a no-op
    protocol.resume_periodic_tasks()
    protocol.halt_periodic_tasks()
    assert protocol._periodic_enabled is False


def test_halt_while_down_abandons_the_chains():
    run = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "m1")]}))
        .config(ProtocolConfig(checkpoint_interval=CKPT,
                               flush_interval=3.0))
        .crash(at=5.0, pid=1, downtime=100.0)   # still down at the horizon
        .horizon(20.0)
        .run()
    )
    # halt_periodic_tasks ran at the horizon while p1 was down.  The
    # drain still executes the (late) restart, which takes its one
    # immediate checkpoint -- but the suspended periodic chain must have
    # been abandoned, so nothing fires after that.
    restarts = run.trace.events(EventKind.RESTART, 1)
    assert restarts, "drain should still have restarted p1"
    restart_time = restarts[0].time
    post_crash = [t for t in
                  (e.time for e in run.trace.events(EventKind.CHECKPOINT, 1))
                  if t > 5.0]
    assert post_crash == [restart_time]
