"""Unit tests for task descriptors, fn resolution, and cache keys."""

import pytest

from repro.exec.tasks import Task, code_fingerprint, resolve_fn, task_key


class TestTask:
    def test_fn_must_be_module_colon_callable(self):
        with pytest.raises(ValueError):
            Task(fn="no_colon_here")

    def test_defaults(self):
        task = Task(fn="m:f")
        assert task.payload is None
        assert task.cacheable
        assert task.label == ""


class TestResolveFn:
    def test_resolves_module_level_callable(self):
        fn = resolve_fn("tests.exec.helpers:square")
        assert fn({"x": 7}) == 49

    def test_resolves_dotted_attribute(self):
        fn = resolve_fn("json:JSONEncoder.encode")
        assert callable(fn)

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            resolve_fn("json:__name__")

    def test_missing_module_raises(self):
        with pytest.raises(ModuleNotFoundError):
            resolve_fn("definitely_not_a_module:f")


class TestTaskKey:
    def test_stable_across_calls(self):
        task = Task(fn="m:f", payload={"a": 1, "b": [2, 3]})
        assert task_key(task) == task_key(task)

    def test_payload_key_order_irrelevant(self):
        a = Task(fn="m:f", payload={"a": 1, "b": 2})
        b = Task(fn="m:f", payload={"b": 2, "a": 1})
        assert task_key(a) == task_key(b)

    def test_distinct_payloads_distinct_keys(self):
        a = Task(fn="m:f", payload={"x": 1})
        b = Task(fn="m:f", payload={"x": 2})
        assert task_key(a) != task_key(b)

    def test_distinct_fns_distinct_keys(self):
        a = Task(fn="m:f", payload={"x": 1})
        b = Task(fn="m:g", payload={"x": 1})
        assert task_key(a) != task_key(b)

    def test_label_does_not_affect_key(self):
        a = Task(fn="m:f", payload=1, label="first")
        b = Task(fn="m:f", payload=1, label="second")
        assert task_key(a) == task_key(b)

    def test_unserialisable_payload_rejected(self):
        with pytest.raises(TypeError):
            task_key(Task(fn="m:f", payload={"bad": object()}))


def test_code_fingerprint_is_stable_hex():
    fp = code_fingerprint()
    assert fp == code_fingerprint()
    int(fp, 16)   # hex digest
    assert len(fp) == 32


def test_key_embeds_code_fingerprint():
    # The key must change whenever the fingerprint changes; simulate by
    # clearing the lru_cache and checking the key recomputes consistently.
    task = Task(fn="m:f", payload=5)
    before = task_key(task)
    code_fingerprint.cache_clear()
    assert task_key(task) == before
