"""Worker-importable task callables for the engine tests.

These live in a real module (not a test function) because the engine
resolves tasks by ``"module:callable"`` reference inside the worker
process.
"""

import os


def square(payload):
    return payload["x"] ** 2


def boom(payload):
    raise ValueError(f"boom {payload['x']}")


def die(payload):
    # Simulates a segfault/OOM-kill: the process vanishes without Python
    # cleanup, so no exception and no report ever reach the parent.
    os._exit(41)


def die_if_victim(payload):
    if payload["x"] == payload["victim"]:
        os._exit(43)
    return payload["x"] * 10
