"""Worker-importable task callables for the engine tests.

These live in a real module (not a test function) because the engine
resolves tasks by ``"module:callable"`` reference inside the worker
process.
"""

import os


def square(payload):
    return payload["x"] ** 2


def boom(payload):
    raise ValueError(f"boom {payload['x']}")


def die(payload):
    # Simulates a segfault/OOM-kill: the process vanishes without Python
    # cleanup, so no exception and no report ever reach the parent.
    os._exit(41)


def die_if_victim(payload):
    if payload["x"] == payload["victim"]:
        os._exit(43)
    return payload["x"] * 10


def occupy(payload):
    """Concurrency probe for the admission tests: hold a marker file for
    a moment and report the peak number of markers seen at once."""
    import glob
    import time

    marker = os.path.join(payload["dir"], f"marker_{payload['x']}")
    with open(marker, "w") as fh:
        fh.write("x")
    peak = 0
    deadline = time.monotonic() + payload.get("hold", 0.25)
    while time.monotonic() < deadline:
        peak = max(
            peak, len(glob.glob(os.path.join(payload["dir"], "marker_*")))
        )
        time.sleep(0.02)
    os.remove(marker)
    return peak
