"""Unit tests for the on-disk result cache."""

from repro.exec.cache import ResultCache


def test_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("ab" + "0" * 30, {"answer": 42})
    hit, value = cache.get("ab" + "0" * 30)
    assert hit and value == {"answer": 42}
    assert cache.hits == 1 and cache.misses == 0


def test_absent_key_is_miss(tmp_path):
    cache = ResultCache(tmp_path)
    hit, value = cache.get("ff" + "0" * 30)
    assert not hit and value is None
    assert cache.misses == 1


def test_corrupt_entry_is_miss(tmp_path):
    cache = ResultCache(tmp_path)
    key = "cd" + "0" * 30
    cache.put(key, [1, 2, 3])
    # Truncate the pickle mid-stream.
    path = cache._path(key)
    path.write_bytes(path.read_bytes()[:3])
    hit, value = cache.get(key)
    assert not hit and value is None


def test_overwrite_replaces_value(tmp_path):
    cache = ResultCache(tmp_path)
    key = "ee" + "0" * 30
    cache.put(key, "old")
    cache.put(key, "new")
    assert cache.get(key) == (True, "new")


def test_len_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    for i in range(5):
        cache.put(f"{i:02d}" + "0" * 30, i)
    assert len(cache) == 5
    assert cache.clear() == 5
    assert len(cache) == 0
    assert cache.get("00" + "0" * 30) == (False, None)


def test_distinct_keys_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("aa" + "1" * 30, "one")
    cache.put("aa" + "2" * 30, "two")   # same fan-out directory
    assert cache.get("aa" + "1" * 30) == (True, "one")
    assert cache.get("aa" + "2" * 30) == (True, "two")
