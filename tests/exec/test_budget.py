"""ProcessBudget admission: slot weights, caps, release on every exit path.

The budget exists for multi-process tasks (a live n-node cluster is an
``n + 1``-process job): the runner may only have ``budget.slots`` worth
of task weight admitted at once, in submission order, with slots handed
back whenever a task resolves -- done, failed, or crashed.  Concurrency
is observed from inside the tasks with marker files, so these tests
measure what actually overlapped, not what the scheduler intended.
"""

import pytest

from repro.exec.runner import ParallelRunner, ProcessBudget
from repro.exec.tasks import Task, task_key


def _occupiers(count, tmp_path, *, slots=1, hold=0.25):
    return [
        Task(
            fn="tests.exec.helpers:occupy",
            payload={"x": i, "dir": str(tmp_path), "hold": hold},
            label=f"occ{i}",
            slots=slots,
        )
        for i in range(count)
    ]


class TestProcessBudget:
    def test_slots_must_be_positive(self):
        with pytest.raises(ValueError):
            ProcessBudget(0)
        with pytest.raises(ValueError):
            ProcessBudget(-3)

    def test_default_sizes_to_the_machine(self):
        assert ProcessBudget.default().slots >= 1

    def test_task_slots_must_be_positive(self):
        with pytest.raises(ValueError):
            Task(fn="tests.exec.helpers:square", payload={"x": 1}, slots=0)

    def test_slots_do_not_affect_the_cache_key(self):
        # Slots are a scheduling weight, not part of the computation:
        # cached results must survive budget tuning.
        light = Task(fn="tests.exec.helpers:square", payload={"x": 1},
                     slots=1)
        heavy = Task(fn="tests.exec.helpers:square", payload={"x": 1},
                     slots=65)
        assert task_key(light) == task_key(heavy)


class TestAdmission:
    def test_weighted_tasks_serialise_when_two_exceed_budget(self, tmp_path):
        # 2 + 2 > 3: tasks run strictly one at a time even though four
        # workers are available.
        runner = ParallelRunner(jobs=4, budget=ProcessBudget(3))
        outcomes = runner.map(_occupiers(4, tmp_path, slots=2))
        assert all(o.ok for o in outcomes)
        assert max(o.value for o in outcomes) == 1

    def test_unit_tasks_respect_the_slot_cap(self, tmp_path):
        runner = ParallelRunner(jobs=4, budget=ProcessBudget(2))
        outcomes = runner.map(_occupiers(6, tmp_path, slots=1))
        assert all(o.ok for o in outcomes)
        assert max(o.value for o in outcomes) <= 2

    def test_oversized_task_is_admitted_alone(self, tmp_path):
        # A 10-slot task against a 4-slot budget must still run (progress
        # beats strictness) -- but with the budget to itself.
        tasks = _occupiers(3, tmp_path, slots=1)
        tasks[1] = Task(
            fn="tests.exec.helpers:occupy",
            payload={"x": 1, "dir": str(tmp_path), "hold": 0.25},
            label="huge",
            slots=10,
        )
        runner = ParallelRunner(jobs=3, budget=ProcessBudget(4))
        outcomes = runner.map(tasks)
        assert all(o.ok for o in outcomes)
        assert outcomes[1].value == 1, "oversized task overlapped a peer"

    def test_results_match_the_unbudgeted_pool(self):
        tasks = [
            Task(fn="tests.exec.helpers:square", payload={"x": i},
                 slots=1 + i % 3)
            for i in range(8)
        ]
        budgeted = ParallelRunner(jobs=3, budget=ProcessBudget(2)).map(tasks)
        plain = ParallelRunner(jobs=3).map(tasks)
        assert [o.value for o in budgeted] == [o.value for o in plain]
        assert [o.index for o in budgeted] == list(range(8))

    def test_crashed_task_releases_its_slots(self):
        # If the crash path leaked slots, task 2 could never be admitted
        # (2 + 2 > 2) and this test would hang instead of passing.
        tasks = [
            Task(
                fn="tests.exec.helpers:die_if_victim",
                payload={"x": i, "victim": 1},
                slots=2,
            )
            for i in range(3)
        ]
        outcomes = ParallelRunner(jobs=2, budget=ProcessBudget(2)).map(tasks)
        assert [o.crashed for o in outcomes] == [False, True, False]
        assert outcomes[0].value == 0 and outcomes[2].value == 20

    def test_failed_task_releases_its_slots(self):
        tasks = [
            Task(fn="tests.exec.helpers:boom", payload={"x": i}, slots=2)
            for i in range(3)
        ]
        outcomes = ParallelRunner(jobs=2, budget=ProcessBudget(2)).map(tasks)
        assert all(o.error is not None and not o.crashed for o in outcomes)

    def test_budget_is_inert_on_the_inline_path(self):
        tasks = [
            Task(fn="tests.exec.helpers:square", payload={"x": i}, slots=5)
            for i in range(4)
        ]
        outcomes = ParallelRunner(jobs=1, budget=ProcessBudget(2)).map(tasks)
        assert [o.value for o in outcomes] == [0, 1, 4, 9]
