"""ParallelRunner behaviour: ordering, isolation, caching, crashes."""

import pytest

from repro.exec.cache import ResultCache
from repro.exec.runner import ParallelRunner
from repro.exec.tasks import Task


def squares(count):
    return [
        Task(fn="tests.exec.helpers:square", payload={"x": i}, label=f"sq{i}")
        for i in range(count)
    ]


class TestInline:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=0)

    def test_results_in_submission_order(self):
        outcomes = ParallelRunner(jobs=1).map(squares(6))
        assert [o.index for o in outcomes] == list(range(6))
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.ok and not o.cached for o in outcomes)

    def test_error_isolated_to_its_task(self):
        tasks = squares(3) + [
            Task(fn="tests.exec.helpers:boom", payload={"x": 9})
        ]
        outcomes = ParallelRunner(jobs=1).map(tasks)
        assert [o.ok for o in outcomes] == [True, True, True, False]
        assert "ValueError: boom 9" in outcomes[3].error
        assert not outcomes[3].crashed

    def test_progress_called_per_completion(self):
        seen = []
        ParallelRunner(jobs=1).map(
            squares(4), progress=lambda done, o: seen.append((done, o.index))
        )
        assert [done for done, _ in seen] == [1, 2, 3, 4]


class TestPool:
    def test_results_in_submission_order(self):
        outcomes = ParallelRunner(jobs=3).map(squares(10))
        assert [o.index for o in outcomes] == list(range(10))
        assert [o.value for o in outcomes] == [i * i for i in range(10)]

    def test_matches_inline_results(self):
        serial = ParallelRunner(jobs=1).map(squares(8))
        parallel = ParallelRunner(jobs=2).map(squares(8))
        assert [o.value for o in serial] == [o.value for o in parallel]

    def test_raised_exception_is_error_not_crash(self):
        tasks = [
            Task(fn="tests.exec.helpers:boom", payload={"x": i})
            for i in range(4)
        ]
        outcomes = ParallelRunner(jobs=2).map(tasks)
        assert all(o.error is not None and not o.crashed for o in outcomes)

    def test_worker_death_fails_only_that_task(self):
        tasks = [
            Task(
                fn="tests.exec.helpers:die_if_victim",
                payload={"x": i, "victim": 3},
            )
            for i in range(8)
        ]
        outcomes = ParallelRunner(jobs=2).map(tasks)
        crashed = [o for o in outcomes if o.crashed]
        assert [o.index for o in crashed] == [3]
        assert "exit code 43" in crashed[0].error
        survivors = [o for o in outcomes if not o.crashed]
        assert len(survivors) == 7
        assert all(o.value == o.index * 10 for o in survivors)

    def test_every_worker_dying_still_terminates(self):
        tasks = [
            Task(fn="tests.exec.helpers:die", payload={"x": i})
            for i in range(4)
        ]
        outcomes = ParallelRunner(jobs=2).map(tasks)
        assert all(o.crashed for o in outcomes)


class TestCaching:
    def test_second_map_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        runner = ParallelRunner(jobs=1, cache=cache)
        first = runner.map(squares(5))
        second = runner.map(squares(5))
        assert all(not o.cached for o in first)
        assert all(o.cached for o in second)
        assert [o.value for o in first] == [o.value for o in second]

    def test_cache_shared_between_serial_and_parallel(self, tmp_path):
        cache = ResultCache(tmp_path)
        ParallelRunner(jobs=1, cache=cache).map(squares(5))
        outcomes = ParallelRunner(jobs=2, cache=cache).map(squares(5))
        assert all(o.cached for o in outcomes)

    def test_errors_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = [Task(fn="tests.exec.helpers:boom", payload={"x": 1})]
        runner = ParallelRunner(jobs=1, cache=cache)
        assert not runner.map(task)[0].ok
        assert len(cache) == 0
        assert not runner.map(task)[0].cached

    def test_cacheable_false_skips_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = [
            Task(
                fn="tests.exec.helpers:square",
                payload={"x": 2},
                cacheable=False,
            )
        ]
        runner = ParallelRunner(jobs=1, cache=cache)
        runner.map(task)
        assert len(cache) == 0
        assert not runner.map(task)[0].cached
