"""Hand-scripted micro-scenarios for specific protocol paths.

Each test forces one delicate situation with exact message timings (via
:class:`~repro.sim.network.ScriptedLatency`) and asserts the protocol's
reaction event by event.  These are the paths a randomized workload only
occasionally hits.
"""

from repro.analysis import check_recovery
from repro.core.history import RecordKind
from repro.core.recovery import DamaniGargProcess
from repro.harness.scenarios import ScriptedApp
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan, FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import DeliveryOrder, Network, ScriptedLatency
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams
from repro.sim.trace import EventKind, SimTrace


def build(n, app, latency, crashes=None, flush_at=()):
    sim = Simulator()
    trace = SimTrace()
    network = Network(
        sim, n, streams=RandomStreams(0), latency=latency,
        order=DeliveryOrder.RANDOM, trace=trace,
    )
    hosts = [ProcessHost(pid, sim, network, trace) for pid in range(n)]
    config = ProtocolConfig(checkpoint_interval=1e9, flush_interval=1e9)
    protocols = [DamaniGargProcess(host, app, config) for host in hosts]
    if crashes is not None:
        FailureInjector(sim, hosts, network).install(crashes)
    for pid, time in flush_at:
        sim.schedule_at(time, protocols[pid].flush_log)
    for host in hosts:
        host.start()
    sim.run(until=200.0)
    for protocol in protocols:
        protocol.halt_periodic_tasks()
    sim.drain()

    class Result:
        pass

    result = Result()
    result.sim, result.trace, result.network = sim, trace, network
    result.hosts, result.protocols = hosts, protocols
    return result


def test_postponed_message_discarded_when_token_reveals_it_obsolete():
    """A message that mentions version 1 of P1 is held; the version-0
    token then shows it depends on a lost state; it must be discarded at
    release, never delivered."""
    # P2 sends x (volatile, lost) to P1; P1's lost state sends m1 to P0.
    # P0 holds m1? No -- m1 is version 0.  Instead: P1 fails, restarts
    # (version 1), receives y from P2, sends m2 to P0.  m2 (version 1)
    # reaches P0 before P1's token.  P0 holds m2.  Separately P0 received
    # m1 from P1's lost state BEFORE the crash -- making P0 an orphan; at
    # the token P0 rolls back, and m2 is then delivered (it is valid).
    # Variation here: make the *held* message itself obsolete by routing
    # it through an orphan: P1's (v1) m2 goes to P2 first; P2 -- already
    # an orphan via m1 -- forwards f2 to P0; P0 holds f2 (mentions v1);
    # the token arrives: P0 is not an orphan, but f2's sender P2 was, so
    # f2's clock shows P1 v0 beyond the cut -> discard at release.
    app = ScriptedApp(
        bootstrap_sends={2: [(1, "x")]},
        rules={
            (1, "x"): [(2, "m1")],       # from the to-be-lost state
            (2, "m1"): [(1, "y")],       # P2 is now an orphan
            (1, "y"): [(2, "m2")],       # wait -- see latencies below
        },
    )
    # Timeline: x->P1 at t=2 (never flushed).  m1->P2 at t=4.  P2 (orphan)
    # sends y->P1 arriving t=30 (after restart: P1 discards it as obsolete).
    # P1 crashes at t=6, restarts t=8, token to P2 at t=40 (slow!), token
    # to P0 irrelevant.  Hmm -- we want a HELD message at P0; simpler:
    # P2's orphan state also sends f2 to P0... achieved via rules on m1.
    app = ScriptedApp(
        bootstrap_sends={2: [(1, "x")]},
        rules={
            (1, "x"): [(2, "m1")],
            (2, "m1"): [(0, "f2")],      # orphan-sent message to P0
        },
    )
    latency = (
        ScriptedLatency(default=2.0)
        .plan(2, 1, 2.0)                  # x at t=2
        .plan(1, 2, 2.0)                  # m1 at t=4
        .plan(2, 0, 2.0)                  # f2 at t=6 (before any token)
        .plan(1, 0, 30.0, kind="token")   # token to P0 at t=38
        .plan(1, 2, 30.0, kind="token")   # token to P2 at t=38
    )
    result = build(
        3, app, latency, crashes=CrashPlan().crash(6.5, 1, 1.5)
    )
    p0 = result.protocols[0]
    # f2 was DELIVERED at t=6 (nothing suspicious yet): P0 became an orphan.
    assert result.trace.count(EventKind.DELIVER, 0) >= 1
    # At the token, P0 rolls back and discards the orphan-sent f2 suffix.
    assert p0.stats.rollbacks == 1
    assert check_recovery(result).ok


def test_message_mentioning_version2_waits_for_both_tokens():
    """Deliverability: a clock mentioning version 2 needs tokens for
    versions 0 AND 1."""
    app = ScriptedApp(
        bootstrap_sends={1: [(0, "hello")]},
        rules={},
    )
    latency = (
        ScriptedLatency(default=2.0)
        .plan(1, 0, 1.0)                          # hello at t=1
        .plan(1, 0, 50.0, 60.0, kind="token")     # tokens arrive late
    )
    # P1 crashes twice before its messages reach anyone else.
    result = build(
        2, app, latency,
        crashes=CrashPlan().crash(5.0, 1, 1.0).crash(10.0, 1, 1.0),
    )
    p1 = result.protocols[1]
    assert p1.clock[1].version == 2
    # Now have version-2 P1 send a fresh message that arrives before the
    # tokens: impossible to script post-hoc, so assert the machinery
    # directly instead.
    from repro.core.ftvc import FaultTolerantVectorClock as FTVC

    p0 = result.protocols[0]
    probe = FTVC.of([(0, 1), (2, 1)])
    missing = p0.history.missing_tokens(probe)
    assert missing == [] or missing  # computed against final history
    # Final history holds both tokens after the drain:
    assert p0.history.has_token(1, 0)
    assert p0.history.has_token(1, 1)
    assert p0.history.missing_tokens(probe) == []


def test_tokens_arriving_out_of_order_are_handled():
    """The paper: 'We do not make any assumption about the ordering of
    tokens among themselves.'  Version-1 token first, version-0 second."""
    app = ScriptedApp(bootstrap_sends={1: [(0, "a")]}, rules={})
    latency = (
        ScriptedLatency(default=2.0)
        .plan(1, 0, 1.0)
        .plan(1, 0, 40.0, 20.0, kind="token")   # v0 token slower than v1's
    )
    result = build(
        2, app, latency,
        crashes=CrashPlan().crash(5.0, 1, 1.0).crash(10.0, 1, 1.0),
    )
    p0 = result.protocols[0]
    arrivals = result.trace.events(EventKind.TOKEN_DELIVER, pid=0)
    assert [e["version"] for e in arrivals] == [1, 0]
    assert p0.history.has_token(1, 0) and p0.history.has_token(1, 1)
    assert check_recovery(result).ok


def test_crash_with_nothing_logged_restores_initial_checkpoint():
    app = ScriptedApp(bootstrap_sends={0: [(1, "m")]}, rules={})
    latency = ScriptedLatency(default=2.0).plan(0, 1, 1.0)
    result = build(
        2, app, latency, crashes=CrashPlan().crash(5.0, 1, 1.0)
    )
    restart = result.trace.last(EventKind.RESTART, pid=1)
    assert restart is not None
    assert restart["replayed"] == 0            # nothing was flushed
    gt_lost = 1                                # the state m created is lost
    from repro.analysis.causality import build_ground_truth

    gt = build_ground_truth(result.trace, 2)
    assert len(gt.lost) == gt_lost
    assert check_recovery(result).ok


def test_flushed_message_survives_crash():
    app = ScriptedApp(bootstrap_sends={0: [(1, "m")]}, rules={})
    latency = ScriptedLatency(default=2.0).plan(0, 1, 1.0)
    result = build(
        2, app, latency,
        crashes=CrashPlan().crash(5.0, 1, 1.0),
        flush_at=[(1, 2.0)],                   # flush before the crash
    )
    restart = result.trace.last(EventKind.RESTART, pid=1)
    assert restart["replayed"] == 1
    from repro.analysis.causality import build_ground_truth

    gt = build_ground_truth(result.trace, 2)
    assert gt.lost == set()
    assert result.protocols[1].executor.state == ("m",)


def test_history_record_kinds_after_full_recovery():
    app = ScriptedApp(
        bootstrap_sends={0: [(1, "m1"), (1, "m2")]},
        rules={(1, "m2"): [(0, "r")]},
    )
    latency = (
        ScriptedLatency(default=2.0)
        .plan(0, 1, 1.0, 2.0)
        .plan(1, 0, 1.0)
    )
    result = build(
        2, app, latency,
        crashes=CrashPlan().crash(6.0, 1, 1.0),
        flush_at=[(1, 1.5)],                   # only m1 survives
    )
    p0, p1 = result.protocols
    # P0 depends on P1's lost state via r: it must have rolled back and
    # now holds a TOKEN record for (P1, v0).
    record = p0.history.record(1, 0)
    assert record is not None and record.kind is RecordKind.TOKEN
    assert p0.stats.rollbacks == 1
    # P1's own history also carries its token record.
    own = p1.history.record(1, 0)
    assert own is not None and own.kind is RecordKind.TOKEN
    assert check_recovery(result).ok
