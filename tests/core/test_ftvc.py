"""Unit tests for the Fault-Tolerant Vector Clock (paper Fig. 2, Sec. 4)."""

import pytest

from repro.core.ftvc import ClockEntry, FaultTolerantVectorClock as FTVC


class TestClockEntry:
    def test_lexicographic_order(self):
        assert ClockEntry(0, 5) < ClockEntry(1, 0)      # version dominates
        assert ClockEntry(1, 0) < ClockEntry(1, 1)      # then timestamp
        assert not ClockEntry(1, 1) < ClockEntry(1, 1)
        assert max(ClockEntry(0, 9), ClockEntry(1, 0)) == ClockEntry(1, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockEntry(-1, 0)
        with pytest.raises(ValueError):
            ClockEntry(0, -1)


class TestRules:
    def test_initialize(self):
        clock = FTVC.initial(1, 3)
        assert clock.pairs() == ((0, 0), (0, 1), (0, 0))

    def test_initial_pid_range(self):
        with pytest.raises(ValueError):
            FTVC.initial(3, 3)

    def test_tick_increments_own_timestamp_only(self):
        clock = FTVC.initial(0, 3).tick(0)
        assert clock.pairs() == ((0, 2), (0, 0), (0, 0))

    def test_merge_componentwise_lexicographic_max(self):
        a = FTVC.of([(0, 5), (1, 0), (0, 3)])
        b = FTVC.of([(0, 2), (0, 9), (0, 4)])
        merged = a.merge(b)
        # version 1 beats version 0 even with a bigger timestamp
        assert merged.pairs() == ((0, 5), (1, 0), (0, 4))

    def test_merge_length_mismatch(self):
        with pytest.raises(ValueError):
            FTVC.initial(0, 2).merge(FTVC.initial(0, 3))

    def test_restart_bumps_version_resets_timestamp(self):
        clock = FTVC.of([(0, 7), (0, 3)]).restart(0)
        assert clock.pairs() == ((1, 0), (0, 3))

    def test_restart_needs_only_version_not_timestamp(self):
        # Two clocks of the same version but different (possibly lost)
        # timestamps restart to the identical entry.
        a = FTVC.of([(2, 99), (0, 0)]).restart(0)
        b = FTVC.of([(2, 1), (0, 0)]).restart(0)
        assert a[0] == b[0] == ClockEntry(3, 0)

    def test_operations_do_not_mutate(self):
        clock = FTVC.initial(0, 2)
        clock.tick(0)
        clock.merge(FTVC.of([(0, 9), (0, 9)]))
        clock.restart(0)
        assert clock.pairs() == ((0, 1), (0, 0))


class TestOrder:
    def test_strict_order_definition(self):
        a = FTVC.of([(0, 1), (0, 0)])
        b = FTVC.of([(0, 1), (0, 1)])
        assert a < b and a <= b
        assert not b < a
        assert not a < a and a <= a

    def test_version_dominates_in_order(self):
        old = FTVC.of([(0, 100), (0, 0)])
        new = FTVC.of([(1, 0), (0, 0)])
        assert old < new

    def test_concurrency(self):
        a = FTVC.of([(0, 2), (0, 0)])
        b = FTVC.of([(0, 1), (0, 1)])
        assert a.concurrent_with(b)
        assert not a.concurrent_with(a)

    def test_equality_hash(self):
        assert FTVC.of([(0, 1)]) == FTVC.of([(0, 1)])
        assert hash(FTVC.of([(0, 1)])) == hash(FTVC.of([(0, 1)]))
        assert FTVC.of([(0, 1)]) != FTVC.of([(1, 1)])


class TestFigure1Values:
    """Replays Figure 1's clock evolution by hand and checks every box."""

    def test_figure1(self):
        n = 3
        p0 = FTVC.initial(0, n)           # (0,1)(0,0)(0,0)
        p1 = FTVC.initial(1, n)           # (0,0)(0,1)(0,0)
        p2 = FTVC.initial(2, n)           # (0,0)(0,0)(0,1)

        # P2 sends m0 to P1 (delivered only after P1's restart).
        m0_clock = p2
        p2 = p2.tick(2)                   # s21 = (0,0)(0,0)(0,2)
        assert p2.pairs() == ((0, 0), (0, 0), (0, 2))

        # P0 sends m1 then m2 to P1.
        m1_clock = p0
        p0 = p0.tick(0)                   # (0,2)(0,0)(0,0)
        m2_clock = p0
        p0 = p0.tick(0)                   # (0,3)(0,0)(0,0)
        assert p0.pairs() == ((0, 3), (0, 0), (0, 0))

        # P1 receives m1 -> s11, then m2 -> s12.
        p1 = p1.merge(m1_clock).tick(1)   # s11 = (0,1)(0,2)(0,0)
        s11 = p1
        assert s11.pairs() == ((0, 1), (0, 2), (0, 0))
        p1 = p1.merge(m2_clock).tick(1)   # s12 = (0,2)(0,3)(0,0)
        s12 = p1
        assert s12.pairs() == ((0, 2), (0, 3), (0, 0))

        # s12 sends m3 to P2.
        m3_clock = p1
        p1 = p1.tick(1)                   # (0,2)(0,4)(0,0)
        assert p1.pairs() == ((0, 2), (0, 4), (0, 0))

        # P2 receives m3 -> s22 (the orphan-to-be).
        s22 = p2.merge(m3_clock).tick(2)
        assert s22.pairs() == ((0, 2), (0, 3), (0, 3))

        # P1 fails, restores s11 (m2 was unlogged), restarts: r10.
        r10 = s11.restart(1)
        assert r10.pairs() == ((0, 1), (1, 0), (0, 0))

        # P2 learns of the failure, rolls back s22 to s21, recovery state r20.
        r20 = FTVC.of([(0, 0), (0, 0), (0, 2)]).tick(2)
        assert r20.pairs() == ((0, 0), (0, 0), (0, 3))

        # m0 finally reaches the restarted P1.
        p1_after_m0 = r10.merge(m0_clock).tick(1)
        assert p1_after_m0.pairs() == ((0, 1), (1, 1), (0, 1))

        # The paper's closing observation: FTVC does NOT order non-useful
        # states correctly -- r20.c < s22.c although r20 !-> s22.
        assert r20 < s22


class TestOverheadAccounting:
    def test_piggyback_entries_is_n(self):
        assert FTVC.initial(0, 7).piggyback_entries() == 7

    def test_wire_size_grows_with_log_f(self):
        base = FTVC.of([(0, 1), (0, 1)])
        failed_once = FTVC.of([(1, 1), (0, 1)])
        failed_lots = FTVC.of([(7, 1), (0, 1)])
        assert base.wire_size_bits() <= failed_once.wire_size_bits()
        assert failed_once.wire_size_bits() <= failed_lots.wire_size_bits()
        # 2 entries x (32 ts bits + 3 version bits for versions up to 7)
        assert failed_lots.wire_size_bits() == 2 * (32 + 3)


def test_empty_clock_rejected():
    with pytest.raises(ValueError):
        FTVC([])


def test_repr_is_compact():
    assert repr(FTVC.of([(0, 1), (1, 2)])) == "FTVC[(0,1) (1,2)]"


class TestDeltaEncoding:
    """diff/from_delta: the wire fast path's per-link clock compression."""

    def test_diff_roundtrip_single_tick(self):
        base = FTVC.of([(0, 1), (0, 2), (0, 3)])
        new = base.tick(1)
        changes = new.diff(base)
        assert changes == ((1, 0, 3),)
        assert FTVC.from_delta(base, changes) == new

    def test_diff_of_identical_clock_is_empty(self):
        clock = FTVC.of([(0, 1), (0, 2)])
        assert clock.diff(clock) == ()
        assert FTVC.from_delta(clock, ()) == clock

    def test_diff_covers_restart(self):
        base = FTVC.of([(0, 7), (0, 3)])
        new = base.restart(0)
        changes = new.diff(base)
        assert changes == ((0, 1, 0),)
        assert FTVC.from_delta(base, changes) == new

    def test_diff_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            FTVC.initial(0, 2).diff(FTVC.initial(0, 3))

    def test_delta_is_idempotent(self):
        # Absolute (index, version, timestamp) triples: re-applying a
        # delta to its own result is a no-op, which is what lets the
        # decoder process duplicate frames without desynchronising.
        base = FTVC.of([(0, 1), (0, 2)])
        new = base.tick(0)
        changes = new.diff(base)
        assert FTVC.from_delta(new, changes) == new

    def test_delta_bits_beat_full_bits_for_small_diffs(self):
        base = FTVC.initial(0, 8)
        new = base.tick(0)
        assert new.delta_wire_size_bits(base) < new.wire_size_bits()

    def test_exact_byte_costs_under_binary_codec(self):
        base = FTVC.of([(0, 1), (0, 2)])
        # Full: tag + count + 2 * (version varint + timestamp varint).
        assert base.wire_size_bytes() == 6
        # Delta with one change: tag + count + (idx, version, ts) varints.
        new = base.tick(1)
        assert new.delta_wire_size_bytes(base) == 5
