"""History compaction under the full protocol (simulator engine).

The GC boundary satellite: records may be dropped only once a token for
a *newer* version of the same process has been durably observed, and a
run that crashes after (or during) compaction sweeps must still pass the
recovery oracles.  The live-cluster counterpart of these tests is in
``tests/live/test_cluster.py``.
"""

from repro.analysis.consistency import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def _spec(*, crashes, config, seed=0, horizon=110.0, **kwargs):
    return ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        config=config,
        **kwargs,
    )


def test_failure_free_run_compacts_nothing():
    # No failures -> no tokens -> every record's killing token is still
    # unobserved, so compaction must not touch a thing.
    spec = _spec(
        crashes=None,
        config=ProtocolConfig(
            checkpoint_interval=8.0, flush_interval=2.5,
            compact_history=True,
        ),
        stability_interval=6.0,
    )
    result = run_experiment(spec)
    assert result.total("history_compacted") == 0
    for protocol in result.protocols:
        assert all(protocol.history.floor(j) == 0 for j in range(4))


def test_single_failure_keeps_the_restoration_point():
    # One crash produces one token (version 0).  That token is the live
    # restoration point for Lemma 4 -- no newer token supersedes it --
    # so compaction keeps it and the floor stays put.
    spec = _spec(
        crashes=CrashPlan().crash(20.0, 1, 2.0),
        config=ProtocolConfig(
            checkpoint_interval=8.0, flush_interval=2.5,
            compact_history=True,
        ),
        stability_interval=6.0,
    )
    result = run_experiment(spec)
    assert result.total("history_compacted") == 0
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_repeated_failures_compact_superseded_records():
    # Two crashes of the same process: token v1 supersedes token v0, so
    # sweeps after the second recovery drop the v0 records everywhere
    # while the run stays oracle-clean.
    spec = _spec(
        crashes=CrashPlan().crash(20.0, 1, 2.0).crash(45.0, 1, 2.0),
        config=ProtocolConfig(
            checkpoint_interval=8.0, flush_interval=2.5,
            compact_history=True,
        ),
        stability_interval=6.0,
    )
    result = run_experiment(spec)
    assert result.total("history_compacted") > 0
    floors = [
        p.history.floor(1) for p in result.protocols if p.pid != 1
    ]
    assert any(f >= 1 for f in floors)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_crash_after_compaction_stays_recoverable():
    # The crash-during/after-compaction boundary: a third failure (of a
    # different process) lands after sweeps have already advanced the
    # floors; its recovery runs over compacted histories and restored
    # checkpoints that carry compacted snapshots.
    spec = _spec(
        crashes=(
            CrashPlan()
            .crash(20.0, 1, 2.0)
            .crash(40.0, 1, 2.0)
            .crash(70.0, 2, 2.0)
        ),
        config=ProtocolConfig(
            checkpoint_interval=8.0, flush_interval=2.5,
            compact_history=True, enable_gc=True,
        ),
        stability_interval=6.0,
    )
    result = run_experiment(spec)
    assert result.total("history_compacted") > 0
    assert result.total_restarts >= 3
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_history_stays_O_n_with_compaction():
    # Section 6.9: with compaction the table is O(n) per process (one
    # live restoration point plus message records), not O(n * f).
    crashes = CrashPlan()
    for i in range(4):
        crashes = crashes.crash(15.0 + 12.0 * i, 1, 2.0)
    spec = _spec(
        crashes=crashes,
        config=ProtocolConfig(
            checkpoint_interval=8.0, flush_interval=2.5,
            compact_history=True,
        ),
        stability_interval=6.0,
        horizon=130.0,
    )
    result = run_experiment(spec)
    assert result.total("history_compacted") > 0
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    for protocol in result.protocols:
        # 4 failures of p1: the uncompacted bound would be n + f = 8.
        assert protocol.history.size() <= 2 * 4


def test_gossiped_frontiers_drive_compaction_without_a_coordinator():
    # Decentralised stability: every process broadcasts its flushed
    # frontier and runs apply_stability locally once it holds a report
    # from everyone -- no StabilityCoordinator in the loop.
    spec = _spec(
        crashes=CrashPlan().crash(20.0, 1, 2.0).crash(45.0, 1, 2.0),
        config=ProtocolConfig(
            checkpoint_interval=8.0, flush_interval=2.5,
            compact_history=True,
            gossip_stability=True, gossip_interval=5.0,
        ),
    )
    result = run_experiment(spec)
    assert result.coordinator is None
    assert result.total("history_compacted") > 0
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
