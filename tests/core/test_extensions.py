"""Tests for the Section 6.5 extensions: output commit and GC."""

from repro.analysis import check_recovery
from repro.apps import PipelineApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.trace import EventKind


def run(app=None, crashes=None, seed=0, *, commit=False, gc=False,
        stability=4.0, horizon=90.0):
    spec = ExperimentSpec(
        n=4,
        app=app or RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        config=ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            commit_outputs=commit,
            enable_gc=gc,
        ),
        stability_interval=stability,
    )
    return run_experiment(spec)


class TestGarbageCollection:
    def test_space_is_reclaimed(self):
        result = run(gc=True)
        assert result.coordinator.stats.checkpoints_collected > 0
        assert result.coordinator.stats.log_entries_collected > 0
        for protocol in result.protocols:
            log = protocol.storage.log
            assert log.retained_stable_entries <= log.stable_length

    def test_recovery_still_correct_with_gc(self):
        for seed in range(5):
            result = run(
                gc=True,
                seed=seed,
                crashes=CrashPlan().crash(20.0, 1, 2.0).crash(45.0, 2, 2.0),
            )
            verdict = check_recovery(result)
            assert verdict.ok, (seed, verdict.violations)

    def test_gc_never_reclaims_what_a_rollback_needs(self):
        """Concurrent failures, aggressive sweeps: replay must never hit a
        collected log entry (which would raise inside the protocol)."""
        for seed in range(5):
            result = run(
                gc=True,
                stability=2.0,
                seed=seed,
                crashes=CrashPlan().concurrent(25.0, [0, 2], 3.0),
            )
            assert check_recovery(result).ok

    def test_no_gc_without_flag(self):
        result = run(gc=False)
        assert result.coordinator.stats.checkpoints_collected == 0
        assert result.coordinator.stats.log_entries_collected == 0


class TestOutputCommit:
    def test_all_pipeline_outputs_commit_exactly_once(self):
        for seed in range(5):
            result = run(
                app=PipelineApp(jobs=10),
                crashes=CrashPlan().crash(6.0, 2, 2.0),
                seed=seed,
                commit=True,
            )
            sink = result.protocols[3]
            job_ids = [value[1] for _, value in sink.outputs]
            assert sorted(job_ids) == list(range(10))

    def test_commits_are_marked_in_trace(self):
        result = run(app=PipelineApp(jobs=8), commit=True)
        committed = [
            e
            for e in result.trace.events(EventKind.OUTPUT)
            if e.get("committed") is True
        ]
        assert len(committed) == 8

    def test_no_output_from_an_undone_state_is_committed(self):
        from repro.analysis.causality import build_ground_truth

        for seed in range(8):
            result = run(
                app=PipelineApp(jobs=10),
                crashes=CrashPlan().crash(6.0, 2, 2.0),
                seed=seed,
                commit=True,
            )
            gt = build_ground_truth(result.trace, 4)
            dead = gt.undone() | gt.lost
            for event in result.trace.events(EventKind.OUTPUT):
                if event.get("committed") is True:
                    assert event["uid"] not in dead

    def test_commit_waits_for_stability(self):
        """An output is never committed before the sweep that certifies
        it: committed=True events only appear at coordinator sweeps."""
        result = run(app=PipelineApp(jobs=6), commit=True)
        emitted = {
            e["uid"]: e.seq
            for e in result.trace.events(EventKind.OUTPUT)
            if e.get("committed") is False
        }
        for event in result.trace.events(EventKind.OUTPUT):
            if event.get("committed") is True:
                assert event.seq > emitted[event["uid"]]


class TestStabilityCoordinator:
    def test_sweeps_run_on_schedule(self):
        result = run(stability=5.0, horizon=60.0)
        assert result.coordinator.stats.rounds >= 60.0 / 5.0

    def test_frontier_survives_crashes(self):
        result = run(
            gc=True,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
        )
        frontier = result.coordinator.sweep_now()
        assert set(frontier) == {0, 1, 2, 3}
        # The failed process reports its new incarnation's frontier.
        assert frontier[1].version == 1
