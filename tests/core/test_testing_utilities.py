"""Tests for the public ScenarioBuilder (repro.testing)."""

import pytest

from repro.harness.scenarios import ScriptedApp
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.testing import ScenarioBuilder
from repro.sim.trace import EventKind


def test_docstring_example_works():
    result = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "m")]}))
        .latency(0, 1, 1.0)
        .crash(at=5.0, pid=1, downtime=1.0)
        .flush(pid=1, at=2.0)
        .run()
    )
    result.assert_recovered()
    assert result.protocols[1].executor.state == ("m",)


def test_without_flush_the_state_is_lost():
    result = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "m")]}))
        .latency(0, 1, 1.0)
        .crash(at=5.0, pid=1, downtime=1.0)
        .run()
    )
    result.assert_recovered()
    assert result.protocols[1].executor.state == ()


def test_checkpoint_scheduling():
    result = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "a"), (1, "b")]}))
        .latency(0, 1, 1.0, 2.0)
        .checkpoint(pid=1, at=3.0)       # checkpoint covers a and b
        .crash(at=6.0, pid=1, downtime=1.0)
        .run()
    )
    result.assert_recovered()
    assert result.protocols[1].executor.state == ("a", "b")
    restart = result.trace.last(EventKind.RESTART, pid=1)
    assert restart["replayed"] == 0      # the checkpoint carried everything


def test_protocol_override():
    result = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "m")]}))
        .protocol(PessimisticReceiverProcess)
        .crash(at=5.0, pid=1, downtime=1.0)
        .run()
    )
    result.assert_recovered()
    # Pessimistic logging never loses the state, no flush needed.
    assert result.protocols[1].executor.state == ("m",)


def test_assert_recovered_raises_on_violation():
    from repro.core.recovery import DamaniGargProcess

    class Broken(DamaniGargProcess):
        def _rollback(self, token):
            return []

    # Orphan scenario: P1's lost state sent to P0; broken P0 won't roll back.
    result = (
        ScenarioBuilder(n=2)
        .app(
            ScriptedApp(
                bootstrap_sends={0: [(1, "x")]},
                rules={(1, "x"): [(0, "bad")]},
            )
        )
        .protocol(Broken)
        .latency(0, 1, 1.0)
        .latency(1, 0, 1.0)
        .crash(at=4.0, pid=1, downtime=1.0)
        .run()
    )
    with pytest.raises(AssertionError):
        result.assert_recovered()


def test_builder_validation():
    with pytest.raises(ValueError):
        ScenarioBuilder(n=0)
    with pytest.raises(ValueError, match="needs .app"):
        ScenarioBuilder(n=2).run()


def test_default_latency_and_horizon():
    result = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "m")]}))
        .default_latency(7.0)
        .horizon(30.0)
        .run()
    )
    deliveries = result.trace.events(EventKind.DELIVER, pid=1)
    assert deliveries[0].time == 7.0
