"""White-box tests of DamaniGargProcess internals."""

from repro.core.ftvc import ClockEntry
from repro.core.recovery import AppEnvelope, DamaniGargProcess
from repro.harness.scenarios import ScriptedApp
from repro.protocols.base import ProtocolConfig
from repro.sim.trace import EventKind
from repro.testing import ScenarioBuilder


def simple_run(**builder_kwargs):
    return (
        ScenarioBuilder(n=3)
        .app(
            ScriptedApp(
                bootstrap_sends={0: [(1, "a"), (2, "b")]},
                rules={(1, "a"): [(2, "c")]},
            )
        )
        .run()
    )


class TestCheckpointExtras:
    def test_extras_hold_clock_history_and_seq(self):
        result = simple_run()
        protocol = result.protocols[1]
        protocol.take_checkpoint()
        extras = protocol.storage.checkpoints.latest().extras
        assert extras["clock"] == protocol.clock
        assert extras["send_seq"] == protocol._send_seq
        assert "history" in extras
        # No retransmission config: no send-log copies.
        assert "send_log" not in extras

    def test_retransmit_config_adds_send_state(self):
        result = (
            ScenarioBuilder(n=2)
            .app(ScriptedApp(bootstrap_sends={0: [(1, "m")]}))
            .config(ProtocolConfig(checkpoint_interval=1e9,
                                   flush_interval=1e9,
                                   retransmit_on_token=True))
            .run()
        )
        protocol = result.protocols[0]
        protocol.take_checkpoint()
        extras = protocol.storage.checkpoints.latest().extras
        assert "send_log" in extras and "delivered_ids" in extras
        assert len(extras["send_log"]) == 1

    def test_history_in_extras_is_isolated(self):
        result = simple_run()
        protocol = result.protocols[2]
        protocol.take_checkpoint()
        snapshot = protocol.storage.checkpoints.latest().extras["history"]
        before = snapshot.size()
        from repro.core.tokens import RecoveryToken

        protocol.history.observe_token(RecoveryToken(0, 5, 1))
        assert snapshot.size() == before


class TestStableFrontier:
    def test_frontier_advances_on_flush(self):
        result = simple_run()
        protocol = result.protocols[1]
        # Deliveries since the initial checkpoint sit in the volatile log:
        # the stable frontier lags the live clock...
        assert protocol.stable_frontier() < protocol.clock[1]
        # ...and catches up exactly at a flush.
        protocol.flush_log()
        assert protocol.stable_frontier() == protocol.clock[1]

    def test_frontier_is_own_entry_type(self):
        result = simple_run()
        frontier = result.protocols[0].stable_frontier()
        assert isinstance(frontier, ClockEntry)


class TestClockByUid:
    def test_every_surviving_state_has_a_clock(self):
        from repro.analysis.causality import build_ground_truth

        result = (
            ScenarioBuilder(n=2)
            .app(ScriptedApp(bootstrap_sends={0: [(1, "a"), (1, "b")]}))
            .latency(0, 1, 1.0, 2.0)
            .flush(pid=1, at=1.5)
            .crash(at=5.0, pid=1, downtime=1.0)
            .run()
        )
        gt = build_ground_truth(result.trace, 2)
        for pid in range(2):
            clock_map = result.protocols[pid].clock_by_uid
            for uid in gt.surviving[pid]:
                assert uid in clock_map, uid

    def test_clocks_strictly_increase_along_a_chain(self):
        from repro.analysis.causality import build_ground_truth

        result = simple_run()
        gt = build_ground_truth(result.trace, 3)
        for pid in range(3):
            clocks = result.protocols[pid].clock_by_uid
            chain = [u for u in gt.surviving[pid] if u in clocks]
            for earlier, later in zip(chain, chain[1:]):
                assert clocks[earlier] < clocks[later]


class TestHeldMessages:
    def test_release_reexamines_all(self):
        """Held messages must be re-checked, not blindly delivered."""
        result = (
            ScenarioBuilder(n=3)
            .app(
                ScriptedApp(
                    bootstrap_sends={2: [(1, "x"), (1, "y")]},
                    rules={
                        (1, "x"): [(0, "from-lost")],
                        (1, "y"): [(0, "post-restart")],
                    },
                )
            )
            # x reaches P1 pre-crash (unflushed -> lost); its message to P0
            # is slow and arrives after P1's token: plain obsolete discard.
            # y reaches P1 post-restart; its message to P0 arrives BEFORE
            # the token (postponed), then delivers at token time.
            .latency(2, 1, 1.0, 10.0)            # x t=1; y t=10 (post-restart)
            .latency(1, 0, 30.0, 2.0)            # from-lost t=31; post t=12
            .latency(1, 0, 15.0, kind="token")   # token to P0 at t=~23
            .crash(at=4.0, pid=1, downtime=1.0)
            .run()
        )
        p0 = result.protocols[0]
        postpones = result.trace.events(EventKind.POSTPONE, pid=0)
        discards = result.trace.events(EventKind.DISCARD, pid=0)
        assert len(postpones) == 1               # "post-restart" held
        assert [e["reason"] for e in discards] == ["obsolete"]  # "from-lost"
        assert p0.executor.state == ("post-restart",)
        result.assert_recovered()
        assert p0._held == []


class TestPiggybackAccounting:
    def test_entry_count_matches_n(self):
        result = simple_run()
        for protocol in result.protocols:
            assert protocol.piggyback_entry_count() == 3

    def test_bits_counted_per_send(self):
        result = simple_run()
        total_sent = sum(p.stats.app_sent for p in result.protocols)
        total_bits = sum(p.stats.piggyback_bits for p in result.protocols)
        assert total_bits == total_sent * 3 * 33   # 3 entries x (32+1) bits


class TestEnvelope:
    def test_envelope_is_immutable_value(self):
        from repro.core.ftvc import FaultTolerantVectorClock as FTVC

        env = AppEnvelope(
            payload="p", clock=FTVC.initial(0, 2), dedup_id=(0, 1)
        )
        assert env == AppEnvelope(
            payload="p", clock=FTVC.initial(0, 2), dedup_id=(0, 1)
        )


class TestMessageCountCheckpointPolicy:
    def test_checkpoints_every_k_deliveries(self):
        from repro.apps import RandomRoutingApp
        from repro.harness.runner import ExperimentSpec, run_experiment
        from repro.sim.trace import EventKind

        spec = ExperimentSpec(
            n=3,
            app=RandomRoutingApp(hops=30, seeds=(0,), initial_items=2),
            protocol=DamaniGargProcess,
            horizon=80.0,
            config=ProtocolConfig(
                checkpoint_interval=1e9,       # disable time pacing
                flush_interval=1e9,
                checkpoint_every_messages=5,
            ),
        )
        result = run_experiment(spec)
        for protocol in result.protocols:
            delivered = protocol.stats.app_delivered
            # initial checkpoint + one per 5 deliveries
            expected = 1 + delivered // 5
            assert protocol.storage.checkpoints.taken_count == expected

    def test_policy_bounds_replay_length(self):
        from repro.apps import RandomRoutingApp
        from repro.harness.runner import ExperimentSpec, run_experiment
        from repro.sim.failures import CrashPlan
        from repro.sim.trace import EventKind
        from repro.analysis import check_recovery

        spec = ExperimentSpec(
            n=3,
            app=RandomRoutingApp(hops=60, seeds=(0, 1), initial_items=3),
            protocol=DamaniGargProcess,
            crashes=CrashPlan().crash(25.0, 1, 2.0),
            horizon=80.0,
            config=ProtocolConfig(
                checkpoint_interval=1e9,
                flush_interval=2.0,
                checkpoint_every_messages=4,
            ),
        )
        result = run_experiment(spec)
        assert check_recovery(result).ok
        restart = result.trace.last(EventKind.RESTART, pid=1)
        assert restart is not None
        assert restart["replayed"] < 4

    def test_disabled_by_default(self):
        result = simple_run()
        for protocol in result.protocols:
            # only the initial checkpoint (periodic tasks were halted
            # before any interval elapsed at 1e9)
            assert protocol.storage.checkpoints.taken_count == 1
