"""Integration tests for the Damani-Garg protocol (paper Fig. 4, Sec. 6)."""

import pytest

from repro.apps import PingPongApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder
from repro.sim.trace import EventKind


def run(
    *,
    n=4,
    app=None,
    crashes=None,
    seed=0,
    horizon=120.0,
    order=DeliveryOrder.RANDOM,
    config=None,
):
    spec = ExperimentSpec(
        n=n,
        app=app or RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        order=order,
        config=config or ProtocolConfig(checkpoint_interval=8.0,
                                        flush_interval=2.5),
    )
    return run_experiment(spec)


class TestFailureFree:
    def test_no_recovery_activity_without_failures(self):
        result = run(crashes=None)
        assert result.total_restarts == 0
        assert result.total_rollbacks == 0
        assert result.total("tokens_sent") == 0
        assert result.total("control_sent") == 0
        assert result.trace.count(EventKind.DISCARD) == 0

    def test_work_actually_happens(self):
        result = run(crashes=None)
        assert result.total_delivered > 50
        assert result.total("app_sent") > 50

    def test_piggyback_is_exactly_n_entries_per_message(self):
        result = run(n=5, crashes=None)
        assert (
            result.total("piggyback_entries")
            == result.total("app_sent") * 5
        )

    def test_deterministic_given_seed(self):
        a = run(seed=3, crashes=CrashPlan().crash(20.0, 1, 2.0))
        b = run(seed=3, crashes=CrashPlan().crash(20.0, 1, 2.0))
        assert a.trace.signature() == b.trace.signature()

    def test_different_seeds_differ(self):
        a = run(seed=1)
        b = run(seed=2)
        assert a.trace.signature() != b.trace.signature()


class TestSingleFailure:
    def test_restart_broadcasts_one_token_per_peer(self):
        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
        assert result.total_restarts == 1
        assert result.total("tokens_sent") == result.spec.n - 1
        assert result.trace.count(EventKind.TOKEN_SEND) == 1

    def test_version_number_increments(self):
        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
        failed = result.protocols[1]
        assert failed.clock[1].version == 1
        survivor = result.protocols[0]
        assert survivor.clock[0].version == 0

    def test_restart_takes_fresh_checkpoint(self):
        """Section 6.2: the new checkpoint preserves the version number."""
        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
        failed = result.protocols[1]
        latest = failed.storage.checkpoints.latest_satisfying(lambda c: True)
        restart_event = result.trace.last(EventKind.RESTART, pid=1)
        assert restart_event is not None
        ckpts_after = [
            e
            for e in result.trace.events(EventKind.CHECKPOINT, pid=1)
            if e.seq > restart_event.seq
        ]
        assert ckpts_after, "no checkpoint taken at restart"
        first = ckpts_after[0]
        assert first.time == restart_event.time

    def test_replay_recovers_stable_log(self):
        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
        restart_event = result.trace.last(EventKind.RESTART, pid=1)
        assert restart_event is not None
        assert restart_event["replayed"] >= 0
        # Replayed deliveries are flagged in the trace.
        replays = [
            e
            for e in result.trace.events(EventKind.DELIVER, pid=1)
            if e["replay"]
        ]
        assert len(replays) >= restart_event["replayed"]

    def test_rollbacks_only_on_orphans(self):
        from repro.analysis import check_recovery

        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0), seed=7)
        verdict = check_recovery(result)
        assert verdict.ok, verdict.violations


class TestMultipleFailures:
    def test_concurrent_failures_recover(self):
        from repro.analysis import check_recovery

        result = run(crashes=CrashPlan().concurrent(25.0, [0, 2], 3.0))
        assert result.total_restarts == 2
        assert check_recovery(result).ok

    def test_repeated_failure_of_same_process(self):
        from repro.analysis import check_recovery

        result = run(
            crashes=CrashPlan().crash(15.0, 1, 2.0).crash(35.0, 1, 2.0)
        )
        failed = result.protocols[1]
        assert failed.clock[1].version == 2
        assert check_recovery(result).ok

    def test_at_most_one_rollback_per_failure(self):
        result = run(
            crashes=CrashPlan().crash(15.0, 1, 2.0).crash(30.0, 2, 2.0),
            seed=5,
        )
        assert result.max_rollbacks_for_single_failure() <= 1


class TestMessageHandling:
    def test_obsolete_messages_discarded(self):
        # With enough traffic and a failure, some in-flight messages from
        # lost/orphan states get discarded.
        for seed in range(10):
            result = run(crashes=CrashPlan().crash(20.0, 1, 2.0), seed=seed)
            if result.total("app_discarded") > 0:
                break
        else:
            pytest.fail("no run produced an obsolete message")
        discards = result.trace.events(EventKind.DISCARD)
        assert all(e["reason"] == "obsolete" for e in discards)

    def test_postponed_messages_eventually_delivered_or_discarded(self):
        found = False
        for seed in range(15):
            result = run(crashes=CrashPlan().crash(20.0, 1, 2.0), seed=seed)
            if result.total("app_postponed") > 0:
                found = True
                for protocol in result.protocols:
                    assert protocol._held == [], "messages stuck in hold"
        assert found, "no run postponed a message"

    def test_no_fifo_assumption(self):
        """The protocol must behave identically-correctly under reordering."""
        from repro.analysis import check_recovery

        for order in (DeliveryOrder.RANDOM, DeliveryOrder.FIFO):
            result = run(
                order=order, crashes=CrashPlan().crash(20.0, 1, 2.0), seed=11
            )
            assert check_recovery(result).ok


class TestTokenHandling:
    def test_tokens_logged_synchronously(self):
        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
        for protocol in result.protocols:
            if protocol.pid == 1:
                continue
            assert len(protocol.storage.tokens) == protocol.stats.tokens_received

    def test_rollback_ticks_timestamp_not_version(self):
        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0), seed=7)
        rollbacks = result.trace.events(EventKind.ROLLBACK)
        for event in rollbacks:
            protocol = result.protocols[event.pid]
            assert protocol.clock[event.pid].version == 0


class TestRetransmissionExtension:
    def test_retransmit_resends_concurrent_messages(self):
        config = ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            retransmit_on_token=True,
        )
        total = 0
        for seed in range(8):
            result = run(
                crashes=CrashPlan().crash(20.0, 1, 2.0),
                seed=seed,
                config=config,
            )
            total += result.total("retransmitted")
            from repro.analysis import check_recovery

            assert check_recovery(result).ok
        assert total > 0, "retransmission never triggered"

    def test_duplicates_are_suppressed(self):
        config = ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            retransmit_on_token=True,
        )
        for seed in range(8):
            result = run(
                crashes=CrashPlan().crash(20.0, 1, 2.0),
                seed=seed,
                config=config,
            )
            if result.total("duplicates_discarded") > 0:
                return
        pytest.fail("no duplicate was ever suppressed")


class TestPingPong:
    def test_pairs_survive_a_failure(self):
        from repro.analysis import check_recovery

        result = run(
            n=4,
            app=PingPongApp(rounds=60),
            crashes=CrashPlan().crash(10.0, 0, 1.0),
            seed=2,
        )
        assert check_recovery(result).ok
