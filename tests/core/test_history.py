"""Unit tests for the history mechanism (paper Fig. 3, Sec. 5)."""

import pytest

from repro.core.ftvc import FaultTolerantVectorClock as FTVC
from repro.core.history import History, HistoryRecord, RecordKind
from repro.core.tokens import RecoveryToken


def test_initialization_matches_figure3():
    history = History(pid=1, n=3)
    assert history.record(0, 0) == HistoryRecord(RecordKind.MESSAGE, 0, 0)
    assert history.record(1, 0) == HistoryRecord(RecordKind.MESSAGE, 0, 1)
    assert history.record(2, 0) == HistoryRecord(RecordKind.MESSAGE, 0, 0)
    assert history.size() == 3


def test_pid_out_of_range():
    with pytest.raises(ValueError):
        History(pid=3, n=3)


class TestMessageObservation:
    def test_raises_message_record_to_max(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 5)]))
        assert history.record(1, 0).timestamp == 5
        history.observe_message_clock(FTVC.of([(0, 1), (0, 3)]))
        assert history.record(1, 0).timestamp == 5      # never lowered
        history.observe_message_clock(FTVC.of([(0, 1), (0, 9)]))
        assert history.record(1, 0).timestamp == 9

    def test_one_record_per_version(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 5)]))
        history.observe_message_clock(FTVC.of([(0, 1), (1, 2)]))
        records = history.records_for(1)
        assert [(r.version, r.timestamp) for r in records] == [(0, 5), (1, 2)]
        assert history.size() == 3   # 1 own record + 2 versions of P1

    def test_token_record_never_overwritten_by_message(self):
        history = History(0, 2)
        history.observe_token(RecoveryToken(1, 0, 7))
        history.observe_message_clock(FTVC.of([(0, 1), (0, 6)]))
        rec = history.record(1, 0)
        assert rec.kind is RecordKind.TOKEN and rec.timestamp == 7

    def test_clock_length_checked(self):
        with pytest.raises(ValueError):
            History(0, 2).observe_message_clock(FTVC.of([(0, 1)]))


class TestTokenObservation:
    def test_token_replaces_message_record(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 9)]))
        history.observe_token(RecoveryToken(1, 0, 4))
        rec = history.record(1, 0)
        assert rec.kind is RecordKind.TOKEN and rec.timestamp == 4

    def test_has_token(self):
        history = History(0, 3)
        assert not history.has_token(1, 0)
        history.observe_token(RecoveryToken(1, 0, 4))
        assert history.has_token(1, 0)
        assert not history.has_token(1, 1)
        assert not history.has_token(2, 0)


class TestObsoleteTest:
    """Lemma 4: obsolete iff a token record is exceeded."""

    def test_message_above_restoration_point_is_obsolete(self):
        history = History(0, 2)
        history.observe_token(RecoveryToken(1, 0, 4))
        assert history.is_obsolete(FTVC.of([(0, 1), (0, 5)]))

    def test_message_at_restoration_point_is_not_obsolete(self):
        history = History(0, 2)
        history.observe_token(RecoveryToken(1, 0, 4))
        assert not history.is_obsolete(FTVC.of([(0, 1), (0, 4)]))

    def test_new_version_not_obsolete(self):
        history = History(0, 2)
        history.observe_token(RecoveryToken(1, 0, 4))
        assert not history.is_obsolete(FTVC.of([(0, 1), (1, 1)]))

    def test_without_token_nothing_is_obsolete(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 9)]))
        assert not history.is_obsolete(FTVC.of([(0, 2), (0, 99)]))


class TestDeliverability:
    def test_version_zero_always_deliverable(self):
        history = History(0, 2)
        assert history.missing_tokens(FTVC.of([(0, 5), (0, 3)])) == []

    def test_higher_version_requires_all_earlier_tokens(self):
        history = History(0, 2)
        clock = FTVC.of([(0, 1), (2, 1)])
        assert history.missing_tokens(clock) == [(1, 0), (1, 1)]
        history.observe_token(RecoveryToken(1, 0, 4))
        assert history.missing_tokens(clock) == [(1, 1)]
        history.observe_token(RecoveryToken(1, 1, 2))
        assert history.missing_tokens(clock) == []

    def test_tokens_may_arrive_out_of_order(self):
        history = History(0, 2)
        history.observe_token(RecoveryToken(1, 1, 2))
        clock = FTVC.of([(0, 1), (2, 1)])
        assert history.missing_tokens(clock) == [(1, 0)]


class TestOrphanTest:
    """Lemma 3: orphan iff a message record exceeds the token."""

    def test_orphan_when_dependent_beyond_restoration(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 9)]))
        assert history.orphaned_by(RecoveryToken(1, 0, 4))

    def test_not_orphan_at_restoration_point(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 4)]))
        assert not history.orphaned_by(RecoveryToken(1, 0, 4))

    def test_not_orphan_without_dependence_on_that_version(self):
        history = History(0, 2)
        assert not history.orphaned_by(RecoveryToken(1, 2, 0))

    def test_token_record_is_not_an_orphan_witness(self):
        history = History(0, 2)
        history.observe_token(RecoveryToken(1, 0, 9))
        assert not history.orphaned_by(RecoveryToken(1, 0, 4))


class TestSurvivesToken:
    """The rollback scan predicate (Fig. 4 step I, with <= per Lemma 3)."""

    def test_no_record_survives(self):
        history = History(0, 2)
        assert history.survives_token(RecoveryToken(1, 3, 0))

    def test_below_or_at_restoration_survives(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 4)]))
        assert history.survives_token(RecoveryToken(1, 0, 4))
        assert history.survives_token(RecoveryToken(1, 0, 5))
        assert not history.survives_token(RecoveryToken(1, 0, 3))

    def test_survives_iff_not_orphaned(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 7)]))
        for ts in range(10):
            token = RecoveryToken(1, 0, ts)
            assert history.survives_token(token) != history.orphaned_by(token)


class TestSnapshot:
    def test_snapshot_is_independent(self):
        history = History(0, 2)
        snap = history.snapshot()
        history.observe_message_clock(FTVC.of([(0, 1), (0, 9)]))
        assert snap.record(1, 0).timestamp == 0
        assert history.record(1, 0).timestamp == 9

    def test_size_is_O_nf(self):
        history = History(0, 4)
        for version in range(3):
            for j in range(1, 4):
                history.observe_token(RecoveryToken(j, version, version))
        # n=4 processes, max version 2 => at most 4 * 3 records
        assert history.size() <= 4 * 3


def test_repr_mentions_records():
    history = History(0, 2)
    history.observe_token(RecoveryToken(1, 0, 3))
    assert "(token,0,3)" in repr(history)


class TestCompaction:
    """compact(): drop records provably dead once newer tokens are held.

    The GC boundary the paper's O(n*f) claim needs: a record may only be
    dropped after its killing token was observed -- concretely, compact()
    touches nothing but contiguous runs of TOKEN records and always keeps
    the newest token of a run (the live restoration point for Lemma 4).
    """

    def _with_tokens(self, versions, n=2, j=1):
        history = History(0, n)
        for v in versions:
            history.observe_token(RecoveryToken(j, v, v + 10))
        return history

    def test_contiguous_token_run_compacts_to_newest(self):
        history = self._with_tokens([0, 1, 2])
        assert history.compact() == 2
        assert history.floor(1) == 2
        assert history.record(1, 0) is None
        assert history.record(1, 1) is None
        rec = history.record(1, 2)
        assert rec.kind is RecordKind.TOKEN and rec.timestamp == 12

    def test_message_record_blocks_the_run(self):
        # Version 1's killing token was never observed: its MESSAGE
        # record (and everything above it) must survive compaction.
        history = self._with_tokens([0])
        history.observe_message_clock(FTVC.of([(0, 1), (1, 5)]))
        assert history.compact() == 0
        assert history.floor(1) == 0
        assert history.record(1, 0).kind is RecordKind.TOKEN
        assert history.record(1, 1).kind is RecordKind.MESSAGE

    def test_no_tokens_nothing_compacts(self):
        history = History(0, 2)
        history.observe_message_clock(FTVC.of([(0, 1), (0, 9)]))
        assert history.compact() == 0
        assert history.size() == 2

    def test_compact_is_idempotent(self):
        history = self._with_tokens([0, 1, 2])
        history.compact()
        assert history.compact() == 0
        assert history.floor(1) == 2

    def test_below_floor_tokens_count_as_observed(self):
        history = self._with_tokens([0, 1, 2])
        history.compact()
        assert history.has_token(1, 0)
        assert history.has_token(1, 1)
        # Deliverability scan starts at the floor.
        assert history.missing_tokens(FTVC.of([(0, 1), (4, 0)])) == [(1, 3)]

    def test_below_floor_clock_entries_are_obsolete(self):
        # The exact Lemma 4 comparison is gone with the record; the only
        # safe answer for a straggler from a twice-dead incarnation is
        # "obsolete" (discard).
        history = self._with_tokens([0, 1, 2])
        history.compact()
        assert history.is_obsolete(FTVC.of([(0, 1), (0, 3)]))
        assert history.is_obsolete(FTVC.of([(0, 1), (1, 0)]))
        # The kept newest token still answers exactly.
        assert not history.is_obsolete(FTVC.of([(0, 1), (2, 12)]))
        assert history.is_obsolete(FTVC.of([(0, 1), (2, 13)]))

    def test_observations_below_floor_are_noops(self):
        history = self._with_tokens([0, 1, 2])
        history.compact()
        history.observe_message_clock(FTVC.of([(0, 1), (0, 99)]))
        history.observe_token(RecoveryToken(1, 1, 99))
        assert history.record(1, 0) is None
        assert history.record(1, 1) is None

    def test_snapshot_preserves_floor(self):
        history = self._with_tokens([0, 1])
        history.compact()
        snap = history.snapshot()
        assert snap.floor(1) == history.floor(1) == 1
        # Still independent copies.
        history.observe_token(RecoveryToken(1, 2, 0))
        assert snap.record(1, 2) is None

    def test_size_stays_O_n_under_repeated_failures(self):
        # Section 6.9: with compaction after every failure wave, the
        # table holds at most a constant number of records per process
        # instead of one per (process, version).
        history = History(0, 4)
        for version in range(50):
            for j in range(1, 4):
                history.observe_token(RecoveryToken(j, version, version))
            history.compact()
        assert history.size() <= 2 * 4
