"""Unit tests for recovery tokens."""

import pytest

from repro.core.ftvc import FaultTolerantVectorClock as FTVC
from repro.core.tokens import RecoveryToken


def test_fields():
    token = RecoveryToken(origin=2, version=1, timestamp=7)
    assert (token.origin, token.version, token.timestamp) == (2, 1, 7)
    assert token.full_clock is None


def test_validation():
    with pytest.raises(ValueError):
        RecoveryToken(-1, 0, 0)
    with pytest.raises(ValueError):
        RecoveryToken(0, -1, 0)
    with pytest.raises(ValueError):
        RecoveryToken(0, 0, -1)


def test_token_size_is_one_entry():
    """Section 6.9: a token is one clock entry."""
    assert RecoveryToken(0, 0, 5).piggyback_entries() == 1


def test_remark1_token_carries_full_clock():
    clock = FTVC.initial(0, 5)
    token = RecoveryToken(0, 0, 5, full_clock=clock)
    assert token.piggyback_entries() == 5


def test_tokens_are_value_objects():
    assert RecoveryToken(0, 1, 2) == RecoveryToken(0, 1, 2)
    assert RecoveryToken(0, 1, 2) != RecoveryToken(0, 1, 3)


def test_repr():
    assert repr(RecoveryToken(1, 0, 3)) == "Token(P1 v0 ts3)"
