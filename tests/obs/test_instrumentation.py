"""Instrumented-run tests: live counters must agree with the post-hoc
Section 6.9 accounting (:func:`repro.analysis.metrics.measure_overhead`)."""

import pytest

from repro.analysis.metrics import measure_overhead
from repro.harness.runner import run_experiment
from repro.obs import Tracer, build_scenario
from repro.sim.trace import EventKind


@pytest.fixture(scope="module")
def instrumented_quickstart():
    spec = build_scenario("quickstart")
    tracer = Tracer()
    spec.tracer = tracer
    result = run_experiment(spec)
    return result, tracer


def test_kernel_counters(instrumented_quickstart):
    result, tracer = instrumented_quickstart
    assert tracer.counter_value("sim.events_fired") == result.sim.events_fired
    assert tracer.gauge_max("sim.queue_depth") > 0
    assert tracer.gauge_last("sim.virtual_time") == result.sim.now


def test_network_counters_match_network_bookkeeping(instrumented_quickstart):
    result, tracer = instrumented_quickstart
    net = result.network
    assert tracer.counter_value("net.sent.app") == net.sent_count["app"]
    assert tracer.counter_value("net.sent.token") == net.sent_count["token"]
    assert (
        tracer.counter_value("net.delivered.app")
        == net.delivered_count["app"]
    )
    latency = tracer.histograms["net.latency.app"]
    assert latency.count == net.delivered_count["app"]
    assert latency.min >= 0.0


def test_host_counters_match_trace(instrumented_quickstart):
    result, tracer = instrumented_quickstart
    assert tracer.counter_value("host.crashes") == result.trace.count(
        EventKind.CRASH
    )
    assert tracer.counter_value("host.restarts") == result.total_restarts


def test_protocol_counters_match_stats(instrumented_quickstart):
    result, tracer = instrumented_quickstart
    assert tracer.counter_value("dg.rollbacks") == result.total_rollbacks
    assert tracer.counter_value("dg.restarts") == result.total_restarts
    assert (
        tracer.counter_value("dg.postponed")
        == result.total("app_postponed")
    )
    assert (
        tracer.counter_value("dg.obsolete_discarded")
        == result.total("app_discarded")
    )
    assert (
        tracer.counter_value("app.replayed_transitions")
        == result.total("replayed")
    )


def test_counters_match_measure_overhead(instrumented_quickstart):
    """The ISSUE's acceptance check: live counters == post-hoc overhead."""
    result, tracer = instrumented_quickstart
    report = measure_overhead(result)
    assert (
        tracer.counter_value("dg.tokens_broadcast")
        == report.control_messages
    )
    assert tracer.counter_value("dg.piggyback_bytes") == pytest.approx(
        report.piggyback_bits_total / 8.0
    )
    assert (
        tracer.max_gauge_over("dg.history_records.")
        == report.history_records_max
    )
    assert tracer.counter_value("dg.rollbacks") == report.rollbacks
    assert tracer.counter_value("proto.checkpoints") == (
        report.checkpoints_taken
    )


def test_failure_free_run_broadcasts_no_tokens():
    """Zero control messages when failure-free -- the paper's claim, live."""
    spec = build_scenario("failure-free")
    tracer = Tracer()
    spec.tracer = tracer
    result = run_experiment(spec)
    assert tracer.counter_value("dg.tokens_broadcast") == 0
    assert tracer.counter_value("host.crashes") == 0
    assert tracer.counter_value("dg.rollbacks") == 0
    assert result.total_delivered > 0
    assert tracer.counter_value("net.sent.app") > 0


def test_partition_scenario_emits_partition_metrics():
    spec = build_scenario("partition")
    tracer = Tracer()
    spec.tracer = tracer
    run_experiment(spec)
    assert tracer.counter_value("net.partitions") == 1
    assert tracer.counter_value("net.heals") == 1
    assert tracer.counter_value("net.partition_held") > 0
    names = [e["name"] for e in tracer.events]
    assert "net.partition" in names and "net.heal" in names


def test_obs_events_include_restart_and_rollback(instrumented_quickstart):
    result, tracer = instrumented_quickstart
    names = [e["name"] for e in tracer.events]
    assert names.count("dg.restart") == result.total_restarts
    assert names.count("dg.rollback") == result.total_rollbacks
    assert names.count("host.crash") == 1
    restart = next(e for e in tracer.events if e["name"] == "dg.restart")
    assert restart["pid"] == 1
    assert restart["t"] > 0


def test_wall_time_histograms_populated(instrumented_quickstart):
    _, tracer = instrumented_quickstart
    assert tracer.histograms["run.horizon_wall_s"].count == 1
    assert tracer.histograms["run.drain_wall_s"].count == 1
    assert tracer.histograms["proto.checkpoint_wall_s"].count > 0
    assert tracer.histograms["sim.event_wall_s.deliver"].count > 0
