"""Attaching a tracer must never perturb a seeded run.

Determinism is the substrate's core invariant (same seed => byte-identical
ground-truth trace); instrumentation that nudged event order would poison
every oracle.  These tests pin the invariant from three angles.
"""

from repro.harness.runner import run_experiment
from repro.obs import NullTracer, Tracer, build_scenario


def _signature(scenario: str, tracer=None) -> str:
    spec = build_scenario(scenario)
    spec.tracer = tracer
    return run_experiment(spec).trace.signature()


def test_live_tracer_preserves_event_order_quickstart():
    assert _signature("quickstart") == _signature("quickstart", Tracer())


def test_live_tracer_preserves_event_order_under_failures():
    assert _signature("crash-storm") == _signature("crash-storm", Tracer())


def test_live_tracer_preserves_event_order_under_partition():
    assert _signature("partition") == _signature("partition", Tracer())


def test_null_tracer_preserves_event_order():
    assert _signature("quickstart") == _signature("quickstart", NullTracer())


def test_two_instrumented_runs_agree_with_each_other():
    assert _signature("quickstart", Tracer()) == _signature(
        "quickstart", Tracer()
    )


def test_instrumented_runs_reproduce_deterministic_metrics():
    """Counters, gauges and obs events (all virtual-time keyed) must be
    identical across same-seed runs; only wall-clock histograms may vary."""
    results = []
    for _ in range(2):
        spec = build_scenario("quickstart")
        tracer = Tracer()
        spec.tracer = tracer
        run_experiment(spec)
        snap = tracer.snapshot()
        results.append(
            (snap["counters"], snap["gauges"], tracer.events)
        )
    assert results[0] == results[1]
