"""Unit tests for the tracer primitives (counters/gauges/histograms/spans)."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    SERIES_CAP,
    GaugeSeries,
    Histogram,
    NullTracer,
    Tracer,
)


def test_counter_accumulates():
    t = Tracer()
    t.counter("x")
    t.counter("x")
    t.counter("x", 2.5)
    assert t.counter_value("x") == 4.5
    assert t.counter_value("missing") == 0.0
    assert t.counter_value("missing", default=-1.0) == -1.0


def test_gauge_tracks_last_and_max():
    t = Tracer()
    t.gauge("depth", 3)
    t.gauge("depth", 10)
    t.gauge("depth", 1)
    assert t.gauge_last("depth") == 1
    assert t.gauge_max("depth") == 10
    assert t.gauge_last("missing") == 0.0
    assert t.gauge_max("missing") == 0.0


def test_gauge_samples_carry_bound_clock_time():
    clock = {"t": 0.0}
    t = Tracer(now=lambda: clock["t"])
    t.gauge("g", 1)
    clock["t"] = 5.0
    t.gauge("g", 2)
    assert t.gauges["g"].samples == [(0.0, 1), (5.0, 2)]


def test_gauge_series_decimates_beyond_cap():
    series = GaugeSeries()
    total = SERIES_CAP * 4
    for i in range(total):
        series.set(float(i), float(i))
    assert len(series.samples) <= SERIES_CAP
    assert series.max == total - 1
    assert series.last == total - 1
    # Decimation keeps a uniform subsample: still spans the full range.
    assert series.samples[0][0] < total / 4
    assert series.samples[-1][0] > total * 3 / 4


def test_max_gauge_over_prefix():
    t = Tracer()
    t.gauge("h.p0", 3)
    t.gauge("h.p1", 9)
    t.gauge("other", 100)
    assert t.max_gauge_over("h.") == 9
    assert t.max_gauge_over("nope.") == 0.0


def test_histogram_buckets_and_stats():
    h = Histogram()
    for v in (1e-7, 5e-4, 0.3, 2.0):
        h.observe(v)
    assert h.count == 4
    assert h.min == 1e-7
    assert h.max == 2.0
    assert h.mean == pytest.approx((1e-7 + 5e-4 + 0.3 + 2.0) / 4)
    summary = h.summary()
    assert summary["count"] == 4
    assert sum(summary["buckets"].values()) == 4


def test_histogram_overflow_bucket():
    h = Histogram()
    h.observe(1e9)
    assert h.summary()["buckets"] == {"+inf": 1}


def test_span_observes_wall_time():
    t = Tracer()
    with t.span("work"):
        sum(range(1000))
    hist = t.histograms["work"]
    assert hist.count == 1
    assert hist.total >= 0.0


def test_events_carry_virtual_time_and_fields():
    clock = {"t": 7.5}
    t = Tracer(now=lambda: clock["t"])
    t.event("boom", pid=3, why="test")
    assert t.events == [{"t": 7.5, "name": "boom", "pid": 3, "why": "test"}]


def test_snapshot_shape():
    t = Tracer()
    t.counter("c", 2)
    t.gauge("g", 5)
    t.observe("h", 0.1)
    t.event("e")
    snap = t.snapshot()
    assert snap["counters"] == {"c": 2}
    assert snap["gauges"]["g"]["last"] == 5
    assert snap["gauges"]["g"]["max"] == 5
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["events"] == 1


def test_null_tracer_is_inert():
    n = NullTracer()
    assert not n.enabled
    n.counter("x")
    n.gauge("y", 1)
    n.observe("z", 1)
    n.event("e", a=1)
    n.bind_clock(lambda: 1.0)
    with n.span("s"):
        pass
    assert n.snapshot() == {
        "counters": {}, "gauges": {}, "histograms": {}, "events": 0
    }
    assert NULL_TRACER.enabled is False


def test_tracer_enabled_flag():
    assert Tracer().enabled is True
