"""Exporter tests: JSON-lines trace files, MetricsReport, BENCH_obs.json."""

import json

from repro.harness.reporting import render_metrics_report
from repro.harness.runner import run_experiment
from repro.obs import (
    MetricsReport,
    Tracer,
    build_scenario,
    run_bench,
    write_bench_json,
    write_jsonl,
)


def _instrumented_run():
    spec = build_scenario("quickstart")
    tracer = Tracer()
    spec.tracer = tracer
    return run_experiment(spec), tracer


def test_write_jsonl_round_trips(tmp_path):
    result, tracer = _instrumented_run()
    path = tmp_path / "trace.jsonl"
    lines = write_jsonl(
        tracer, str(path), meta={"scenario": "quickstart", "seed": 7}
    )
    records = [
        json.loads(line) for line in path.read_text().splitlines()
    ]
    assert len(records) == lines
    assert records[0]["type"] == "meta"
    assert records[0]["format"] == "repro-obs-v1"
    assert records[0]["scenario"] == "quickstart"
    by_type: dict[str, list[dict]] = {}
    for record in records[1:]:
        by_type.setdefault(record["type"], []).append(record)
    assert set(by_type) == {"event", "counter", "gauge", "histogram"}
    counters = {r["name"]: r["value"] for r in by_type["counter"]}
    assert counters["dg.tokens_broadcast"] == 3
    gauges = {r["name"] for r in by_type["gauge"]}
    assert any(name.startswith("dg.history_records.") for name in gauges)
    # Gauge series entries are (virtual time, value) pairs.
    series = next(
        r for r in by_type["gauge"] if r["name"] == "sim.virtual_time"
    )
    assert all(len(pair) == 2 for pair in series["series"])


def test_jsonl_handles_non_serialisable_event_fields(tmp_path):
    tracer = Tracer()
    tracer.event("weird", payload=object(), nested={"k": (1, 2)})
    path = tmp_path / "t.jsonl"
    write_jsonl(tracer, str(path))
    records = [json.loads(line) for line in path.read_text().splitlines()]
    event = records[1]
    assert event["name"] == "weird"
    assert isinstance(event["payload"], str)      # repr() fallback
    assert event["nested"] == {"k": [1, 2]}


def test_metrics_report_from_run_and_render():
    result, tracer = _instrumented_run()
    report = MetricsReport.from_run(result, tracer, wall_time_s=0.5)
    assert report.overhead is not None
    assert report.overhead.restarts == result.total_restarts
    assert report.extra["trace_signature"] == result.trace.signature()
    d = report.to_dict()
    assert d["wall_time_s"] == 0.5
    assert d["overhead"]["control_messages"] == 3
    json.dumps(d)                                  # fully serialisable
    rendered = render_metrics_report(report)
    assert "dg.tokens_broadcast" in rendered
    assert "history records (max)" in rendered
    assert "events/sec" in rendered


def test_run_bench_and_write_bench_json(tmp_path):
    bench = run_bench("quickstart", repeats=2)
    assert bench.repeats == 2
    assert len(bench.wall_time_s_all) == 2
    assert bench.wall_time_s == min(bench.wall_time_s_all)
    assert bench.events_per_sec > 0
    assert bench.peak_history_records > 0
    assert bench.piggyback_bytes_total > 0
    assert bench.tokens_broadcast == 3
    path = tmp_path / "BENCH_obs.json"
    written = write_bench_json(bench, str(path))
    assert written == str(path)
    data = json.loads(path.read_text())
    assert data["format"] == "repro-bench-v1"
    for key in (
        "scenario", "n", "seed", "wall_time_s", "events_fired",
        "events_per_sec", "delivered", "peak_history_records",
        "piggyback_bytes_total", "piggyback_bytes_per_message",
        "tokens_broadcast", "rollbacks", "restarts", "trace_signature",
        "overhead",
    ):
        assert key in data, key
    assert data["overhead"]["history_within_bound"] is True


def test_run_bench_repeats_are_deterministic():
    a = run_bench("quickstart", repeats=1)
    b = run_bench("quickstart", repeats=1)
    assert a.trace_signature == b.trace_signature
    assert a.piggyback_bytes_total == b.piggyback_bytes_total
    assert a.peak_history_records == b.peak_history_records


# ---------------------------------------------------------------------------
# Parallel repeats and the multi-scenario matrix
# ---------------------------------------------------------------------------
def test_parallel_repeats_match_serial():
    from repro.obs import run_bench

    serial = run_bench("quickstart", repeats=2)
    parallel = run_bench("quickstart", repeats=2, jobs=2)
    assert serial.trace_signature == parallel.trace_signature
    assert serial.events_fired == parallel.events_fired
    assert serial.peak_history_records == parallel.peak_history_records
    assert serial.overhead == parallel.overhead


def test_bench_matrix_merges_scenarios(tmp_path):
    from repro.obs import run_bench_matrix, write_bench_matrix_json

    matrix = run_bench_matrix(
        ["quickstart", "failure-free"], repeats=1, jobs=2
    )
    assert [b.scenario for b in matrix.results] == [
        "quickstart", "failure-free"
    ]
    path = write_bench_matrix_json(matrix, str(tmp_path / "matrix.json"))
    data = json.loads(open(path).read())
    assert data["format"] == "repro-bench-matrix-v1"
    assert set(data["scenarios"]) == {"quickstart", "failure-free"}
    for entry in data["scenarios"].values():
        # Each cell stays BENCH_obs.json-compatible.
        assert entry["format"] == "repro-bench-v1"
        assert entry["trace_signature"]
    assert "2 scenario(s)" in matrix.summary()


def test_bench_matrix_rejects_unknown_scenario():
    import pytest

    from repro.obs import run_bench_matrix

    with pytest.raises(KeyError):
        run_bench_matrix(["no-such-scenario"], repeats=1)
