"""Property-based safety of the Remark-2 garbage collector.

The killer property: for arbitrary crash schedules and sweep cadences, a
run with GC enabled must (a) pass every oracle check and (b) produce the
*identical application outcome* to the same run without GC -- collection
must be semantically invisible.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan

crash_events = st.lists(
    st.tuples(
        st.floats(min_value=5.0, max_value=60.0),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=3,
)


def build(seed, events, *, gc, sweep):
    plan = CrashPlan()
    for time, pid in events:
        plan.crash(time, pid, 2.0)
    plan.events.sort(key=lambda e: (e.time, e.pid))
    return ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=plan,
        seed=seed,
        horizon=80.0,
        config=ProtocolConfig(
            checkpoint_interval=6.0, flush_interval=2.0, enable_gc=gc
        ),
        stability_interval=sweep if gc else None,
    )


@given(
    seed=st.integers(min_value=0, max_value=5000),
    events=crash_events,
    sweep=st.floats(min_value=1.0, max_value=10.0),
)
@settings(max_examples=20, deadline=None)
def test_gc_is_semantically_invisible(seed, events, sweep):
    with_gc = run_experiment(build(seed, events, gc=True, sweep=sweep))
    without = run_experiment(build(seed, events, gc=False, sweep=sweep))

    verdict = check_recovery(with_gc)
    assert verdict.ok, verdict.violations

    # Identical application outcome: same final app state everywhere.
    for a, b in zip(with_gc.protocols, without.protocols):
        assert a.executor.state == b.executor.state

    # And the space actually shrank whenever there was anything to collect.
    retained = sum(
        p.storage.log.retained_stable_entries for p in with_gc.protocols
    )
    full = sum(
        p.storage.log.retained_stable_entries for p in without.protocols
    )
    assert retained <= full
