"""Property-based tests for clock data structures (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.vector import VectorClock
from repro.core.ftvc import ClockEntry, FaultTolerantVectorClock as FTVC

entries = st.tuples(
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=0, max_value=50),
)


def ftvc(n):
    return st.lists(entries, min_size=n, max_size=n).map(FTVC.of)


def vclock(n):
    return st.lists(
        st.integers(min_value=0, max_value=100), min_size=n, max_size=n
    ).map(VectorClock)


class TestFTVCAlgebra:
    @given(ftvc(4), ftvc(4))
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(ftvc(4), ftvc(4), ftvc(4))
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(ftvc(4))
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(ftvc(4), ftvc(4))
    def test_merge_is_least_upper_bound(self, a, b):
        m = a.merge(b)
        assert a <= m and b <= m

    @given(ftvc(4), st.integers(min_value=0, max_value=3))
    def test_tick_strictly_increases(self, a, pid):
        assert a < a.tick(pid)

    @given(ftvc(4), st.integers(min_value=0, max_value=3))
    def test_restart_strictly_increases(self, a, pid):
        assert a < a.restart(pid)
        assert a.restart(pid)[pid].timestamp == 0

    @given(ftvc(4), ftvc(4))
    def test_order_antisymmetric(self, a, b):
        if a <= b and b <= a:
            assert a == b

    @given(ftvc(4), ftvc(4), ftvc(4))
    def test_order_transitive(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c

    @given(ftvc(4), ftvc(4))
    def test_trichotomy_of_comparabilities(self, a, b):
        cases = [a == b, a < b, b < a, a.concurrent_with(b)]
        assert sum(cases) == 1

    @given(ftvc(4), ftvc(4), ftvc(4))
    def test_merge_monotone(self, a, b, c):
        if a <= b:
            assert a.merge(c) <= b.merge(c)


class TestClockEntryOrder:
    @given(entries, entries)
    def test_entry_order_matches_lexicographic(self, x, y):
        a, b = ClockEntry(*x), ClockEntry(*y)
        assert (a < b) == (x < y)


class TestVectorClockAlgebra:
    @given(vclock(3), vclock(3))
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(vclock(3))
    def test_merge_idempotent(self, a):
        assert a.merge(a) == a

    @given(vclock(3), st.integers(min_value=0, max_value=2))
    def test_tick_strictly_increases(self, a, pid):
        assert a < a.tick(pid)

    @given(vclock(3), vclock(3))
    def test_concurrency_symmetric(self, a, b):
        assert a.concurrent_with(b) == b.concurrent_with(a)


class TestFTVCSimulatedCausality:
    """Drive random message exchanges and check the clock condition
    (failure-free: FTVC must behave exactly like Mattern's clock)."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_clock_condition(self, sends):
        n = 4
        clocks = [FTVC.initial(i, n) for i in range(n)]
        past: list[set[int]] = [set() for _ in range(n)]  # event indices
        events: list[tuple[FTVC, set[int]]] = []

        for src, dst in sends:
            if src == dst:
                continue
            message_clock = clocks[src]
            message_past = set(past[src])
            clocks[src] = clocks[src].tick(src)
            clocks[dst] = clocks[dst].merge(message_clock).tick(dst)
            idx = len(events)
            event_past = past[dst] | message_past
            events.append((clocks[dst], event_past))
            past[dst] = event_past | {idx}

        for i, (ci, _) in enumerate(events):
            for j, (cj, past_j) in enumerate(events):
                if i == j:
                    continue
                hb = i in past_j
                assert (ci < cj) == hb
