"""Protocol-equivalence properties.

Different correct recovery protocols may take different paths, but their
outcomes must agree wherever their guarantees overlap.  Two subtleties
bound what "agree" can mean:

- a protocol that injects *control traffic on the application channels*
  (sender-based logging's acks) perturbs latency draws and hence the
  delivery schedule -- its outcome is different-but-valid, so only
  protocols with identical failure-free message schedules are compared
  state-for-state;
- after a recovery, resumed executions interleave differently between
  protocols, so under failures the comparison is about the *recovery
  decision itself* (what was restored and replayed), which is fully
  determined by the logs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols import (
    PessimisticReceiverProcess,
    ProtocolConfig,
    SmithJohnsonTygarProcess,
)
from repro.sim.failures import CrashPlan
from repro.sim.trace import EventKind


def run(protocol, seed, crashes=None):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=protocol,
        crashes=crashes,
        seed=seed,
        horizon=80.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


@given(seed=st.integers(min_value=0, max_value=3000))
@settings(max_examples=10, deadline=None)
def test_failure_free_outcomes_identical_across_protocols(seed):
    """D-G, SJT and pessimistic logging put only application messages on
    the channels, so failure-free their schedules -- and hence final app
    states -- are byte-identical."""
    reference = run(DamaniGargProcess, seed)
    ref_states = [p.executor.state for p in reference.protocols]
    for protocol in (SmithJohnsonTygarProcess, PessimisticReceiverProcess):
        other = run(protocol, seed)
        states = [p.executor.state for p in other.protocols]
        assert states == ref_states, protocol.name


@given(
    seed=st.integers(min_value=0, max_value=3000),
    crash_time=st.floats(min_value=10.0, max_value=40.0),
    pid=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=12, deadline=None)
def test_dg_and_sjt_make_the_same_restart_decision(seed, crash_time, pid):
    """Up to the crash the schedules are identical, so the stable log --
    and therefore the restored state, the replay length, and the token's
    restoration timestamp -- must agree exactly."""
    crashes = CrashPlan().crash(crash_time, pid, 2.0)
    dg = run(DamaniGargProcess, seed, crashes)
    sjt = run(SmithJohnsonTygarProcess, seed, crashes)
    assert check_recovery(dg).ok
    assert check_recovery(sjt).ok

    dg_restart = dg.trace.last(EventKind.RESTART, pid=pid)
    sjt_restart = sjt.trace.last(EventKind.RESTART, pid=pid)
    assert (dg_restart is None) == (sjt_restart is None)
    if dg_restart is None:
        return
    for field in ("failed_version", "new_version", "restored_uid",
                  "restored_ts", "replayed"):
        assert dg_restart[field] == sjt_restart[field], field


@given(seed=st.integers(min_value=0, max_value=3000))
@settings(max_examples=8, deadline=None)
def test_deliveries_up_to_first_divergence_point_match(seed):
    """Stronger schedule-identity check: the full DELIVER sequences of
    D-G and pessimistic logging coincide in a failure-free run."""
    a = run(DamaniGargProcess, seed)
    b = run(PessimisticReceiverProcess, seed)
    seq_a = [
        (e.pid, e["msg_id"], round(e.time, 9))
        for e in a.trace.events(EventKind.DELIVER)
    ]
    seq_b = [
        (e.pid, e["msg_id"], round(e.time, 9))
        for e in b.trace.events(EventKind.DELIVER)
    ]
    assert seq_a == seq_b
