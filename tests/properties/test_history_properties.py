"""Property-based tests for the history mechanism."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ftvc import FaultTolerantVectorClock as FTVC
from repro.core.history import History, RecordKind
from repro.core.tokens import RecoveryToken

N = 3

clock_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=30),
    ),
    min_size=N,
    max_size=N,
).map(FTVC.of)

token_strategy = st.builds(
    RecoveryToken,
    origin=st.integers(min_value=0, max_value=N - 1),
    version=st.integers(min_value=0, max_value=3),
    timestamp=st.integers(min_value=0, max_value=30),
)

operation = st.one_of(
    st.tuples(st.just("msg"), clock_strategy),
    st.tuples(st.just("tok"), token_strategy),
)


def apply_ops(history, ops):
    for kind, value in ops:
        if kind == "msg":
            # Only non-obsolete messages reach observe_message_clock in the
            # real protocol; mirror that contract.
            if not history.is_obsolete(value):
                history.observe_message_clock(value)
        else:
            history.observe_token(value)


@given(st.lists(operation, max_size=40))
@settings(max_examples=80)
def test_one_record_per_process_version(ops):
    history = History(0, N)
    apply_ops(history, ops)
    for j in range(N):
        versions = [r.version for r in history.records_for(j)]
        assert len(versions) == len(set(versions))


@given(st.lists(operation, max_size=40))
@settings(max_examples=80)
def test_size_bounded_by_n_times_versions(ops):
    history = History(0, N)
    apply_ops(history, ops)
    max_version = 0
    for j in range(N):
        for r in history.records_for(j):
            max_version = max(max_version, r.version)
    assert history.size() <= N * (max_version + 1)


@given(st.lists(operation, max_size=40))
@settings(max_examples=80)
def test_token_records_are_final(ops):
    history = History(0, N)
    token = RecoveryToken(1, 0, 5)
    history.observe_token(token)
    apply_ops(history, [op for op in ops if op[0] == "msg"])
    record = history.record(1, 0)
    assert record.kind is RecordKind.TOKEN
    assert record.timestamp == 5


@given(st.lists(clock_strategy, max_size=30))
@settings(max_examples=80)
def test_message_records_monotone(clocks):
    history = History(0, N)
    best: dict[tuple[int, int], int] = {}
    for clock in clocks:
        history.observe_message_clock(clock)
        for j, entry in enumerate(clock):
            key = (j, entry.version)
            best[key] = max(best.get(key, 0), entry.timestamp)
    for (j, version), timestamp in best.items():
        record = history.record(j, version)
        assert record is not None
        assert record.timestamp >= timestamp


@given(token_strategy, clock_strategy)
def test_orphan_and_survives_are_complements_for_message_records(token, clock):
    history = History(0, N)
    history.observe_message_clock(clock)
    assert history.orphaned_by(token) == (not history.survives_token(token))


@given(st.lists(operation, max_size=40), clock_strategy)
@settings(max_examples=80)
def test_snapshot_isolated_from_future_updates(ops, extra):
    history = History(0, N)
    apply_ops(history, ops)
    snap = history.snapshot()
    before = {(j, r.version, r.kind, r.timestamp)
              for j in range(N) for r in snap.records_for(j)}
    history.observe_message_clock(extra)
    history.observe_token(RecoveryToken(1, 3, 9))
    after = {(j, r.version, r.kind, r.timestamp)
             for j in range(N) for r in snap.records_for(j)}
    assert before == after
