"""Randomized end-to-end recovery properties (hypothesis).

The flagship property: for *any* workload seed, crash schedule, delivery
order, and logging/checkpoint cadence, a finished run must satisfy every
oracle check -- no surviving orphans, minimal rollback, at most one
rollback per failure, maximal recovery -- and Theorem 1 must hold on the
useful states.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import check_recovery, check_theorem1
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder

crash_events = st.lists(
    st.tuples(
        st.floats(min_value=5.0, max_value=50.0),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=1.0, max_value=4.0),
    ),
    max_size=3,
)


def build_plan(events):
    plan = CrashPlan()
    for time, pid, downtime in events:
        plan.crash(time, pid, downtime)
    plan.events.sort(key=lambda e: (e.time, e.pid))
    return plan


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    events=crash_events,
    order=st.sampled_from([DeliveryOrder.RANDOM, DeliveryOrder.FIFO]),
    flush=st.floats(min_value=1.0, max_value=6.0),
    ckpt=st.floats(min_value=4.0, max_value=15.0),
)
@settings(max_examples=25, deadline=None)
def test_recovery_is_always_correct(seed, events, order, flush, ckpt):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=build_plan(events),
        seed=seed,
        horizon=80.0,
        order=order,
        config=ProtocolConfig(checkpoint_interval=ckpt, flush_interval=flush),
    )
    result = run_experiment(spec)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    report = check_theorem1(result, max_states=250)
    assert report.ok, report.violations


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    events=crash_events,
)
@settings(max_examples=15, deadline=None)
def test_retransmission_extension_is_also_correct(seed, events):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=build_plan(events),
        seed=seed,
        horizon=80.0,
        config=ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            retransmit_on_token=True,
        ),
    )
    result = run_experiment(spec)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_identical_seeds_are_bit_identical(seed):
    def once():
        spec = ExperimentSpec(
            n=3,
            app=RandomRoutingApp(hops=30, seeds=(0,), initial_items=2),
            protocol=DamaniGargProcess,
            crashes=CrashPlan().crash(15.0, 1, 2.0),
            seed=seed,
            horizon=60.0,
        )
        return run_experiment(spec).trace.signature()

    assert once() == once()
