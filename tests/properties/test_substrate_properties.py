"""Property-based tests for the simulation substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulator
from repro.sim.network import DeliveryOrder, Network, UniformLatency
from repro.sim.rng import RandomStreams
from repro.storage.log import MessageLog


class TestKernelProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired: list[float] = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.integers(min_value=-2, max_value=2),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_priority_then_fifo_within_same_time(self, jobs):
        sim = Simulator()
        fired: list[tuple[float, int, int]] = []
        for seq, (delay, priority) in enumerate(jobs):
            sim.schedule(
                delay,
                lambda d=delay, p=priority, s=seq: fired.append((d, p, s)),
                priority=priority,
            )
        sim.run()
        assert fired == sorted(fired)


class TestNetworkProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        count=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40)
    def test_fifo_channels_never_reorder(self, seed, count):
        sim = Simulator()
        net = Network(
            sim, 2, streams=RandomStreams(seed),
            latency=UniformLatency(0.1, 5.0), order=DeliveryOrder.FIFO,
        )
        received: list[int] = []
        net.register(0, lambda m: None)
        net.register(1, lambda m: received.append(m.payload))
        for i in range(count):
            net.send(0, 1, i)
        sim.run()
        assert received == list(range(count))

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        count=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40)
    def test_random_order_loses_nothing(self, seed, count):
        sim = Simulator()
        net = Network(
            sim, 2, streams=RandomStreams(seed),
            latency=UniformLatency(0.1, 5.0), order=DeliveryOrder.RANDOM,
        )
        received: list[int] = []
        net.register(0, lambda m: None)
        net.register(1, lambda m: received.append(m.payload))
        for i in range(count):
            net.send(0, 1, i)
        sim.run()
        assert sorted(received) == list(range(count))


# A tiny operation language for the message log.
log_op = st.one_of(
    st.tuples(st.just("append"), st.integers(0, 1000)),
    st.tuples(st.just("flush"), st.none()),
    st.tuples(st.just("crash"), st.none()),
)


class TestMessageLogProperties:
    @given(st.lists(log_op, max_size=60))
    @settings(max_examples=80)
    def test_stable_prefix_is_never_lost_by_crash(self, ops):
        """Whatever was flushed survives any interleaving of appends,
        flushes and crashes, in order."""
        log = MessageLog()
        model_stable: list[int] = []
        model_volatile: list[int] = []
        for op, value in ops:
            if op == "append":
                log.append(value, 0, value)
                model_volatile.append(value)
            elif op == "flush":
                log.flush()
                model_stable.extend(model_volatile)
                model_volatile.clear()
            else:
                log.on_crash()
                model_volatile.clear()
        assert [e.payload for e in log.stable_entries()] == model_stable
        assert log.volatile_length == len(model_volatile)

    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=60)
    def test_gc_then_truncate_preserve_absolute_indexing(self, values, data):
        log = MessageLog()
        for v in values:
            log.append(v, 0, v)
        log.flush()
        gc_point = data.draw(
            st.integers(min_value=0, max_value=len(values))
        )
        log.discard_prefix(gc_point)
        keep = data.draw(
            st.integers(min_value=gc_point, max_value=len(values))
        )
        log.truncate(keep)
        survivors = log.stable_entries(gc_point)
        assert [e.payload for e in survivors] == values[gc_point:keep]
        for offset, entry in enumerate(survivors):
            assert entry.index == gc_point + offset
