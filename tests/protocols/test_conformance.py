"""Differential conformance: every protocol, same schedules, same bar.

The same seeded PipelineApp workload + crash schedule runs through every
implementation in :data:`PROTOCOL_REGISTRY`; each run must satisfy the
shared invariants (recovery verdict, no surviving orphans, useful-output
subsequence consistency, published rollback bounds).  The mutation tests
at the bottom prove the oracle has teeth.
"""

import pytest

from repro.harness import conformance
from repro.harness.conformance import (
    CONFORMANCE_SCHEDULES,
    PROTOCOL_REGISTRY,
    build_conformance_spec,
    check_conformance,
    grade_kwargs,
    reference_outputs,
    registry_name,
    rollback_bound,
    run_conformance,
)
from repro.harness.runner import run_experiment
from repro.protocols import CoordinatedProcess, StromYeminiProcess
from repro.sim.trace import EventKind


@pytest.fixture(scope="module")
def references():
    return {
        sched.name: reference_outputs(sched)
        for sched in CONFORMANCE_SCHEDULES
    }


class TestRegistry:
    def test_all_implementations_registered(self):
        assert len(PROTOCOL_REGISTRY) == 9
        names = {cls.name for cls in PROTOCOL_REGISTRY.values()}
        assert len(names) == 9   # no class registered twice

    def test_registry_name_round_trips(self):
        for name, cls in PROTOCOL_REGISTRY.items():
            assert registry_name(cls) == name

    def test_unregistered_class_rejected(self):
        with pytest.raises(KeyError):
            registry_name(object)


class TestGrading:
    def test_optimistic_protocols_promise_minimal_rollback(self):
        kwargs = grade_kwargs(PROTOCOL_REGISTRY["damani-garg"])
        assert all(kwargs.values())

    def test_domino_prone_protocols_are_graded_leniently(self):
        for cls in (StromYeminiProcess, CoordinatedProcess):
            assert not any(grade_kwargs(cls).values())

    def test_rollback_bounds(self):
        assert rollback_bound(PROTOCOL_REGISTRY["damani-garg"], 4) == 1
        assert rollback_bound(StromYeminiProcess, 4) == 16
        assert rollback_bound(PROTOCOL_REGISTRY["sender-based"], 8) == 1


@pytest.mark.parametrize(
    "schedule", CONFORMANCE_SCHEDULES, ids=lambda s: s.name
)
@pytest.mark.parametrize("protocol", sorted(PROTOCOL_REGISTRY))
def test_protocol_conforms(protocol, schedule, references):
    violations = run_conformance(
        PROTOCOL_REGISTRY[protocol],
        schedule,
        reference=references[schedule.name],
    )
    assert violations == []


def test_schedules_are_not_vacuous(references):
    """Every schedule must actually crash somebody, and the reference
    run must complete the whole pipeline."""
    for sched in CONFORMANCE_SCHEDULES:
        assert sched.crashes
        assert len(references[sched.name]) == sched.jobs
        result = run_experiment(
            build_conformance_spec(PROTOCOL_REGISTRY["damani-garg"], sched)
        )
        assert result.total_restarts >= len(sched.crashes)


class TestMutations:
    """Deliberately broken runs must be caught -- the oracle has teeth."""

    def _graded_run(self):
        sched = CONFORMANCE_SCHEDULES[0]
        cls = PROTOCOL_REGISTRY["damani-garg"]
        result = run_experiment(build_conformance_spec(cls, sched))
        return sched, cls, result

    def test_forged_novel_output_is_caught(self, references):
        sched, cls, result = self._graded_run()
        result.trace.record(
            99.0, EventKind.OUTPUT, 3, value=("done", 999, 1), uid=(3, 0, 77)
        )
        violations = check_conformance(
            result, cls, sched, references[sched.name]
        )
        assert any(v.startswith("outputs:") for v in violations)

    def test_duplicated_output_is_caught(self, references):
        sched, cls, result = self._graded_run()
        original = result.trace.events(EventKind.OUTPUT)[0]
        result.trace.record(
            99.0, EventKind.OUTPUT, original.pid,
            value=original["value"], uid=(3, 0, 78),
        )
        violations = check_conformance(
            result, cls, sched, references[sched.name]
        )
        assert any("duplicate" in v for v in violations)

    def test_broken_rollback_bound_is_caught(self, references, monkeypatch):
        sched, cls, result = self._graded_run()
        monkeypatch.setitem(
            conformance._ROLLBACK_BOUNDS, cls, lambda n: -1
        )
        violations = check_conformance(
            result, cls, sched, references[sched.name]
        )
        assert any(v.startswith("rollback-bound:") for v in violations)

    def test_reordered_outputs_are_caught(self, references):
        sched, cls, result = self._graded_run()
        reversed_reference = list(reversed(references[sched.name]))
        violations = check_conformance(result, cls, sched, reversed_reference)
        assert any(v.startswith("outputs:") for v in violations)
