"""Tests for the Strom-Yemini baseline."""

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.strom_yemini import StromYeminiProcess
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder


def run(seed=0, crashes=None, n=4, hops=50):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=hops, seeds=(0, 1), initial_items=3),
        protocol=StromYeminiProcess,
        crashes=crashes,
        seed=seed,
        horizon=110.0,
        order=DeliveryOrder.FIFO,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def grade(result):
    """S-Y promises safety but not minimality or single rollbacks."""
    return check_recovery(
        result,
        expect_minimal_rollback=False,
        expect_single_rollback_per_failure=False,
        expect_maximum_recovery=False,
    )


def test_safety_single_failure():
    for seed in range(6):
        verdict = grade(run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0)))
        assert verdict.ok, (seed, verdict.violations)


def test_safety_sequential_failures():
    for seed in range(4):
        verdict = grade(
            run(
                seed=seed,
                crashes=CrashPlan().crash(15.0, 1, 2.0).crash(40.0, 2, 2.0),
            )
        )
        assert verdict.ok, (seed, verdict.violations)


def test_rollback_creates_new_incarnation_and_announcement():
    for seed in range(10):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        if result.total_rollbacks > 0:
            # Rollback announcements: more tokens than the n-1 of the restart.
            assert result.total("tokens_sent") > result.spec.n - 1
            return
    raise AssertionError("no seed produced a rollback")


def test_can_roll_back_more_than_once_per_failure():
    """The Table 1 headline: unlike Damani-Garg, one root failure can make
    the same process roll back repeatedly (announcement cascades)."""
    seen = 0
    for seed in range(30):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        seen = max(seen, result.max_rollbacks_for_single_failure())
        if seen > 1:
            break
    assert seen > 1, "expected a multi-rollback cascade in 30 seeds"


def test_incarnation_ends_only_shrink():
    result = run(seed=2, crashes=CrashPlan().crash(15.0, 1, 2.0).crash(40.0, 1, 2.0))
    for protocol in result.protocols:
        for (pid, inc), end in protocol.iet.items():
            assert end >= -1


def test_piggyback_is_O_n():
    result = run(n=6, crashes=None)
    per_message = result.total("piggyback_entries") / max(
        1, result.total("app_sent")
    )
    assert per_message == 6.0
