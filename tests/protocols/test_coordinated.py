"""Tests for the coordinated-checkpointing baseline."""

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.coordinated import CoordinatedProcess
from repro.sim.failures import CrashPlan


def run(seed=0, crashes=None, n=4, checkpoint_interval=8.0):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=CoordinatedProcess,
        crashes=crashes,
        seed=seed,
        horizon=110.0,
        config=ProtocolConfig(checkpoint_interval=checkpoint_interval),
    )
    return run_experiment(spec)


def grade(result):
    """Coordinated checkpointing promises safety, not maximal recovery."""
    return check_recovery(
        result,
        expect_minimal_rollback=False,
        expect_maximum_recovery=False,
        expect_single_rollback_per_failure=False,
    )


def test_safety_single_failure():
    for seed in range(6):
        verdict = grade(run(seed=seed, crashes=CrashPlan().crash(22.0, 1, 2.0)))
        assert verdict.ok, (seed, verdict.violations)


def test_safety_sequential_and_concurrent():
    for crashes in (
        CrashPlan().crash(18.0, 1, 2.0).crash(45.0, 2, 2.0),
        CrashPlan().concurrent(25.0, [1, 3], 3.0),
    ):
        for seed in range(3):
            verdict = grade(run(seed=seed, crashes=crashes))
            assert verdict.ok, (seed, verdict.violations)


def test_every_process_rolls_back_on_a_failure():
    result = run(seed=1, crashes=CrashPlan().crash(22.0, 1, 2.0))
    # n-1 peers roll back (the failed one restarts).
    assert result.total_rollbacks == result.spec.n - 1


def test_rollback_is_not_minimal():
    """The Section 1 critique: work that optimistic logging would keep is
    thrown away."""
    for seed in range(10):
        result = run(seed=seed, crashes=CrashPlan().crash(22.0, 1, 2.0))
        gt = build_ground_truth(result.trace, 4)
        needless = gt.rolled_back - gt.orphans() - gt.recovery_states
        if needless:
            return
    raise AssertionError("coordinated rollback was always minimal?!")


def test_snapshots_commit_during_failure_free_run():
    result = run(seed=0)
    committed = [
        p.storage.get("committed_round", 0) for p in result.protocols
    ]
    assert min(committed) >= 5       # horizon 110 / interval 8, some slack


def test_piggyback_is_constant():
    result = run(n=8)
    per_message = result.total("piggyback_entries") / max(
        1, result.total("app_sent")
    )
    assert per_message == 2.0        # round + epoch


def test_longer_checkpoint_interval_loses_more_work():
    short = run(seed=4, crashes=CrashPlan().crash(40.0, 1, 2.0),
                checkpoint_interval=5.0)
    long = run(seed=4, crashes=CrashPlan().crash(40.0, 1, 2.0),
               checkpoint_interval=30.0)
    gt_short = build_ground_truth(short.trace, 4)
    gt_long = build_ground_truth(long.trace, 4)
    undone_short = len(gt_short.rolled_back | gt_short.lost)
    undone_long = len(gt_long.rolled_back | gt_long.lost)
    assert undone_long > undone_short


class TestConsistentCutRegressions:
    """Regressions for three subtle snapshot bugs the randomized sweeps
    found (kept deterministic here)."""

    def test_bootstrap_messages_survive_an_immediate_recovery(self):
        """Bootstrap sends predate snapshot 0; a recovery to round 0 must
        deliver them, not discard them as post-cut."""
        from repro.sim.rng import RandomStreams

        result = run(seed=4, crashes=CrashPlan().crash(1.5, 1, 2.0))
        verdict = grade(result)
        assert verdict.ok, verdict.violations
        # The system keeps computing after the early crash.
        assert result.total_delivered > 10

    def test_post_cut_message_forces_the_receiver_into_the_round(self):
        """Chandy-Lamport rule: a message tagged with a round we have not
        joined yet snapshots us before delivery, keeping the cut
        consistent.  Heavily overlapping failures exercise it."""
        from repro.sim.rng import RandomStreams

        crashes = CrashPlan.poisson(
            n=4, horizon=60.0, rate=0.02, downtime=2.0,
            streams=RandomStreams(18),
        )
        result = run(seed=11, crashes=crashes)
        verdict = grade(result)
        assert verdict.ok, verdict.violations

    def test_stale_commit_from_previous_epoch_is_ignored(self):
        """A COMMIT that raced a recovery must not resurrect a committed
        round whose checkpoints the recovery discarded."""
        from repro.sim.rng import RandomStreams

        crashes = CrashPlan.poisson(
            n=4, horizon=60.0, rate=0.02, downtime=2.0,
            streams=RandomStreams(20),
        )
        result = run(seed=13, crashes=crashes)
        verdict = grade(result)
        assert verdict.ok, verdict.violations
