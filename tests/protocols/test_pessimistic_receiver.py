"""Tests for pessimistic receiver-based logging."""

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.sim.failures import CrashPlan


def run(seed=0, crashes=None, n=4):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=PessimisticReceiverProcess,
        crashes=crashes,
        seed=seed,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=10.0),
    )
    return run_experiment(spec)


def test_nothing_is_ever_lost():
    for seed in range(5):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        gt = build_ground_truth(result.trace, 4)
        assert gt.lost == set()
        assert gt.orphans() == set()


def test_no_rollbacks_ever():
    result = run(crashes=CrashPlan().crash(20.0, 1, 2.0).crash(40.0, 2, 2.0))
    assert result.total_rollbacks == 0
    assert result.total_restarts == 2


def test_oracle_passes():
    for seed in range(5):
        verdict = check_recovery(
            run(seed=seed, crashes=CrashPlan().concurrent(25.0, [0, 2], 3.0))
        )
        assert verdict.ok, verdict.violations


def test_sync_write_per_message_is_the_cost():
    result = run()
    for protocol in result.protocols:
        assert protocol.stats.sync_log_writes == protocol.stats.app_delivered


def test_no_clock_piggyback():
    result = run()
    # One dedup scalar, no vector clock.
    assert result.protocols[0].piggyback_entry_count() == 1
    assert (
        result.total("piggyback_entries") == result.total("app_sent")
    )


def test_no_control_messages():
    result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
    assert result.total("control_sent") == 0
    assert result.total("tokens_sent") == 0
