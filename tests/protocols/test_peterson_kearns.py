"""Tests for the Peterson-Kearns baseline."""

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.peterson_kearns import PetersonKearnsProcess
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder


def run(seed=0, crashes=None, n=4):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=PetersonKearnsProcess,
        crashes=crashes,
        seed=seed,
        horizon=110.0,
        order=DeliveryOrder.FIFO,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_single_failure_recovers_correctly():
    for seed in range(6):
        verdict = check_recovery(
            run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        )
        assert verdict.ok, (seed, verdict.violations)


def test_sequential_failures_recover_correctly():
    """Non-overlapping recoveries are inside the contract."""
    for seed in range(4):
        verdict = check_recovery(
            run(
                seed=seed,
                crashes=CrashPlan().crash(15.0, 1, 2.0).crash(50.0, 2, 2.0),
            )
        )
        assert verdict.ok, (seed, verdict.violations)


def test_at_most_one_rollback_per_failure():
    for seed in range(6):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        assert result.max_rollbacks_for_single_failure() <= 1


def test_recovery_blocks_until_all_acks():
    result = run(seed=1, crashes=CrashPlan().crash(20.0, 1, 2.0))
    failed = result.protocols[1]
    assert failed.stats.blocked_time > 0
    assert PetersonKearnsProcess.asynchronous_recovery is False


def test_epoch_advances_on_every_failure():
    result = run(
        seed=2, crashes=CrashPlan().crash(15.0, 1, 2.0).crash(50.0, 2, 2.0)
    )
    for protocol in result.protocols:
        assert protocol.epoch == 2


def test_piggyback_is_n_plus_epoch():
    result = run(n=5, crashes=None)
    per_message = result.total("piggyback_entries") / max(
        1, result.total("app_sent")
    )
    assert per_message == 6.0        # n timestamps + 1 epoch scalar
