"""Tests for the Sistla-Welch baseline."""

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.sistla_welch import SistlaWelchProcess
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder


def run(seed=0, crashes=None, n=4):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=SistlaWelchProcess,
        crashes=crashes,
        seed=seed,
        horizon=110.0,
        order=DeliveryOrder.FIFO,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_single_failure_recovers_correctly():
    for seed in range(6):
        verdict = check_recovery(
            run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        )
        assert verdict.ok, (seed, verdict.violations)


def test_sequential_failures_recover_correctly():
    for seed in range(4):
        verdict = check_recovery(
            run(
                seed=seed,
                crashes=CrashPlan().crash(15.0, 1, 2.0).crash(55.0, 2, 2.0),
            )
        )
        assert verdict.ok, (seed, verdict.violations)


def test_at_most_one_rollback_per_failure():
    for seed in range(6):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        assert result.max_rollbacks_for_single_failure() <= 1


def test_everyone_pauses_during_the_session():
    """The synchronous cost: all n processes block during recovery."""
    result = run(seed=1, crashes=CrashPlan().crash(20.0, 1, 2.0))
    blocked = [p.stats.blocked_time for p in result.protocols]
    assert all(b > 0 for b in blocked)
    assert SistlaWelchProcess.asynchronous_recovery is False


def test_session_costs_n_rounds_of_control_traffic():
    quiet = run(seed=1)
    noisy = run(seed=1, crashes=CrashPlan().crash(20.0, 1, 2.0))
    extra = noisy.total("control_sent") - quiet.total("control_sent")
    n = 4
    # begin-(n-1) handled as token; rounds: n * (n-1) requests + replies,
    # plus the commit broadcast.
    assert extra >= n * (n - 1)


def test_commits_survive_later_crashes():
    result = run(
        seed=2, crashes=CrashPlan().crash(15.0, 1, 2.0).crash(55.0, 1, 2.0)
    )
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    assert result.protocols[1].epoch == 2
