"""Tests for the causal-logging baseline."""

import pytest

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.causal_logging import CausalLoggingProcess
from repro.sim.failures import CrashPlan
from repro.sim.trace import EventKind


def run(seed=0, crashes=None, n=4, horizon=100.0):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=CausalLoggingProcess,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_failure_free_progress_with_zero_sync_writes():
    result = run()
    assert result.total_delivered > 50
    assert result.total("sync_log_writes") == 0
    assert result.total("control_sent") == 0


class TestOrphanFreedom:
    """The headline property: 'nonblocking and orphan-free' (paper §2)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_single_failure_no_orphans_no_rollbacks(self, seed):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        gt = build_ground_truth(result.trace, 4)
        assert gt.orphans() == set()
        assert result.total_rollbacks == 0
        verdict = check_recovery(result)
        assert verdict.ok, verdict.violations

    @pytest.mark.parametrize("seed", range(4))
    def test_sequential_failures(self, seed):
        result = run(
            seed=seed,
            crashes=CrashPlan().crash(15.0, 1, 2.0).crash(40.0, 2, 2.0),
        )
        gt = build_ground_truth(result.trace, 4)
        assert gt.orphans() == set()
        assert check_recovery(result).ok

    @pytest.mark.parametrize("seed", range(4))
    def test_overlapping_failures(self, seed):
        """Overlapping (but not simultaneous) recoveries are in contract."""
        result = run(
            seed=seed,
            crashes=CrashPlan().crash(25.0, 0, 3.0).crash(26.5, 2, 3.0),
        )
        gt = build_ground_truth(result.trace, 4)
        assert gt.orphans() == set()
        assert check_recovery(result).ok


class TestLostWorkIsRecreated:
    def test_determinants_recreate_volatile_receives(self):
        """States that optimistic logging would lose come back: the lost
        set under causal logging is (usually) empty."""
        total_lost = 0
        for seed in range(6):
            result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
            gt = build_ground_truth(result.trace, 4)
            total_lost += len(gt.lost)
        # Only receives whose determinants were still exclusively in the
        # failed process's volatile memory can be lost; across 6 runs this
        # tail is tiny compared to the optimistic protocol's losses.
        assert total_lost <= 3

    def test_recovery_collects_from_peers(self):
        result = run(seed=1, crashes=CrashPlan().crash(20.0, 1, 2.0))
        # RETRIEVE-style control traffic: request broadcast + responses.
        assert result.total("control_sent") >= 2 * (4 - 1)
        assert CausalLoggingProcess.asynchronous_recovery is False


class TestStaleIncarnationFilter:
    def test_announce_cutoffs_are_installed_everywhere(self):
        result = run(seed=2, crashes=CrashPlan().crash(20.0, 1, 2.0))
        for protocol in result.protocols:
            assert (1, 0) in protocol._ssn_cutoffs

    def test_stale_in_flight_messages_never_infect(self):
        """Scan seeds: wherever the filter machinery engaged (discard or
        hold), orphan-freedom still holds; across the scan the machinery
        fires at least once."""
        engaged = 0
        for seed in range(12):
            result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
            gt = build_ground_truth(result.trace, 4)
            assert gt.orphans() == set()
            engaged += result.total("app_discarded")
            engaged += result.total("app_postponed")
            engaged += result.total("duplicates_discarded")
        # Retransmission duplicates alone guarantee engagement; discards of
        # stale sends require a lost sender state with an in-flight message,
        # which these seeds may or may not produce.
        assert engaged > 0


class TestOverhead:
    def test_piggyback_carries_determinants(self):
        result = run(seed=1)
        per_message = result.total("piggyback_entries") / max(
            1, result.total("app_sent")
        )
        # Much heavier than the O(n)=4 clock of Damani-Garg: that is the
        # causal-logging trade.
        assert per_message > 4.0

    def test_pruning_bounds_the_piggyback(self):
        """Watermarks prune determinants: the piggyback tracks unstable
        receives, not all history."""
        result = run(seed=1, horizon=150.0)
        for protocol in result.protocols:
            # After a long run, determinant tables stay far below the
            # total number of receives in the system.
            assert len(protocol._determinants) < result.total_delivered / 2
