"""The pre-RuntimeEnv attribute paths still work, but warn.

Removal is scheduled for the next major version; until then downstream
code using ``protocol.host`` / ``protocol.sim`` / ``host.attach`` keeps
working and gets a :class:`DeprecationWarning` naming the replacement.
"""

import warnings

import pytest

from repro.core.recovery import DamaniGargProcess
from repro.harness.scenarios import ScriptedApp
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams


@pytest.fixture
def host():
    sim = Simulator()
    network = Network(sim, 1, streams=RandomStreams(0))
    return ProcessHost(0, sim, network)


@pytest.fixture
def protocol(host):
    return DamaniGargProcess(host.runtime_env(), ScriptedApp())


def test_protocol_host_warns_but_works(protocol, host):
    with pytest.warns(DeprecationWarning, match="protocol.env"):
        assert protocol.host is host


def test_protocol_sim_warns_but_works(protocol, host):
    with pytest.warns(DeprecationWarning, match="protocol.env"):
        assert protocol.sim is host.sim


def test_host_attach_warns_but_works(host):
    sim = Simulator()
    network = Network(sim, 1, streams=RandomStreams(0))
    other = ProcessHost(0, sim, network)
    env = other.runtime_env()
    protocol = DamaniGargProcess.__new__(DamaniGargProcess)
    with pytest.warns(DeprecationWarning, match="RuntimeEnv"):
        other.attach(protocol)
    assert other.protocol is protocol


def test_legacy_host_construction_still_works(host):
    # Passing the ProcessHost itself (the pre-env constructor signature)
    # must keep working -- it routes through host.runtime_env().
    with warnings.catch_warnings():
        warnings.simplefilter("error")   # and without warning: supported
        protocol = DamaniGargProcess(host, ScriptedApp())
    assert protocol.env is host.runtime_env()
    assert protocol.pid == 0


def test_env_path_does_not_warn(protocol):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert protocol.env.alive
        assert protocol.env.now == 0.0
        protocol.env.schedule_after(1.0, lambda: None)
