"""Tests for Johnson-Zwaenepoel sender-based logging."""

from repro.analysis import check_recovery
from repro.analysis.causality import build_ground_truth
from repro.apps import RandomRoutingApp
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.sender_based import SenderBasedProcess
from repro.sim.failures import CrashPlan


def run(seed=0, crashes=None, n=4):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=SenderBasedProcess,
        crashes=crashes,
        seed=seed,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=10.0),
    )
    return run_experiment(spec)


def test_failure_free_runs_make_progress():
    result = run()
    assert result.total_delivered > 50
    assert result.total_rollbacks == 0


def test_orphans_are_impossible():
    """The partial-blocking rule: nobody ever depends on an unlogged state."""
    for seed in range(6):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        gt = build_ground_truth(result.trace, 4)
        assert gt.orphans() == set(), f"seed {seed}"
        assert result.total_rollbacks == 0


def test_oracle_passes_with_concurrent_failures():
    for seed in range(5):
        verdict = check_recovery(
            run(seed=seed, crashes=CrashPlan().concurrent(25.0, [0, 2], 3.0))
        )
        assert verdict.ok, (seed, verdict.violations)


def test_blocking_time_is_nonzero():
    """The failure-free cost: sends wait for RSN acknowledgements."""
    result = run()
    assert sum(s.blocked_time for s in result.stats) > 0


def test_recovery_needs_other_processes():
    """Not asynchronous: the restarted process exchanges control traffic."""
    quiet = run(seed=3)
    noisy = run(seed=3, crashes=CrashPlan().crash(20.0, 1, 2.0))
    # RETRIEVE + responses beyond the ack traffic of normal operation.
    assert noisy.total("control_sent") > quiet.total("control_sent")
    assert SenderBasedProcess.asynchronous_recovery is False


def test_piggyback_is_constant():
    result = run(n=8)
    assert result.protocols[0].piggyback_entry_count() == 1
    assert result.total("piggyback_entries") == result.total("app_sent")


def test_retrieved_replay_restores_states():
    for seed in range(8):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        if result.total("replayed") > 0:
            verdict = check_recovery(result)
            assert verdict.ok, verdict.violations
            return
    # Replay requires acked messages past the checkpoint; with these
    # parameters at least one seed exercises it.
    raise AssertionError("no seed exercised retrieve-replay")
