"""Tests for the Smith-Johnson-Tygar baseline."""

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.protocols.smith_johnson_tygar import SmithJohnsonTygarProcess
from repro.sim.failures import CrashPlan
from repro.sim.trace import EventKind


def run(protocol=SmithJohnsonTygarProcess, seed=0, crashes=None, n=4):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=protocol,
        crashes=crashes,
        seed=seed,
        horizon=110.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_recovers_like_damani_garg():
    for seed in range(6):
        verdict = check_recovery(
            run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        )
        assert verdict.ok, (seed, verdict.violations)


def test_concurrent_and_repeated_failures():
    for crashes in (
        CrashPlan().concurrent(25.0, [0, 2], 3.0),
        CrashPlan().crash(15.0, 1, 2.0).crash(35.0, 1, 2.0),
    ):
        verdict = check_recovery(run(seed=3, crashes=crashes))
        assert verdict.ok, verdict.violations


def test_at_most_one_rollback_per_failure():
    for seed in range(6):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        assert result.max_rollbacks_for_single_failure() <= 1


def test_piggyback_is_quadratic_vs_damani_garg_linear():
    """The paper's central comparison: O(n²f) vs O(n) timestamps."""
    n = 6
    sjt = run(SmithJohnsonTygarProcess, n=n)
    dg = run(DamaniGargProcess, n=n)
    per_sjt = sjt.total("piggyback_entries") / max(1, sjt.total("app_sent"))
    per_dg = dg.total("piggyback_entries") / max(1, dg.total("app_sent"))
    assert per_dg == float(n)
    assert per_sjt >= n + n * n       # clock + matrix (+ tokens when failing)


def test_failure_knowledge_travels_on_messages():
    """With SJT, a process may learn about a failure (and roll back) from
    an ordinary application message before the token broadcast arrives."""
    for seed in range(20):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        for pid in range(4):
            rollbacks = result.trace.events(EventKind.ROLLBACK, pid=pid)
            token_arrivals = result.trace.events(
                EventKind.TOKEN_DELIVER, pid=pid
            )
            if not rollbacks:
                continue
            first_token = token_arrivals[0].seq if token_arrivals else None
            if first_token is None or rollbacks[0].seq < first_token:
                return   # rolled back before any direct token arrived
    # Not guaranteed for every seed; 20 seeds reliably produce one.
    raise AssertionError("message-borne failure knowledge never observed")


def test_no_postponement_needed():
    """Deliverability knowledge rides on the message itself, so SJT never
    holds a message waiting for an earlier token."""
    total = 0
    for seed in range(6):
        result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        total += result.total("app_postponed")
    assert total == 0
