"""Tests for the online trace-discipline monitor."""

import pytest

from repro.analysis.monitor import TraceDisciplineError, TraceMonitor
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan
from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import ProcessHost
from repro.sim.trace import EventKind, SimTrace


def test_every_builtin_protocol_passes_the_monitor():
    """The real stack must satisfy the trace contract end to end."""
    from repro.protocols import (
        PessimisticReceiverProcess,
        SenderBasedProcess,
        StromYeminiProcess,
    )
    from repro.sim.network import DeliveryOrder

    for protocol in (
        DamaniGargProcess,
        StromYeminiProcess,
        SenderBasedProcess,
        PessimisticReceiverProcess,
    ):
        sim = Simulator()
        trace = SimTrace()
        monitor = TraceMonitor(3).install(trace)
        order = (
            DeliveryOrder.FIFO if protocol.requires_fifo
            else DeliveryOrder.RANDOM
        )
        from repro.sim.rng import RandomStreams

        network = Network(sim, 3, streams=RandomStreams(5), trace=trace,
                          order=order)
        hosts = [ProcessHost(pid, sim, network, trace) for pid in range(3)]
        config = ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5)
        protocols = [protocol(h, RandomRoutingApp(hops=30, seeds=(0,)),
                              config) for h in hosts]
        from repro.sim.failures import FailureInjector

        FailureInjector(sim, hosts, network).install(
            CrashPlan().crash(15.0, 1, 2.0)
        )
        for host in hosts:
            host.start()
        sim.run(until=60.0)
        for p in protocols:
            p.halt_periodic_tasks()
        sim.drain()
        monitor.finish()
        assert monitor.events_checked > 10


def record_deliver(trace, pid, uid, prev, replay=False):
    trace.record(0.0, EventKind.DELIVER, pid, msg_id=1, uid=uid,
                 prev_uid=prev, replay=replay)


class TestViolationsAreCaught:
    def make(self, n=2):
        trace = SimTrace()
        monitor = TraceMonitor(n).install(trace)
        return trace, monitor

    def test_broken_chain_prev(self):
        trace, _ = self.make()
        with pytest.raises(TraceDisciplineError, match="chain tip"):
            record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 9, 9))

    def test_double_minting(self):
        trace, _ = self.make()
        record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 0, 0))
        with pytest.raises(TraceDisciplineError, match="minted twice"):
            record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 0, 1))

    def test_replay_of_never_created_state(self):
        trace, _ = self.make()
        with pytest.raises(TraceDisciplineError, match="never-created"):
            record_deliver(trace, 0, uid=(0, 0, 7), prev=(0, 0, 0),
                           replay=True)

    def test_restore_to_unknown_state(self):
        trace, _ = self.make()
        with pytest.raises(TraceDisciplineError, match="not on the chain"):
            trace.record(0.0, EventKind.RESTORE, 0, ckpt_uid=(0, 3, 3),
                         reason="restart")

    def test_recovery_from_wrong_tip(self):
        trace, _ = self.make()
        record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 0, 0))
        with pytest.raises(TraceDisciplineError, match="chain tip"):
            trace.record(0.0, EventKind.RESTART, 0,
                         restored_uid=(0, 0, 0), new_uid=(0, 1, 0))

    def test_send_from_unknown_state(self):
        trace, _ = self.make()
        with pytest.raises(TraceDisciplineError, match="unknown state"):
            trace.record(0.0, EventKind.SEND, 0, msg_id=1, dst=1,
                         uid=(0, 5, 5))

    def test_dangling_restore_caught_at_finish(self):
        trace, monitor = self.make()
        record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 0, 0))
        trace.record(0.0, EventKind.RESTORE, 0, ckpt_uid=(0, 0, 0),
                     reason="restart")
        with pytest.raises(TraceDisciplineError, match="without a matching"):
            monitor.finish()

    def test_valid_recovery_sequence_passes(self):
        trace, monitor = self.make()
        record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 0, 0))
        trace.record(0.0, EventKind.RESTORE, 0, ckpt_uid=(0, 0, 0),
                     reason="restart")
        record_deliver(trace, 0, uid=(0, 0, 1), prev=(0, 0, 0), replay=True)
        trace.record(0.0, EventKind.RESTART, 0,
                     restored_uid=(0, 0, 1), new_uid=(0, 1, 0))
        monitor.finish()
        assert monitor.events_checked == 4
