"""Tests for the DOT exporter."""

import pytest

from repro.analysis.causality import build_ground_truth
from repro.analysis.visualize import result_to_dot, to_dot
from repro.harness.scenarios import figure1


def test_figure1_dot_structure():
    result = figure1()
    dot = result_to_dot(result, title="figure 1")
    assert dot.startswith("digraph recovery {")
    assert dot.rstrip().endswith("}")
    assert 'label="figure 1"' in dot
    for pid in range(3):
        assert f"subgraph cluster_p{pid}" in dot


def test_lost_and_orphan_coloring():
    result = figure1()
    gt = build_ground_truth(result.trace, 3)
    dot = to_dot(gt)
    (lost_uid,) = gt.lost
    (orphan_uid,) = gt.orphans()
    lost_line = next(
        line for line in dot.splitlines()
        if f"s_{lost_uid[0]}_{lost_uid[1]}_{lost_uid[2]} [" in line
    )
    assert "red" in lost_line and "dashed" in lost_line
    orphan_line = next(
        line for line in dot.splitlines()
        if f"s_{orphan_uid[0]}_{orphan_uid[1]}_{orphan_uid[2]} [" in line
    )
    assert "orange" in orphan_line


def test_edges_present_and_infection_paths_red():
    result = figure1()
    gt = build_ground_truth(result.trace, 3)
    dot = to_dot(gt)
    arrow_lines = [line for line in dot.splitlines() if "->" in line]
    assert len(arrow_lines) == len(gt.local_edges) + len(gt.message_edges)
    # The lost state s12 sent m3: that edge must be red.
    (lost_uid,) = gt.lost
    infected = [
        line for line in arrow_lines
        if line.strip().startswith(
            f"s_{lost_uid[0]}_{lost_uid[1]}_{lost_uid[2]} ->"
        )
    ]
    assert infected and all("red" in line for line in infected)


def test_size_cap():
    result = figure1()
    gt = build_ground_truth(result.trace, 3)
    with pytest.raises(ValueError, match="max_states"):
        to_dot(gt, max_states=2)


def test_dot_is_deterministic():
    a = result_to_dot(figure1())
    b = result_to_dot(figure1())
    assert a == b
