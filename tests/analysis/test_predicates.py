"""Tests for FTVC-based weak conjunctive predicate detection."""

import pytest

from repro.analysis.predicates import detect_weak_conjunctive
from repro.apps import BankApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def run(app=None, crashes=None, seed=0, record=True):
    spec = ExperimentSpec(
        n=4,
        app=app or BankApp(seeds=(0, 1)),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=80.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
        record_states=record,
    )
    return run_experiment(spec)


def test_requires_recorded_states():
    result = run(record=False)
    with pytest.raises(ValueError, match="record_states"):
        detect_weak_conjunctive(result, {0: lambda s: True})


def test_requires_a_predicate():
    result = run()
    with pytest.raises(ValueError):
        detect_weak_conjunctive(result, {})


def test_trivial_predicate_finds_a_cut():
    result = run()
    witness = detect_weak_conjunctive(
        result, {0: lambda s: True, 1: lambda s: True}
    )
    assert witness is not None
    assert len(witness.states) == 2
    assert witness.states[0][0] == 0 and witness.states[1][0] == 1


def test_witness_states_are_pairwise_concurrent():
    result = run(seed=3)
    witness = detect_weak_conjunctive(
        result,
        {0: lambda s: s.balance != 0, 1: lambda s: True, 2: lambda s: True},
    )
    assert witness is not None
    for i in range(len(witness.clocks)):
        for j in range(len(witness.clocks)):
            if i != j:
                assert not (witness.clocks[i] < witness.clocks[j])


def test_impossible_predicate_returns_none():
    result = run()
    witness = detect_weak_conjunctive(
        result, {0: lambda s: s.balance < -10**9}
    )
    assert witness is None


def test_detection_works_across_failures():
    """The paper's claim: FTVC keeps predicate detection sound despite
    failures and rollbacks -- the witness must consist of useful states."""
    from repro.analysis.causality import build_ground_truth

    for seed in range(5):
        result = run(seed=seed, crashes=CrashPlan().crash(15.0, 1, 2.0))
        witness = detect_weak_conjunctive(
            result,
            {0: lambda s: s.received_transfers > 0,
             1: lambda s: s.received_transfers > 0},
        )
        if witness is None:
            continue
        gt = build_ground_truth(result.trace, 4)
        useful = gt.useful()
        for uid in witness.states:
            assert uid in useful
        return
    pytest.fail("no seed produced a witness")


def test_values_match_predicates():
    result = run(seed=2)
    threshold = 1200
    witness = detect_weak_conjunctive(
        result,
        {0: lambda s: s.balance < threshold, 1: lambda s: s.balance < threshold},
    )
    if witness is not None:
        assert all(value.balance < threshold for value in witness.values)
