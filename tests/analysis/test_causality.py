"""Unit tests for ground-truth reconstruction."""

import pytest

from repro.analysis.causality import GroundTruth, build_ground_truth
from repro.sim.trace import EventKind, SimTrace


def uid(pid, inc, serial):
    return (pid, inc, serial)


class TraceBuilder:
    """Fluent helper for composing synthetic traces."""

    def __init__(self):
        self.trace = SimTrace()
        self.t = 0.0

    def _next(self):
        self.t += 1.0
        return self.t

    def send(self, pid, msg_id, dst, sender_uid):
        self.trace.record(
            self._next(), EventKind.SEND, pid,
            msg_id=msg_id, dst=dst, uid=sender_uid,
        )
        return self

    def deliver(self, pid, msg_id, new_uid, prev_uid, replay=False):
        self.trace.record(
            self._next(), EventKind.DELIVER, pid,
            msg_id=msg_id, uid=new_uid, prev_uid=prev_uid, replay=replay,
        )
        return self

    def restore(self, pid, ckpt_uid, reason):
        self.trace.record(
            self._next(), EventKind.RESTORE, pid,
            ckpt_uid=ckpt_uid, reason=reason,
        )
        return self

    def restart(self, pid, restored_uid, new_uid):
        self.trace.record(
            self._next(), EventKind.RESTART, pid,
            restored_uid=restored_uid, new_uid=new_uid,
        )
        return self

    def rollback(self, pid, restored_uid, new_uid):
        self.trace.record(
            self._next(), EventKind.ROLLBACK, pid,
            restored_uid=restored_uid, new_uid=new_uid,
        )
        return self

    def discard(self, pid, msg_id, reason="obsolete"):
        self.trace.record(
            self._next(), EventKind.DISCARD, pid,
            msg_id=msg_id, reason=reason,
        )
        return self

    def build(self, n) -> GroundTruth:
        return build_ground_truth(self.trace, n)


def test_initial_states_present():
    gt = TraceBuilder().build(3)
    assert gt.states == {uid(0, 0, 0), uid(1, 0, 0), uid(2, 0, 0)}
    assert gt.lost == set() and gt.rolled_back == set()


def test_message_edge_connects_sender_to_delivery():
    gt = (
        TraceBuilder()
        .send(0, msg_id=1, dst=1, sender_uid=uid(0, 0, 0))
        .deliver(1, msg_id=1, new_uid=uid(1, 0, 1), prev_uid=uid(1, 0, 0))
        .build(2)
    )
    assert (uid(0, 0, 0), uid(1, 0, 1)) in gt.message_edges
    assert (uid(1, 0, 0), uid(1, 0, 1)) in gt.local_edges
    assert gt.happens_before(uid(0, 0, 0), uid(1, 0, 1))
    assert not gt.happens_before(uid(1, 0, 1), uid(0, 0, 0))


def test_restart_marks_unreplayed_states_lost():
    gt = (
        TraceBuilder()
        .send(0, 1, 1, uid(0, 0, 0))
        .send(0, 2, 1, uid(0, 0, 0))
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0))
        .deliver(1, 2, uid(1, 0, 2), uid(1, 0, 1))
        # crash: checkpoint is the initial state; only msg 1 was logged
        .restore(1, uid(1, 0, 0), reason="restart")
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0), replay=True)
        .restart(1, restored_uid=uid(1, 0, 1), new_uid=uid(1, 1, 0))
        .build(2)
    )
    assert gt.lost == {uid(1, 0, 2)}
    assert uid(1, 0, 1) in gt.surviving_states      # replay rescued it
    assert uid(1, 1, 0) in gt.surviving_states
    assert uid(1, 1, 0) in gt.recovery_states


def test_orphans_are_cross_process_dependents_of_lost():
    gt = (
        TraceBuilder()
        .send(0, 1, 1, uid(0, 0, 0))
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0))
        # the lost state sends to P2 before the failure
        .send(1, 2, 2, uid(1, 0, 1))
        .deliver(2, 2, uid(2, 0, 1), uid(2, 0, 0))
        .restore(1, uid(1, 0, 0), reason="restart")
        .restart(1, restored_uid=uid(1, 0, 0), new_uid=uid(1, 1, 0))
        .build(3)
    )
    assert gt.lost == {uid(1, 0, 1)}
    assert gt.orphans() == {uid(2, 0, 1)}


def test_rollback_marks_states_rolled_back_not_lost():
    gt = (
        TraceBuilder()
        .send(0, 1, 1, uid(0, 0, 0))
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0))
        .restore(1, uid(1, 0, 0), reason="rollback")
        .rollback(1, restored_uid=uid(1, 0, 0), new_uid=uid(1, 0, 2))
        .build(2)
    )
    assert gt.rolled_back == {uid(1, 0, 1)}
    assert gt.lost == set()
    assert uid(1, 0, 2) in gt.recovery_states


def test_superseded_recovery_state_classified_separately():
    gt = (
        TraceBuilder()
        .send(0, 1, 1, uid(0, 0, 0))
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0))
        .restore(1, uid(1, 0, 0), reason="rollback")
        .rollback(1, restored_uid=uid(1, 0, 0), new_uid=uid(1, 0, 2))
        # a second rollback (other failure) pops the recovery state
        .restore(1, uid(1, 0, 0), reason="rollback")
        .rollback(1, restored_uid=uid(1, 0, 0), new_uid=uid(1, 0, 3))
        .build(2)
    )
    assert gt.superseded == {uid(1, 0, 2)}
    assert gt.rolled_back == {uid(1, 0, 1)}


def test_restore_to_unknown_state_raises():
    builder = TraceBuilder().restore(0, uid(0, 9, 9), reason="restart")
    with pytest.raises(ValueError):
        builder.build(1)


def test_obsolete_discards_tracked():
    gt = (
        TraceBuilder()
        .send(0, 5, 1, uid(0, 0, 0))
        .discard(1, 5, reason="obsolete")
        .discard(1, 6, reason="duplicate")
        .build(2)
    )
    assert gt.obsolete_discards == {5}


def test_reachability_is_transitive():
    gt = (
        TraceBuilder()
        .send(0, 1, 1, uid(0, 0, 0))
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0))
        .send(1, 2, 2, uid(1, 0, 1))
        .deliver(2, 2, uid(2, 0, 1), uid(2, 0, 0))
        .build(3)
    )
    assert gt.happens_before(uid(0, 0, 0), uid(2, 0, 1))


def test_useful_excludes_lost_orphans_superseded():
    gt = (
        TraceBuilder()
        .send(0, 1, 1, uid(0, 0, 0))
        .deliver(1, 1, uid(1, 0, 1), uid(1, 0, 0))
        .send(1, 2, 2, uid(1, 0, 1))
        .deliver(2, 2, uid(2, 0, 1), uid(2, 0, 0))
        .restore(1, uid(1, 0, 0), reason="restart")
        .restart(1, restored_uid=uid(1, 0, 0), new_uid=uid(1, 1, 0))
        .build(3)
    )
    useful = gt.useful()
    assert uid(1, 0, 1) not in useful          # lost
    assert uid(2, 0, 1) not in useful          # orphan
    assert uid(0, 0, 0) in useful
    assert uid(1, 1, 0) in useful
