"""Tests for the maximum-recoverable-state computation."""

from repro.analysis.causality import build_ground_truth
from repro.analysis.recoverability import (
    maximum_recoverable_cut,
    recovery_line,
)
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def run(seed=0):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(20.0, 1, 2.0),
        seed=seed,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_cut_equals_states_minus_lost_minus_orphans():
    for seed in (0, 3, 7):
        result = run(seed)
        gt = build_ground_truth(result.trace, 4)
        cut = maximum_recoverable_cut(gt)
        assert cut == gt.states - gt.lost - gt.orphans()


def test_cut_contains_no_dependent_of_lost():
    result = run(5)
    gt = build_ground_truth(result.trace, 4)
    cut = maximum_recoverable_cut(gt)
    reachable = gt.reachable_from(gt.lost)
    assert cut.isdisjoint(gt.lost)
    assert cut.isdisjoint(reachable - gt.lost) or not (cut & reachable)


def test_protocol_achieves_the_maximum_cut():
    """The headline claim: the surviving computation covers the entire
    maximum recoverable cut (minus nothing)."""
    for seed in (0, 3, 7, 11):
        result = run(seed)
        gt = build_ground_truth(result.trace, 4)
        cut = maximum_recoverable_cut(gt)
        surviving = gt.surviving_states
        assert cut - gt.superseded <= surviving


def test_recovery_line_points_into_cut():
    result = run(2)
    gt = build_ground_truth(result.trace, 4)
    cut = maximum_recoverable_cut(gt)
    line = recovery_line(gt)
    assert set(line) == {0, 1, 2, 3}
    for pid, uid in line.items():
        assert uid is not None
        assert uid in cut
