"""Tests for the maximum-recoverable-state computation."""

from repro.analysis.causality import build_ground_truth
from repro.analysis.recoverability import (
    maximum_recoverable_cut,
    recovery_line,
)
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def run(seed=0):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(20.0, 1, 2.0),
        seed=seed,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_cut_equals_states_minus_lost_minus_orphans():
    for seed in (0, 3, 7):
        result = run(seed)
        gt = build_ground_truth(result.trace, 4)
        cut = maximum_recoverable_cut(gt)
        assert cut == gt.states - gt.lost - gt.orphans()


def test_cut_contains_no_dependent_of_lost():
    result = run(5)
    gt = build_ground_truth(result.trace, 4)
    cut = maximum_recoverable_cut(gt)
    reachable = gt.reachable_from(gt.lost)
    assert cut.isdisjoint(gt.lost)
    assert cut.isdisjoint(reachable - gt.lost) or not (cut & reachable)


def test_protocol_achieves_the_maximum_cut():
    """The headline claim: the surviving computation covers the entire
    maximum recoverable cut (minus nothing)."""
    for seed in (0, 3, 7, 11):
        result = run(seed)
        gt = build_ground_truth(result.trace, 4)
        cut = maximum_recoverable_cut(gt)
        surviving = gt.surviving_states
        assert cut - gt.superseded <= surviving


def test_recovery_line_points_into_cut():
    result = run(2)
    gt = build_ground_truth(result.trace, 4)
    cut = maximum_recoverable_cut(gt)
    line = recovery_line(gt)
    assert set(line) == {0, 1, 2, 3}
    for pid, uid in line.items():
        assert uid is not None
        assert uid in cut


# ---------------------------------------------------------------------------
# Hand-built ground truths: the algorithm itself, no simulator involved
# ---------------------------------------------------------------------------
from repro.analysis.causality import GroundTruth


def chain(pid, length):
    return [(pid, 0, i) for i in range(length)]


def hand_built(n=2, lost=(), message_edges=()):
    gt = GroundTruth(n=n)
    for pid in range(n):
        uids = chain(pid, 3)
        gt.states.update(uids)
        gt.local_edges.update(zip(uids, uids[1:]))
        gt.surviving[pid] = uids
    gt.lost.update(lost)
    gt.message_edges.update(message_edges)
    return gt


def test_no_failures_everything_recoverable():
    gt = hand_built()
    assert maximum_recoverable_cut(gt) == gt.states


def test_direct_dependent_of_lost_state_is_retracted():
    # P0 loses (0,0,1) onward; P1's (1,0,1) was created by a message from
    # the lost state, so it and its successor must fall out of the cut.
    gt = hand_built(
        lost={(0, 0, 1), (0, 0, 2)},
        message_edges={((0, 0, 1), (1, 0, 1))},
    )
    assert maximum_recoverable_cut(gt) == {(0, 0, 0), (1, 0, 0)}


def test_retraction_is_transitive_across_processes():
    # Lost at P0 -> P1 depends on it -> P2 depends on P1: all retracted.
    gt = GroundTruth(n=3)
    for pid in range(3):
        uids = chain(pid, 2)
        gt.states.update(uids)
        gt.local_edges.update(zip(uids, uids[1:]))
        gt.surviving[pid] = uids
    gt.lost.add((0, 0, 1))
    gt.message_edges.add(((0, 0, 1), (1, 0, 1)))
    gt.message_edges.add(((1, 0, 1), (2, 0, 1)))
    cut = maximum_recoverable_cut(gt)
    assert cut == {(0, 0, 0), (1, 0, 0), (2, 0, 0)}


def test_independent_branch_is_untouched():
    # A message from a state that is NOT lost must not drag anything out.
    gt = hand_built(
        lost={(0, 0, 2)},
        message_edges={((0, 0, 0), (1, 0, 1))},
    )
    assert maximum_recoverable_cut(gt) == gt.states - {(0, 0, 2)}


def test_recovery_line_is_maximal_per_process():
    gt = hand_built(
        lost={(0, 0, 1), (0, 0, 2)},
        message_edges={((0, 0, 1), (1, 0, 2))},
    )
    line = recovery_line(gt)
    assert line == {0: (0, 0, 0), 1: (1, 0, 1)}
