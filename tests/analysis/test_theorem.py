"""Tests for the Theorem 1 checker."""

import pytest

from repro.analysis import check_theorem1
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def run(seed=0, crashes=None, n=4):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_holds_without_failures():
    report = check_theorem1(run())
    assert report.ok, report.violations
    assert report.pairs_checked > 100
    assert report.non_useful_counterexamples == 0
    assert bool(report) is True


def test_holds_with_failures():
    report = check_theorem1(run(crashes=CrashPlan().crash(20.0, 1, 2.0)))
    assert report.ok, report.violations


def test_failure_produces_non_useful_counterexamples():
    """With orphans in play, the clock genuinely misorders non-useful
    states (Figure 1's r20/s22 remark) -- the checker must observe that."""
    seen = 0
    for seed in range(10):
        report = check_theorem1(
            run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
        )
        assert report.ok
        seen += report.non_useful_counterexamples
    assert seen > 0


def test_max_states_caps_work():
    report = check_theorem1(run(), max_states=10)
    assert report.useful_states <= 10


def test_requires_clock_exposing_protocol():
    from repro.protocols.base import BaseRecoveryProcess

    class Opaque(BaseRecoveryProcess):
        def on_start(self):
            pass

        def on_network_message(self, msg):
            pass

        def on_crash(self):
            pass

        def on_restart(self):
            pass

    spec = ExperimentSpec(
        n=2, app=RandomRoutingApp(), protocol=Opaque, horizon=5.0
    )
    result = run_experiment(spec)
    with pytest.raises(TypeError):
        check_theorem1(result)
