"""Tests for the Section 6.9 overhead accounting."""

from repro.analysis import measure_overhead
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def run(n=4, crashes=None, seed=0):
    spec = ExperimentSpec(
        n=n,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=seed,
        horizon=100.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_failure_free_run_has_zero_control_messages():
    """Section 6.9: 'Except application messages, the protocol causes no
    extra messages to be sent during failure-free run.'"""
    report = measure_overhead(run())
    assert report.failures == 0
    assert report.control_messages == 0
    assert report.app_messages > 0


def test_piggyback_is_n_entries_per_message():
    for n in (2, 4, 8):
        report = measure_overhead(run(n=n))
        assert report.piggyback_entries_per_message == float(n)


def test_tokens_are_n_minus_1_per_failure():
    report = measure_overhead(run(crashes=CrashPlan().crash(20.0, 1, 2.0)))
    assert report.failures == 1
    assert report.control_messages_per_failure == report.n - 1


def test_history_within_onf_bound():
    report = measure_overhead(
        run(crashes=CrashPlan().crash(15.0, 1, 2.0).crash(35.0, 1, 2.0))
    )
    assert report.history_within_bound
    assert report.history_records_max <= report.history_bound


def test_wire_size_grows_only_logarithmically_with_failures():
    calm = measure_overhead(run(seed=1))
    stormy = measure_overhead(
        run(crashes=CrashPlan().crash(15.0, 1, 2.0).crash(35.0, 1, 2.0), seed=1)
    )
    if calm.app_messages and stormy.app_messages:
        # One extra failure bit at most in this regime.
        assert (
            stormy.piggyback_bits_per_message
            <= calm.piggyback_bits_per_message + calm.n
        )


def test_counts_storage_activity():
    report = measure_overhead(run(crashes=CrashPlan().crash(20.0, 1, 2.0)))
    assert report.checkpoints_taken > 0
    assert report.log_flushes > 0
    assert report.restarts == 1


class TestRecoveryLatencies:
    def test_one_latency_record_per_crash(self):
        from repro.analysis import recovery_latencies

        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0).crash(50.0, 2, 3.0))
        latencies = recovery_latencies(result)
        assert [l.pid for l in latencies] == [1, 2]
        assert latencies[0].crash_time == 20.0
        assert latencies[1].crash_time == 50.0

    def test_restart_latency_equals_downtime_for_damani_garg(self):
        from repro.analysis import recovery_latencies

        result = run(crashes=CrashPlan().crash(20.0, 1, 2.0))
        (latency,) = recovery_latencies(result)
        assert latency.restart_latency == 2.0
        assert latency.settle_latency >= 2.0

    def test_no_crashes_no_latencies(self):
        from repro.analysis import recovery_latencies

        assert recovery_latencies(run()) == []

    def test_settle_covers_peer_rollbacks(self):
        from repro.analysis import recovery_latencies
        from repro.sim.trace import EventKind

        for seed in range(8):
            result = run(seed=seed, crashes=CrashPlan().crash(20.0, 1, 2.0))
            rollbacks = result.trace.events(EventKind.ROLLBACK)
            if not rollbacks:
                continue
            (latency,) = recovery_latencies(result)
            assert latency.settle_time >= max(e.time for e in rollbacks)
            return
        raise AssertionError("no seed produced a rollback")


class TestPercentile:
    """Nearest-rank percentile: rank = max(1, ceil(q*n)), 1-indexed."""

    def test_empty_is_none(self):
        from repro.analysis.metrics import percentile

        assert percentile([], 0.5) is None

    def test_singleton_every_quantile(self):
        from repro.analysis.metrics import percentile

        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert percentile([42.0], q) == 42.0

    def test_odd_sample_median_is_middle_element(self):
        from repro.analysis.metrics import percentile

        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_even_sample_median_is_lower_of_the_two(self):
        """Nearest rank never interpolates: ceil(0.5*4) = rank 2."""
        from repro.analysis.metrics import percentile

        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.0

    def test_p99_of_100_samples_is_the_99th_not_the_100th(self):
        """The old buggy int(0.99*100) indexed element 100 (the max)."""
        from repro.analysis.metrics import percentile

        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.99) == 99.0
        assert percentile(values, 1.0) == 100.0

    def test_p90_of_10_samples(self):
        from repro.analysis.metrics import percentile

        values = [float(i) for i in range(1, 11)]
        assert percentile(values, 0.9) == 9.0

    def test_low_quantile_clamps_to_minimum(self):
        from repro.analysis.metrics import percentile

        assert percentile([5.0, 6.0, 7.0], 0.0) == 5.0

    def test_input_order_is_irrelevant(self):
        from repro.analysis.metrics import percentile

        assert percentile([9.0, 1.0, 5.0], 0.99) == percentile(
            [1.0, 5.0, 9.0], 0.99
        )
