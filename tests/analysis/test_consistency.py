"""Tests for the recovery-correctness oracle, including negative cases
(a deliberately broken protocol must be caught)."""

import pytest

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan


def run(protocol=DamaniGargProcess, seed=0, crashes=None):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=3),
        protocol=protocol,
        crashes=crashes
        if crashes is not None
        else CrashPlan().crash(20.0, 1, 2.0),
        seed=seed,
        horizon=120.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


def test_correct_protocol_passes():
    verdict = check_recovery(run())
    assert verdict.ok
    assert verdict.violations == []
    assert "no_surviving_orphan" in verdict.checks_run
    assert bool(verdict) is True


def test_verdict_carries_ground_truth():
    verdict = check_recovery(run(seed=7))
    assert len(verdict.ground_truth.states) > 50
    assert verdict.ground_truth.lost, "expected some lost states"


class BrokenNoRollback(DamaniGargProcess):
    """A protocol that ignores its orphan status: must be caught."""

    def _rollback(self, token):
        return []   # pretend nothing happened


class BrokenNoObsoleteCheck(DamaniGargProcess):
    """Delivers obsolete messages: orphans leak into surviving states."""

    def _receive_app(self, msg):
        envelope = msg.payload
        missing = self.history.missing_tokens(envelope.clock)
        if missing:
            self._held.append(msg)
            self.stats.app_postponed += 1
            return
        self._deliver(msg)


def _find_failing_seed(protocol):
    """Some seeds produce no orphans at all; scan for one that does."""
    for seed in range(20):
        result = run(protocol=DamaniGargProcess, seed=seed)
        if result.total_rollbacks > 0:
            return seed
    pytest.fail("no seed produced an orphan scenario")


def test_detects_missing_rollback():
    seed = _find_failing_seed(BrokenNoRollback)
    result = run(protocol=BrokenNoRollback, seed=seed)
    verdict = check_recovery(result)
    assert not verdict.ok
    assert any("orphan" in v for v in verdict.violations)


def test_detects_obsolete_deliveries():
    # Find a seed where the correct protocol discards something; the broken
    # protocol will instead deliver it.
    chosen = None
    for seed in range(20):
        result = run(seed=seed)
        if result.total("app_discarded") > 0:
            chosen = seed
            break
    assert chosen is not None
    result = run(protocol=BrokenNoObsoleteCheck, seed=chosen)
    verdict = check_recovery(result)
    assert not verdict.ok


class OverEagerRollback(DamaniGargProcess):
    """Rolls back to its oldest checkpoint on any token: not minimal."""

    def _receive_token(self, token):
        self.stats.tokens_received += 1
        self.storage.log_token(token)
        # Roll back unconditionally, even when not an orphan.
        if not self.history.orphaned_by(token):
            self.flush_log()
            if self.storage.log.stable_length > 0:
                # force a gratuitous rollback to the first checkpoint
                first = next(iter(self.storage.checkpoints))
                if self.trace is not None:
                    from repro.sim.trace import EventKind

                    self.trace.record(
                        self.sim.now,
                        EventKind.RESTORE,
                        self.pid,
                        ckpt_uid=first.snapshot["uid"],
                        reason="rollback",
                    )
                self._restore_checkpoint(first)
                self.storage.checkpoints.discard_after(first)
                self.storage.log.truncate(first.log_position)
                self.clock = self.clock.tick(self.pid)
                restored = self.executor.new_recovery_state()
                if self.trace is not None:
                    from repro.sim.trace import EventKind

                    self.trace.record(
                        self.sim.now,
                        EventKind.ROLLBACK,
                        self.pid,
                        origin=token.origin,
                        version=token.version,
                        timestamp=token.timestamp,
                        restored_uid=restored,
                        new_uid=self.executor.current_uid,
                        replayed=0,
                        discarded_log_entries=0,
                    )
                self.stats.note_rollback(token.origin, token.version)
        else:
            self._apply_token(token)
        self.history.observe_token(token)
        self._release_held()


def test_detects_needless_rollback():
    for seed in range(20):
        result = run(protocol=OverEagerRollback, seed=seed)
        verdict = check_recovery(result)
        if not verdict.ok and any(
            "needlessly" in v or "not recovered" in v
            for v in verdict.violations
        ):
            return
    pytest.fail("over-eager rollback was never flagged")


def test_checks_can_be_disabled():
    seed = _find_failing_seed(None)
    result = run(protocol=OverEagerRollback, seed=seed)
    verdict = check_recovery(
        result,
        expect_minimal_rollback=False,
        expect_maximum_recovery=False,
        expect_single_rollback_per_failure=False,
    )
    # With protocol-property checks off, only safety is graded.
    assert "minimal_rollback" not in verdict.checks_run
