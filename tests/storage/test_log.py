"""Unit tests for the volatile/stable message log."""

import pytest

from repro.storage.log import MessageLog


def test_append_goes_to_volatile():
    log = MessageLog()
    log.append(1, 0, "a")
    assert log.volatile_length == 1
    assert log.stable_length == 0
    assert log.total_length == 1


def test_indices_are_receive_order():
    log = MessageLog()
    entries = [log.append(i, 0, f"m{i}") for i in range(4)]
    assert [e.index for e in entries] == [0, 1, 2, 3]


def test_flush_moves_volatile_to_stable():
    log = MessageLog()
    log.append(1, 0, "a")
    log.append(2, 0, "b")
    moved = log.flush()
    assert moved == 2
    assert log.stable_length == 2
    assert log.volatile_length == 0


def test_flush_empty_is_noop():
    log = MessageLog()
    assert log.flush() == 0


def test_flush_callback_receives_count():
    counts = []
    log = MessageLog(on_flush=counts.append)
    log.append(1, 0, "a")
    log.flush()
    log.flush()
    assert counts == [1, 0]


def test_crash_loses_only_volatile():
    log = MessageLog()
    log.append(1, 0, "stable-soon")
    log.flush()
    log.append(2, 0, "volatile")
    lost = log.on_crash()
    assert lost == 1
    assert log.stable_length == 1
    assert log.volatile_length == 0
    assert [e.payload for e in log.stable_entries()] == ["stable-soon"]


def test_indices_continue_after_crash():
    log = MessageLog()
    log.append(1, 0, "a")
    log.flush()
    log.append(2, 0, "lost")
    log.on_crash()
    entry = log.append(3, 0, "new")
    # The lost entry's index is recycled: the receive order of the
    # surviving computation is what matters.
    assert entry.index == 1


def test_stable_entries_from_position():
    log = MessageLog()
    for i in range(5):
        log.append(i, 0, f"m{i}")
    log.flush()
    assert [e.payload for e in log.stable_entries(3)] == ["m3", "m4"]


def test_truncate_discards_suffix():
    log = MessageLog()
    for i in range(5):
        log.append(i, 0, f"m{i}")
    log.flush()
    dropped = log.truncate(2)
    assert dropped == 3
    assert log.stable_length == 2


def test_truncate_with_volatile_refused():
    log = MessageLog()
    log.append(1, 0, "a")
    with pytest.raises(RuntimeError):
        log.truncate(0)


def test_truncate_bounds_checked():
    log = MessageLog()
    log.append(1, 0, "a")
    log.flush()
    with pytest.raises(ValueError):
        log.truncate(5)
    with pytest.raises(ValueError):
        log.truncate(-1)


def test_entry_lookup_spans_stable_and_volatile():
    log = MessageLog()
    log.append(1, 0, "a")
    log.flush()
    log.append(2, 0, "b")
    assert log.entry(0).payload == "a"
    assert log.entry(1).payload == "b"


def test_all_entries_includes_volatile():
    log = MessageLog()
    log.append(1, 0, "a")
    log.flush()
    log.append(2, 0, "b")
    assert [e.payload for e in log.all_entries()] == ["a", "b"]
    assert [e.payload for e in log.all_entries(1)] == ["b"]


def test_meta_round_trips():
    log = MessageLog()
    log.append(7, 3, "payload", meta={"clock": (1, 2)})
    log.flush()
    assert log.stable_entries()[0].meta == {"clock": (1, 2)}
    assert log.stable_entries()[0].src == 3
