"""Unit tests for the checkpoint store."""

import pytest

from repro.storage.checkpoint import CheckpointStore


def take(store, marker, log_position=0):
    return store.take(
        time=float(marker),
        snapshot={"state": marker},
        log_position=log_position,
        extras={"marker": marker},
    )


def test_take_and_latest():
    store = CheckpointStore()
    take(store, 1)
    ckpt = take(store, 2)
    assert store.latest() is ckpt
    assert len(store) == 2
    assert store.taken_count == 2


def test_latest_on_empty_raises():
    with pytest.raises(RuntimeError):
        CheckpointStore().latest()


def test_ids_increase():
    store = CheckpointStore()
    ids = [take(store, i).ckpt_id for i in range(3)]
    assert ids == [0, 1, 2]


def test_latest_satisfying_scans_backwards():
    store = CheckpointStore()
    for i in range(5):
        take(store, i)
    found = store.latest_satisfying(lambda c: c.extras["marker"] <= 2)
    assert found is not None and found.extras["marker"] == 2


def test_latest_satisfying_none():
    store = CheckpointStore()
    take(store, 1)
    assert store.latest_satisfying(lambda c: False) is None


def test_discard_after():
    store = CheckpointStore()
    ckpts = [take(store, i) for i in range(4)]
    dropped = store.discard_after(ckpts[1])
    assert dropped == 2
    assert store.latest() is ckpts[1]
    assert store.discarded_count == 2


def test_discard_after_unknown_checkpoint():
    store = CheckpointStore()
    ckpt = take(store, 1)
    other = CheckpointStore()
    take(other, 8)
    foreign = take(other, 9)     # ckpt_id 1, absent from `store`
    store.discard_after(ckpt)
    with pytest.raises(ValueError):
        store.discard_after(foreign)


def test_garbage_collect_before():
    store = CheckpointStore()
    ckpts = [take(store, i) for i in range(4)]
    dropped = store.garbage_collect_before(ckpts[2].ckpt_id)
    assert dropped == 2
    assert [c.ckpt_id for c in store] == [2, 3]


def test_extras_are_copied_at_take():
    store = CheckpointStore()
    extras = {"k": 1}
    ckpt = store.take(0.0, {}, 0, extras=extras)
    extras["k"] = 999
    assert ckpt.extras["k"] == 1
