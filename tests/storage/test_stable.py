"""Unit tests for per-process stable storage."""

from repro.storage.stable import StableStorage


def test_token_log_is_synchronous_and_ordered():
    storage = StableStorage(0)
    storage.log_token("t1")
    storage.log_token("t2")
    assert storage.tokens == ["t1", "t2"]
    assert storage.sync_writes == 2


def test_tokens_returns_copy():
    storage = StableStorage(0)
    storage.log_token("t1")
    listing = storage.tokens
    listing.append("bogus")
    assert storage.tokens == ["t1"]


def test_kv_put_get():
    storage = StableStorage(0)
    storage.put("version", 3)
    assert storage.get("version") == 3
    assert storage.get("missing", "default") == "default"


def test_crash_preserves_everything_except_volatile_log():
    storage = StableStorage(0)
    storage.log.append(1, 0, "stable")
    storage.log.flush()
    storage.log.append(2, 0, "volatile")
    storage.log_token("tok")
    storage.put("version", 1)
    storage.checkpoints.take(0.0, {"s": 1}, 0)

    lost = storage.on_crash()

    assert lost == 1
    assert storage.log.stable_length == 1
    assert storage.tokens == ["tok"]
    assert storage.get("version") == 1
    assert len(storage.checkpoints) == 1
