"""Injected disk faults against FileStableStorage's group commit.

The ``fault_hook`` attribute is how the live fault layer
(:class:`repro.live.faults.NodeFaults`) reaches the storage write path:
it runs at the top of every persist, tagged ``window=True`` for flushes
triggered by the group-commit timer and ``window=False`` for synchronous
barriers.  These tests pin the retry contract the live disk-fault mode
relies on: a raising hook must leave the dirty flag set and the window
re-armed (so the lazy tail is flushed later, not dropped), and a
stalling hook must never let a crash expose a half-written image.
"""

import asyncio
import os
import time

import pytest

from repro.live.faults import LiveDiskFaultPlan, LiveFaultPlan, NodeFaults
from repro.live.storage import FileStableStorage


@pytest.fixture
def path(tmp_path):
    return os.path.join(str(tmp_path), "stable_p0.pickle")


def _failing_hook(calls):
    def hook(*, window):
        calls.append(window)
        raise OSError("injected fsync failure")
    return hook


# ---------------------------------------------------------------------------
# "fail" semantics: window flushes retry, barriers propagate
# ---------------------------------------------------------------------------
def test_failing_window_flush_keeps_dirty_and_reschedules(path):
    """The PR-7 retry contract under hook injection: when the window
    flush dies, the lazy tail stays pending and a new window is armed --
    the write is retried, not silently dropped."""

    async def go():
        storage = FileStableStorage(0, path, flush_window=0.05)
        storage.put("seed", 1)                  # baseline image on disk
        calls = []
        storage.fault_hook = _failing_hook(calls)
        storage.put_lazy("lazy", "tail")
        await asyncio.sleep(0.12)               # window fires, hook raises
        # Retried at least once already (each attempt is window-tagged).
        assert calls and all(calls)
        assert storage.pending_lazy             # dirty flag survived
        assert storage._flush_handle is not None  # retry window armed
        storage.fault_hook = None               # disk heals
        await asyncio.sleep(0.12)               # retry window fires
        assert not storage.pending_lazy

    asyncio.run(go())
    assert FileStableStorage(0, path).get("lazy") == "tail"


def test_failing_window_flush_leaves_previous_image_intact(path):
    async def go():
        storage = FileStableStorage(0, path, flush_window=0.05)
        storage.put("durable", "old")
        storage.fault_hook = _failing_hook([])
        storage.put_lazy("lazy", "lost-on-crash")
        await asyncio.sleep(0.12)
        # SIGKILL here: reload sees the pre-fault image, not a torn one.

    asyncio.run(go())
    reborn = FileStableStorage(0, path)
    assert reborn.get("durable") == "old"
    assert reborn.get("lazy") is None


def test_failing_barrier_propagates_to_the_caller(path):
    """Synchronous barriers have no retry timer; the caller must see the
    failure (and the dirty lazy tail must still not be dropped)."""
    storage = FileStableStorage(0, path, flush_window=10.0)

    async def go():
        storage.put_lazy("lazy", "pending")
        storage.fault_hook = _failing_hook([])
        with pytest.raises(OSError, match="injected"):
            storage.put("hard", "barrier")
        assert storage.pending_lazy
        storage.fault_hook = None
        storage.sync()
        assert not storage.pending_lazy

    asyncio.run(go())
    reborn = FileStableStorage(0, path)
    assert reborn.get("lazy") == "pending"
    assert reborn.get("hard") == "barrier"      # base mutation re-hardened


def test_node_faults_fail_mode_spares_sync_barriers(path):
    """The live injector only fails *window* persists: a sync barrier
    during the fault window still lands (a disk that fails barriers is a
    crashed node, which SIGKILL injection already models)."""
    cfg = LiveFaultPlan(
        disk_faults=(LiveDiskFaultPlan(0, 0.0, 10.0, mode="fail"),),
    ).for_node(0, 3)
    faults = NodeFaults(0, cfg)
    faults.set_clock(lambda: 1.0)

    async def go():
        storage = FileStableStorage(0, path, flush_window=0.05)
        storage.fault_hook = faults.disk_fault
        storage.put("hard", "barrier")          # window=False: passes
        storage.put_lazy("lazy", "tail")
        await asyncio.sleep(0.12)               # window=True: fails
        assert storage.pending_lazy
        storage.sync()                          # barrier flushes the tail
        assert not storage.pending_lazy

    asyncio.run(go())
    assert faults.counters()["disk_fault_failures"] >= 1
    reborn = FileStableStorage(0, path)
    assert reborn.get("hard") == "barrier"
    assert reborn.get("lazy") == "tail"


# ---------------------------------------------------------------------------
# "stall" semantics
# ---------------------------------------------------------------------------
def test_stall_mode_delays_but_completes_every_persist(path):
    cfg = LiveFaultPlan(
        disk_faults=(
            LiveDiskFaultPlan(0, 0.0, 10.0, mode="stall", stall=0.05),
        ),
    ).for_node(0, 3)
    faults = NodeFaults(0, cfg)
    faults.set_clock(lambda: 1.0)
    storage = FileStableStorage(0, path)
    storage.fault_hook = faults.disk_fault
    start = time.monotonic()
    storage.put("k", "v")
    assert time.monotonic() - start >= 0.05
    assert faults.counters()["disk_fault_stalls"] == 1
    assert FileStableStorage(0, path).get("k") == "v"


def test_crash_during_stall_leaves_previous_image_reloadable(path):
    """A stall happens *before* the tmp-file write begins, and the write
    itself goes through os.replace -- so dying at any point during a
    stalled persist leaves the previous durable image intact."""
    storage = FileStableStorage(0, path)
    storage.put("k", "old")

    def hook(*, window):
        raise KeyboardInterrupt  # stand-in for dying mid-stall

    storage.fault_hook = hook
    with pytest.raises(KeyboardInterrupt):
        storage.put("k", "new")
    # The in-memory mutation happened but nothing reached the file.
    reborn = FileStableStorage(0, path)
    assert reborn.get("k") == "old"
