"""Tests for message-log prefix garbage collection (Remark 2 support)."""

import pytest

from repro.storage.log import MessageLog


def make_log(entries=6):
    log = MessageLog()
    for i in range(entries):
        log.append(i, 0, f"m{i}")
    log.flush()
    return log


def test_discard_prefix_keeps_absolute_indices():
    log = make_log()
    dropped = log.discard_prefix(3)
    assert dropped == 3
    assert log.stable_length == 6          # absolute end unchanged
    assert log.retained_stable_entries == 3
    assert [e.payload for e in log.stable_entries(3)] == ["m3", "m4", "m5"]
    assert log.entry(4).payload == "m4"


def test_discard_prefix_is_idempotent_and_monotone():
    log = make_log()
    assert log.discard_prefix(2) == 2
    assert log.discard_prefix(2) == 0
    assert log.discard_prefix(1) == 0      # already collected further
    assert log.discard_prefix(4) == 2
    assert log.gc_count == 4


def test_discard_prefix_clamps_to_stable_length():
    log = make_log(3)
    assert log.discard_prefix(100) == 3
    assert log.retained_stable_entries == 0
    assert log.stable_length == 3


def test_reading_collected_entries_raises():
    log = make_log()
    log.discard_prefix(3)
    with pytest.raises(ValueError, match="garbage-collected"):
        log.stable_entries(0)
    with pytest.raises(ValueError, match="garbage-collected"):
        log.entry(2)
    with pytest.raises(ValueError, match="garbage-collected"):
        log.all_entries(1)


def test_append_after_gc_continues_indices():
    log = make_log()
    log.discard_prefix(4)
    entry = log.append(99, 1, "new")
    assert entry.index == 6
    log.flush()
    assert log.entry(6).payload == "new"


def test_truncate_interacts_with_gc_offset():
    log = make_log()
    log.discard_prefix(2)
    dropped = log.truncate(4)               # keep absolute [2, 4)
    assert dropped == 2
    assert [e.payload for e in log.stable_entries(2)] == ["m2", "m3"]
    with pytest.raises(ValueError):
        log.truncate(1)                     # below the GC offset


def test_total_length_counts_collected_prefix():
    log = make_log(4)
    log.append(9, 0, "volatile")
    log.discard_prefix(2)
    assert log.total_length == 5
    assert log.volatile_length == 1
