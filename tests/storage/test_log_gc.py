"""Tests for message-log prefix garbage collection (Remark 2 support)."""

import pytest

from repro.storage.log import MessageLog


def make_log(entries=6):
    log = MessageLog()
    for i in range(entries):
        log.append(i, 0, f"m{i}")
    log.flush()
    return log


def test_discard_prefix_keeps_absolute_indices():
    log = make_log()
    dropped = log.discard_prefix(3)
    assert dropped == 3
    assert log.stable_length == 6          # absolute end unchanged
    assert log.retained_stable_entries == 3
    assert [e.payload for e in log.stable_entries(3)] == ["m3", "m4", "m5"]
    assert log.entry(4).payload == "m4"


def test_discard_prefix_is_idempotent_and_monotone():
    log = make_log()
    assert log.discard_prefix(2) == 2
    assert log.discard_prefix(2) == 0
    assert log.discard_prefix(1) == 0      # already collected further
    assert log.discard_prefix(4) == 2
    assert log.gc_count == 4


def test_discard_prefix_clamps_to_stable_length():
    log = make_log(3)
    assert log.discard_prefix(100) == 3
    assert log.retained_stable_entries == 0
    assert log.stable_length == 3


def test_reading_collected_entries_raises():
    log = make_log()
    log.discard_prefix(3)
    with pytest.raises(ValueError, match="garbage-collected"):
        log.stable_entries(0)
    with pytest.raises(ValueError, match="garbage-collected"):
        log.entry(2)
    with pytest.raises(ValueError, match="garbage-collected"):
        log.all_entries(1)


def test_append_after_gc_continues_indices():
    log = make_log()
    log.discard_prefix(4)
    entry = log.append(99, 1, "new")
    assert entry.index == 6
    log.flush()
    assert log.entry(6).payload == "new"


def test_truncate_interacts_with_gc_offset():
    log = make_log()
    log.discard_prefix(2)
    dropped = log.truncate(4)               # keep absolute [2, 4)
    assert dropped == 2
    assert [e.payload for e in log.stable_entries(2)] == ["m2", "m3"]
    with pytest.raises(ValueError):
        log.truncate(1)                     # below the GC offset


def test_total_length_counts_collected_prefix():
    log = make_log(4)
    log.append(9, 0, "volatile")
    log.discard_prefix(2)
    assert log.total_length == 5
    assert log.volatile_length == 1


# ---------------------------------------------------------------------------
# GC / rollback interplay
# ---------------------------------------------------------------------------
def test_stable_entries_exactly_at_gc_boundary():
    # A checkpoint whose log_position equals the GC offset is the
    # coordinator's anchor itself: replay from it must work, returning
    # every retained entry, not raise.
    log = make_log()
    log.discard_prefix(3)
    assert [e.payload for e in log.stable_entries(3)] == ["m3", "m4", "m5"]
    with pytest.raises(ValueError, match="garbage-collected"):
        log.stable_entries(2)


def test_truncate_to_exact_gc_boundary():
    # Rollback to the anchor checkpoint: every retained entry is orphan
    # suffix.  The log ends up empty but the absolute index space keeps
    # counting from the boundary.
    log = make_log()
    log.discard_prefix(3)
    assert log.truncate(3) == 3
    assert log.stable_length == 3
    assert log.retained_stable_entries == 0
    assert log.stable_entries(3) == []
    entry = log.append(50, 1, "post-rollback")
    assert entry.index == 3
    log.flush()
    assert [e.payload for e in log.stable_entries(3)] == ["post-rollback"]


def test_rollback_replay_with_surviving_checkpoint_at_boundary():
    # The full rollback sequence against a GC'd log: the surviving
    # checkpoint sits exactly at the GC boundary (it was the anchor),
    # later entries are part orphan / part survivor.
    log = make_log(8)
    ckpt_position = 4                        # anchor checkpoint at index 4
    log.discard_prefix(ckpt_position)

    # More traffic after the sweep, partially unflushed.
    log.append(8, 1, "m8")
    log.append(9, 2, "m9")
    log.flush()

    # Rollback: flush-first discipline, then cut the orphan suffix [7, ...).
    assert log.truncate(7) == 3
    replay = log.stable_entries(ckpt_position)
    assert [e.payload for e in replay] == ["m4", "m5", "m6"]
    assert [e.index for e in replay] == [4, 5, 6]

    # Re-delivered messages land right where the orphans were cut.
    assert log.append(9, 2, "m9-again").index == 7
    assert log.total_length == 8


def test_truncate_below_gc_boundary_is_rejected():
    # A rollback must never target a checkpoint older than the GC
    # anchor -- the coordinator only collects below *globally stable*
    # checkpoints, so such a request is a protocol bug, not a legal cut.
    log = make_log()
    log.discard_prefix(4)
    with pytest.raises(ValueError, match="outside stable log"):
        log.truncate(3)
    # The failed call must not have disturbed the retained suffix.
    assert [e.payload for e in log.stable_entries(4)] == ["m4", "m5"]


def test_gc_then_rollback_end_to_end_under_protocol():
    # A full Damani-Garg run in which the stability coordinator collects
    # log prefixes *and* later failures force rollbacks over the same
    # logs; recovery must stay oracle-clean with the GC'd replay source.
    from repro.analysis.consistency import check_recovery
    from repro.harness.runner import run_experiment
    from repro.stress import build_spec, generate_case

    case = generate_case(39)                # commit+gc, 3 crashes, rollbacks
    assert case.enable_gc
    result = run_experiment(build_spec(case))
    assert sum(p.storage.log.gc_count for p in result.protocols) > 0
    assert result.total_rollbacks > 0
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
