"""Write-ahead intent journal + startup recovery crawler tests.

Covers the journal lifecycle on the in-memory storage, the heal policy
(abort vs roll-forward) for every intent kind, and -- via the crash-point
matrix at the bottom -- a scripted FileStableStorage driver per kind that
is killed at every enumerated crash point and must heal back to either
the pre-transition image (abort kinds) or the completed-transition image
(forward kinds).
"""

import pytest

from repro.storage import intents
from repro.storage.intents import (
    AUDIT_TAIL,
    BEGUN,
    CHECKPOINT,
    COMPACTION,
    FLUSH,
    HEAL_LOG_KEY,
    INTENT_STEPS,
    LIVE_CRASH_POINTS,
    OPERATOR_ROLLBACK,
    RECOVERED_ENTRIES_KEY,
    RESTART,
    ROLLBACK,
    SIM_CRASH_POINTS,
    CrashPointReached,
    crash_points,
    heal,
)
from repro.storage.stable import StableStorage


# ---------------------------------------------------------------------------
# Journal lifecycle (in-memory storage)
# ---------------------------------------------------------------------------
def test_begin_advance_commit_lifecycle():
    storage = StableStorage(0)
    intent = storage.begin_intent(CHECKPOINT, note="x")
    assert intent is not None
    assert intent.step == BEGUN
    assert intent.payload == {"note": "x"}
    assert storage.active_intent() is intent

    storage.advance_intent(intent, "log_flushed")
    assert intent.step == "log_flushed"

    storage.commit_intent(intent)
    assert intent.status == "committed"
    assert storage.active_intent() is None
    assert storage.intent_audit()[-1] is intent
    assert storage.intents_begun == 1
    assert storage.intents_committed == 1


def test_abort_records_reason():
    storage = StableStorage(0)
    intent = storage.begin_intent(FLUSH)
    storage.abort_intent(intent, reason="healed")
    assert intent.status == "aborted"
    assert intent.payload["abort_reason"] == "healed"
    assert storage.active_intent() is None
    assert storage.intents_aborted == 1


def test_nested_begin_returns_none_and_tolerant_ops():
    storage = StableStorage(0)
    outer = storage.begin_intent(CHECKPOINT)
    inner = storage.begin_intent(FLUSH)
    assert inner is None
    # None-tolerant: the nested call sites stay unconditional.
    storage.advance_intent(inner, "log_flushed")
    storage.commit_intent(inner)
    storage.abort_intent(inner)
    assert storage.active_intent() is outer
    storage.commit_intent(outer)
    assert storage.active_intent() is None


def test_audit_tail_is_bounded():
    storage = StableStorage(0)
    for i in range(AUDIT_TAIL + 5):
        intent = storage.begin_intent(FLUSH, seq=i)
        storage.commit_intent(intent)
    audit = storage.intent_audit()
    assert len(audit) == AUDIT_TAIL
    assert audit[-1].payload["seq"] == AUDIT_TAIL + 4
    # Ids keep counting even though the tail is bounded.
    assert storage._intent_next_id == AUDIT_TAIL + 5


def test_crash_point_enumeration():
    # Every kind:step pair, nothing else; sim excludes ":committed".
    expected = {
        f"{kind}:{step}"
        for kind, steps in INTENT_STEPS.items()
        for step in steps
        if kind != OPERATOR_ROLLBACK
    }
    assert set(SIM_CRASH_POINTS) == expected
    assert set(LIVE_CRASH_POINTS) == expected | {
        f"{kind}:committed"
        for kind in INTENT_STEPS
        if kind != OPERATOR_ROLLBACK
    }
    assert crash_points((OPERATOR_ROLLBACK,)) == (
        "operator-rollback:orphans_preserved",
        "operator-rollback:checkpoints_discarded",
        "operator-rollback:log_truncated",
    )


def test_in_memory_firing_semantics():
    """In-memory storage fires a point when its step's persist *would*
    land: commit fires the last step; fire-once semantics."""
    storage = StableStorage(0)
    storage.arm_crash_point("checkpoint:log_flushed", downtime=2.5)
    intent = storage.begin_intent(CHECKPOINT)
    storage.advance_intent(intent, "log_flushed")  # fires checkpoint:begun -> unarmed
    with pytest.raises(CrashPointReached) as exc:
        storage.commit_intent(intent)
    assert exc.value.point == "checkpoint:log_flushed"
    assert exc.value.downtime == 2.5
    # Fired once: the point is disarmed and the intent is still active
    # (commit raised before retiring), exactly the crashed image.
    assert storage.armed_crash_points() == set()
    assert storage.active_intent() is intent
    storage.commit_intent(intent)
    assert storage.active_intent() is None


def test_crash_point_custom_action():
    fired = []
    storage = StableStorage(0)
    storage.arm_crash_point("flush:log_flushed", action=fired.append)
    intent = storage.begin_intent(FLUSH)
    storage.advance_intent(intent, "log_flushed")
    storage.commit_intent(intent)  # action instead of raise
    assert fired == ["flush:log_flushed"]
    assert storage.active_intent() is None


# ---------------------------------------------------------------------------
# Heal policy
# ---------------------------------------------------------------------------
def test_heal_is_a_no_op_on_clean_image():
    storage = StableStorage(0)
    storage.put("k", 1)
    writes_before = storage.sync_writes
    assert heal(storage) == []
    # Zero writes: golden traces cannot be disturbed by the crawler.
    assert storage.sync_writes == writes_before
    assert storage.get(HEAL_LOG_KEY) is None


@pytest.mark.parametrize("kind", [CHECKPOINT, FLUSH, RESTART])
def test_heal_rolls_back_harmless_prefix_kinds(kind):
    storage = StableStorage(0)
    intent = storage.begin_intent(kind)
    storage.advance_intent(intent, INTENT_STEPS[kind][0])

    actions = heal(storage)

    assert [a["action"] for a in actions] == ["rolled_back"]
    assert actions[0]["kind"] == kind
    assert storage.active_intent() is None
    assert storage.intent_audit()[-1].status == "aborted"
    assert storage.intent_audit()[-1].payload["abort_reason"] == "healed"
    assert storage.get(HEAL_LOG_KEY) == actions


def _storage_with_rollback_in_flight(step):
    """Image of a rollback crashed right after reaching ``step``."""
    storage = StableStorage(0)
    anchor = storage.checkpoints.take(1.0, {"uid": "a"}, 0)
    for i in range(4):
        storage.log.append(i, 1, f"m{i}")
    storage.log.flush()
    later = storage.checkpoints.take(2.0, {"uid": "b"}, 4)
    intent = storage.begin_intent(
        ROLLBACK,
        token=(1, 0, 3),
        anchor_ckpt_id=anchor.ckpt_id,
        truncate_at=2,
        stable_own=("v", 7),
    )
    steps = INTENT_STEPS[ROLLBACK]
    for s in steps[: steps.index(step) + 1]:
        storage.advance_intent(intent, s)
        if s == "checkpoints_discarded":
            storage.checkpoints.discard_after(anchor)
        elif s == "log_truncated":
            storage.log.truncate(2)
    return storage, anchor, later


@pytest.mark.parametrize(
    "step", ["log_flushed", "checkpoints_discarded", "log_truncated"]
)
def test_heal_rolls_rollback_forward(step):
    storage, anchor, _later = _storage_with_rollback_in_flight(step)

    actions = heal(storage)

    assert [a["action"] for a in actions] == ["rolled_forward"]
    assert storage.active_intent() is None
    assert storage.intent_audit()[-1].status == "committed"
    # Target state reached no matter where the crash landed.
    assert [c.ckpt_id for c in storage.checkpoints] == [anchor.ckpt_id]
    assert [e.index for e in storage.log.stable_entries()] == [0, 1]
    assert storage.get("stable_own") == ("v", 7)
    # Truncated entries preserved, never deleted -- unless the crash
    # already landed past the truncation (they died with the original
    # run's truncate, which the protocol had already accounted for).
    preserved = storage.get(RECOVERED_ENTRIES_KEY) or []
    if step == "log_truncated":
        assert preserved == []
    else:
        assert [e.index for e in preserved] == [2, 3]
    # Idempotent: a second heal finds a clean image.
    assert heal(storage) == []


def test_heal_preservation_dedups_by_entry_index():
    storage, _anchor, _later = _storage_with_rollback_in_flight("log_flushed")
    stale = storage.log.stable_entries(2)
    storage.put(RECOVERED_ENTRIES_KEY, stale)  # as if a prior heal ran
    heal(storage)
    preserved = storage.get(RECOVERED_ENTRIES_KEY)
    assert [e.index for e in preserved] == [2, 3]


def test_heal_rolls_compaction_forward():
    storage = StableStorage(0)
    storage.checkpoints.take(1.0, {"uid": "a"}, 0)
    for i in range(3):
        storage.log.append(i, 1, f"m{i}")
    storage.log.flush()
    anchor = storage.checkpoints.take(2.0, {"uid": "b"}, 3)
    intent = storage.begin_intent(
        COMPACTION, anchor_ckpt_id=anchor.ckpt_id, anchor_position=3
    )
    storage.advance_intent(intent, "checkpoints_collected")
    storage.checkpoints.garbage_collect_before(anchor.ckpt_id)
    # Crash here: checkpoints collected, log prefix not yet discarded.

    actions = heal(storage)

    assert [a["action"] for a in actions] == ["rolled_forward"]
    assert actions[0]["log_entries_collected"] == 3
    assert [c.ckpt_id for c in storage.checkpoints] == [anchor.ckpt_id]
    assert storage.log.retained_stable_entries == 0
    assert storage.log.stable_length == 3  # absolute indices preserved


def test_heal_operator_rollback_does_not_queue_represent():
    """Operator rollbacks preserve orphans under their own key; the
    crawler must not feed them back through the receive path."""
    storage = StableStorage(0)
    anchor = storage.checkpoints.take(1.0, {"uid": "a"}, 0)
    for i in range(3):
        storage.log.append(i, 1, f"m{i}")
    storage.log.flush()
    storage.checkpoints.take(2.0, {"uid": "b"}, 3)
    intent = storage.begin_intent(
        OPERATOR_ROLLBACK, anchor_ckpt_id=anchor.ckpt_id, truncate_at=1
    )
    storage.advance_intent(intent, "orphans_preserved")

    actions = heal(storage)

    assert [a["action"] for a in actions] == ["rolled_forward"]
    assert storage.get(RECOVERED_ENTRIES_KEY) is None
    assert [c.ckpt_id for c in storage.checkpoints] == [anchor.ckpt_id]
    assert [e.index for e in storage.log.stable_entries()] == [0]


def test_heal_aborts_when_anchor_is_gone():
    storage = StableStorage(0)
    storage.checkpoints.take(1.0, {"uid": "a"}, 0)
    intent = storage.begin_intent(ROLLBACK, anchor_ckpt_id=999, truncate_at=0)
    storage.advance_intent(intent, "log_flushed")

    actions = heal(storage)

    assert actions[0]["action"] == "aborted"
    assert actions[0]["reason"] == "anchor-checkpoint-missing"
    assert storage.active_intent() is None
    assert len(storage.checkpoints) == 1


def test_heal_log_keeps_a_bounded_tail():
    storage = StableStorage(0)
    for _ in range(intents.HEAL_LOG_TAIL + 4):
        storage.begin_intent(FLUSH)  # leave it active: crashed image
        storage._active_intent.step = "log_flushed"
        heal(storage)
    assert len(storage.get(HEAL_LOG_KEY)) == intents.HEAL_LOG_TAIL


# ---------------------------------------------------------------------------
# FileStableStorage crash-point matrix: kill each scripted transition at
# every enumerated point, reload, heal, compare against references.
# ---------------------------------------------------------------------------
def _file_storage(tmp_path, name):
    from repro.live.storage import FileStableStorage

    return FileStableStorage(0, str(tmp_path / f"{name}.pickle"))


def _prepopulate(storage):
    """A believable mid-run image: two checkpoints, four stable entries."""
    anchor = storage.checkpoints.take(1.0, {"uid": "a"}, 0)
    for i in range(4):
        storage.log.append(i, 1, f"m{i}")
    storage.log.flush()
    later = storage.checkpoints.take(2.0, {"uid": "b"}, 4)
    storage.put("stable_own", ("v0", 4))
    return anchor, later


def _drive_checkpoint(storage, anchor, later, fresh=True):
    if fresh:
        storage.log.append(9, 1, "fresh")
    intent = storage.begin_intent(CHECKPOINT)
    storage.advance_intent(intent, "log_flushed")
    storage.log.flush()
    storage.commit_intent(intent)
    storage.checkpoints.take(3.0, {"uid": "c"}, 5)


def _drive_flush(storage, anchor, later, fresh=True):
    if fresh:
        storage.log.append(9, 1, "fresh")
    intent = storage.begin_intent(FLUSH)
    storage.advance_intent(intent, "log_flushed")
    storage.log.flush()
    storage.commit_intent(intent)
    storage.put("stable_own", ("v0", 5))


def _drive_restart(storage, anchor, later, fresh=True):
    intent = storage.begin_intent(RESTART, token=(0, 0, 4))
    storage.advance_intent(intent, "token_logged")
    storage.log_token(("tok", 0, 0, 4), dedupe_key=(0, 0))
    storage.commit_intent(intent)
    storage.checkpoints.take(3.0, {"uid": "c"}, 4)


def _drive_rollback(storage, anchor, later, fresh=True):
    if fresh:
        storage.log.append(9, 1, "fresh")
    intent = storage.begin_intent(
        ROLLBACK,
        token=(1, 0, 2),
        anchor_ckpt_id=anchor.ckpt_id,
        truncate_at=2,
        stable_own=("v1", 0),
    )
    storage.advance_intent(intent, "log_flushed")
    storage.log.flush()
    storage.advance_intent(intent, "checkpoints_discarded")
    storage.checkpoints.discard_after(anchor)
    storage.advance_intent(intent, "log_truncated")
    storage.log.truncate(2)
    storage.commit_intent(intent)
    storage.put("stable_own", ("v1", 0))


def _drive_compaction(storage, anchor, later, fresh=True):
    intent = storage.begin_intent(
        COMPACTION,
        anchor_ckpt_id=later.ckpt_id,
        anchor_position=later.log_position,
    )
    storage.advance_intent(intent, "checkpoints_collected")
    storage.checkpoints.garbage_collect_before(later.ckpt_id)
    storage.commit_intent(intent)
    storage.log.discard_prefix(later.log_position)


_DRIVERS = {
    CHECKPOINT: _drive_checkpoint,
    FLUSH: _drive_flush,
    RESTART: _drive_restart,
    ROLLBACK: _drive_rollback,
    COMPACTION: _drive_compaction,
}


def _image(storage):
    """The durable facts the transition is about (counters excluded)."""
    log = storage.log
    start = log.stable_length - log.retained_stable_entries
    return {
        "ckpt_ids": [c.ckpt_id for c in storage.checkpoints],
        "log": [e.index for e in log.stable_entries(start)],
        "stable_own": storage.get("stable_own"),
        "tokens": storage.tokens,
    }


@pytest.mark.parametrize("point", LIVE_CRASH_POINTS)
def test_crash_point_heals_to_a_provable_state(tmp_path, point):
    kind = point.split(":")[0]
    driver = _DRIVERS[kind]

    # Reference: the same transition, completed without interference.
    ref = _file_storage(tmp_path, "ref")
    driver(ref, *_prepopulate(ref))
    complete = _image(ref)

    victim = _file_storage(tmp_path, "victim")
    anchor, later = _prepopulate(victim)
    before = _image(victim)
    victim.arm_crash_point(point, downtime=0.5)
    with pytest.raises(CrashPointReached) as exc:
        driver(victim, anchor, later)
    assert exc.value.point == point

    # SIGKILL: reload from the file alone, then heal.
    from repro.live.storage import FileStableStorage

    reborn = FileStableStorage(0, victim.path)
    actions = heal(reborn)
    healed = _image(reborn)

    assert reborn.active_intent() is None
    if point.endswith(":committed"):
        # The transition fully landed before the kill; nothing to heal.
        assert actions == []
        assert healed == complete
    elif kind in intents.ROLL_FORWARD_KINDS:
        assert [a["action"] for a in actions] == ["rolled_forward"]
        assert healed == complete
        if kind == ROLLBACK and point != "rollback:log_truncated":
            preserved = reborn.get(RECOVERED_ENTRIES_KEY)
            assert [e.index for e in preserved] == [2, 3, 4]
    else:
        # Abort kinds: the partial prefix is harmless; re-running the
        # transition reaches the reference image (restart's token relog
        # is absorbed by the (origin, version) dedupe).
        assert [a["action"] for a in actions] == ["rolled_back"]
        assert healed["ckpt_ids"] == before["ckpt_ids"]
        # The crash landed *after* the prefix persisted (file-backed
        # points fire at persists), so the retry skips the fresh append.
        driver(reborn, anchor, later, fresh=False)
        assert _image(reborn) == complete


def test_intent_round_trips_through_the_file(tmp_path):
    from repro.live.storage import FileStableStorage

    storage = _file_storage(tmp_path, "rt")
    _prepopulate(storage)
    intent = storage.begin_intent(ROLLBACK, anchor_ckpt_id=0, truncate_at=2)
    storage.advance_intent(intent, "log_flushed")
    storage.put("marker", 1)  # any barrier persists the active record

    reborn = FileStableStorage(0, storage.path)
    active = reborn.active_intent()
    assert active is not None
    assert (active.kind, active.step) == (ROLLBACK, "log_flushed")
    assert active.payload["anchor_ckpt_id"] == 0
    assert reborn.intent_audit() == []
