"""Compatibility matrix: every protocol x every workload x failure.

A broad sweep asserting that every protocol recovers every application
(on the protocol's own contract), plus edge topologies (n = 1, n = 2,
larger n).
"""

import pytest

from repro.analysis import check_recovery
from repro.apps import BankApp, PingPongApp, PipelineApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols import (
    CausalLoggingProcess,
    CoordinatedProcess,
    PessimisticReceiverProcess,
    PetersonKearnsProcess,
    ProtocolConfig,
    SenderBasedProcess,
    SistlaWelchProcess,
    SmithJohnsonTygarProcess,
    StromYeminiProcess,
)
from repro.sim.failures import CrashPlan
from repro.sim.network import DeliveryOrder

ALL_PROTOCOLS = [
    DamaniGargProcess,
    SmithJohnsonTygarProcess,
    StromYeminiProcess,
    SenderBasedProcess,
    SistlaWelchProcess,
    PetersonKearnsProcess,
    PessimisticReceiverProcess,
    CoordinatedProcess,
    CausalLoggingProcess,
]

WORKLOADS = {
    "routing": RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
    "bank": BankApp(seeds=(0, 2), max_chain=120),
    "pipeline": PipelineApp(jobs=8),
    "pingpong": PingPongApp(rounds=40),
}


def grade_kwargs(protocol):
    strict = protocol not in (StromYeminiProcess, CoordinatedProcess)
    return {
        "expect_minimal_rollback": strict,
        "expect_maximum_recovery": strict,
        "expect_single_rollback_per_failure": strict,
    }


def run(protocol, app, *, n=4, crashes=None, seed=0, horizon=110.0):
    spec = ExperimentSpec(
        n=n,
        app=app,
        protocol=protocol,
        crashes=crashes,
        seed=seed,
        horizon=horizon,
        order=(
            DeliveryOrder.FIFO
            if protocol.requires_fifo
            else DeliveryOrder.RANDOM
        ),
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    return run_experiment(spec)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
@pytest.mark.parametrize("workload", sorted(WORKLOADS), ids=str)
def test_matrix_single_failure(protocol, workload):
    result = run(
        protocol,
        WORKLOADS[workload],
        crashes=CrashPlan().crash(20.0, 1, 2.0),
    )
    verdict = check_recovery(result, **grade_kwargs(protocol))
    assert verdict.ok, verdict.violations


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
def test_matrix_failure_free_makes_progress(protocol):
    result = run(protocol, WORKLOADS["routing"])
    assert result.total_delivered > 30
    assert result.total_rollbacks == 0
    assert result.total_restarts == 0


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
def test_matrix_single_process_topology(protocol):
    """n = 1: no peers, no tokens; restart must still work locally."""
    result = run(
        protocol,
        RandomRoutingApp(hops=10, seeds=(0,)),
        n=1,
        crashes=CrashPlan().crash(10.0, 0, 2.0),
        horizon=40.0,
    )
    assert result.total_restarts == 1
    verdict = check_recovery(result, **grade_kwargs(protocol))
    assert verdict.ok, verdict.violations


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS, ids=lambda p: p.name)
def test_matrix_two_processes(protocol):
    result = run(
        protocol,
        PingPongApp(rounds=60),
        n=2,
        crashes=CrashPlan().crash(15.0, 1, 2.0),
        horizon=120.0,
    )
    verdict = check_recovery(result, **grade_kwargs(protocol))
    assert verdict.ok, verdict.violations


@pytest.mark.parametrize(
    "protocol",
    [DamaniGargProcess, SmithJohnsonTygarProcess,
     PessimisticReceiverProcess, SenderBasedProcess],
    ids=lambda p: p.name,
)
def test_matrix_larger_topology(protocol):
    """n = 10 with two failures, for the n-tolerant protocols."""
    result = run(
        protocol,
        RandomRoutingApp(hops=60, seeds=(0, 1, 2, 3), initial_items=2),
        n=10,
        crashes=CrashPlan().crash(20.0, 3, 2.0).crash(40.0, 7, 2.0),
        horizon=120.0,
    )
    verdict = check_recovery(result, **grade_kwargs(protocol))
    assert verdict.ok, verdict.violations
