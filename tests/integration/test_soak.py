"""Soak tests: long horizons, many failures, every oracle check on.

These are the heaviest tests in the suite (a few seconds each); they are
the closest thing to letting the system run overnight.
"""

import pytest

from repro.analysis import check_recovery, check_theorem1
from repro.apps import BankApp, RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols import (
    PessimisticReceiverProcess,
    ProtocolConfig,
    SenderBasedProcess,
    SmithJohnsonTygarProcess,
)
from repro.sim.failures import CrashPlan, PartitionPlan
from repro.sim.rng import RandomStreams


def test_soak_damani_garg_poisson_failures():
    """n=6, 200 time units, Poisson crashes, full oracle + Theorem 1."""
    crashes = CrashPlan.poisson(
        n=6, horizon=160.0, rate=0.012, downtime=2.0,
        streams=RandomStreams(4242),
    )
    assert crashes.failure_count >= 5, "want a busy schedule"
    spec = ExperimentSpec(
        n=6,
        app=RandomRoutingApp(hops=120, seeds=(0, 1, 2), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=crashes,
        seed=4242,
        horizon=200.0,
        config=ProtocolConfig(checkpoint_interval=7.0, flush_interval=2.0),
    )
    result = run_experiment(spec)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    report = check_theorem1(result, max_states=350)
    assert report.ok, report.violations
    assert result.total_restarts == sum(
        1 for _ in crashes.events
    ) or result.total_restarts <= crashes.failure_count


def test_soak_with_everything_enabled():
    """Retransmission + output commit + GC + partitions, simultaneously."""
    crashes = CrashPlan.poisson(
        n=5, horizon=120.0, rate=0.012, downtime=2.0,
        streams=RandomStreams(77),
    )
    spec = ExperimentSpec(
        n=5,
        app=RandomRoutingApp(hops=100, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=crashes,
        partitions=PartitionPlan().partition(
            30.0, [[0, 1, 2], [3, 4]], heal_time=55.0
        ),
        seed=77,
        horizon=160.0,
        config=ProtocolConfig(
            checkpoint_interval=7.0,
            flush_interval=2.0,
            retransmit_on_token=True,
            commit_outputs=True,
            enable_gc=True,
        ),
        stability_interval=4.0,
    )
    result = run_experiment(spec)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
    assert result.coordinator.stats.rounds > 10


@pytest.mark.parametrize(
    "protocol",
    [SmithJohnsonTygarProcess, SenderBasedProcess,
     PessimisticReceiverProcess],
    ids=lambda p: p.name,
)
def test_soak_other_n_failure_protocols(protocol):
    crashes = CrashPlan.poisson(
        n=4, horizon=100.0, rate=0.01, downtime=2.0,
        streams=RandomStreams(99),
    )
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=80, seeds=(0, 1), initial_items=3),
        protocol=protocol,
        crashes=crashes,
        seed=99,
        horizon=140.0,
        config=ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5),
    )
    result = run_experiment(spec)
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations


def test_soak_bank_invariant_under_fire():
    """Money is never created, across 10 seeds of double crashes."""
    n, initial = 5, 1000
    for seed in range(10):
        spec = ExperimentSpec(
            n=n,
            app=BankApp(initial_balance=initial, seeds=(0, 2),
                        max_chain=300),
            protocol=DamaniGargProcess,
            crashes=CrashPlan().crash(20.0, seed % n, 2.0).crash(
                45.0, (seed + 2) % n, 2.0
            ),
            seed=seed,
            horizon=120.0,
            config=ProtocolConfig(
                checkpoint_interval=8.0,
                flush_interval=2.5,
                retransmit_on_token=True,
            ),
        )
        result = run_experiment(spec)
        assert check_recovery(result).ok
        total = sum(p.executor.state.balance for p in result.protocols)
        assert total <= n * initial, f"money created (seed {seed})"
