"""At-least-once transport: dedup-capable protocols must tolerate it."""

import pytest

from repro.analysis import check_recovery
from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.protocols import (
    PessimisticReceiverProcess,
    ProtocolConfig,
    SenderBasedProcess,
)
from repro.sim.failures import CrashPlan
from repro.sim.network import Network
from repro.sim.kernel import Simulator


def run(protocol, *, rate=0.2, crashes=None, seed=0, retransmit=False):
    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1), initial_items=2),
        protocol=protocol,
        crashes=crashes,
        seed=seed,
        horizon=90.0,
        duplicate_rate=rate,
        config=ProtocolConfig(
            checkpoint_interval=8.0,
            flush_interval=2.5,
            retransmit_on_token=retransmit,
        ),
    )
    return run_experiment(spec)


def test_duplicate_rate_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, 2, duplicate_rate=1.5)
    with pytest.raises(ValueError):
        Network(sim, 2, duplicate_rate=-0.1)


def test_duplicates_are_actually_injected():
    result = run(PessimisticReceiverProcess, rate=0.3)
    assert result.network.duplicates_injected > 0


def test_pessimistic_suppresses_duplicates():
    result = run(PessimisticReceiverProcess, rate=0.3)
    assert result.total("duplicates_discarded") == (
        result.network.duplicates_injected
    )
    assert check_recovery(result).ok


def test_sender_based_suppresses_duplicates():
    result = run(SenderBasedProcess, rate=0.2,
                 crashes=CrashPlan().crash(20.0, 1, 2.0))
    assert result.total("duplicates_discarded") > 0
    assert check_recovery(result).ok


def test_plain_damani_garg_suppresses_duplicates():
    """Regression: duplicate suppression must not depend on the Remark-1
    retransmission extension -- a duplicating transport double-delivered
    to a plain DG process, violating exactly-once delivery."""
    result = run(DamaniGargProcess, rate=0.3, retransmit=False)
    assert result.network.duplicates_injected > 0
    assert result.total("duplicates_discarded") == (
        result.network.duplicates_injected
    )
    # Exactly-once: every unique send delivered once, every duplicate eaten.
    assert result.total("app_delivered") == result.total("app_sent")
    assert check_recovery(result).ok


def test_plain_damani_garg_dedup_survives_crashes():
    """Dedup state must survive restore/replay without retransmit_on_token
    (delivered ids are checkpointed and rebuilt from the log)."""
    for seed in range(3):
        result = run(
            DamaniGargProcess,
            rate=0.25,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
            seed=seed,
            retransmit=False,
        )
        verdict = check_recovery(result)
        assert verdict.ok, (seed, verdict.violations)
        assert result.total("duplicates_discarded") > 0


def test_damani_garg_with_dedup_survives_duplication_and_crashes():
    for seed in range(4):
        result = run(
            DamaniGargProcess,
            rate=0.2,
            crashes=CrashPlan().crash(20.0, 1, 2.0),
            seed=seed,
            retransmit=True,          # enables the dedup-id machinery
        )
        verdict = check_recovery(result)
        assert verdict.ok, (seed, verdict.violations)
        assert result.total("duplicates_discarded") > 0


def test_duplication_rate_zero_is_exact_passthrough():
    quiet = run(PessimisticReceiverProcess, rate=0.0, seed=5)
    assert quiet.network.duplicates_injected == 0
    assert quiet.total("duplicates_discarded") == 0


def test_app_outcome_unchanged_by_duplication():
    """With suppression, the computation is oblivious to duplicates...
    except that duplicate deliveries consume latency draws, so we compare
    against the *delivered message multiset*, not exact schedules."""
    clean = run(PessimisticReceiverProcess, rate=0.0, seed=7)
    noisy = run(PessimisticReceiverProcess, rate=0.25, seed=7)
    clean_counts = sorted(s.app_delivered for s in clean.stats)
    noisy_counts = sorted(s.app_delivered for s in noisy.stats)
    # Deliveries counted once per unique message in both runs... routing
    # decisions diverge with the perturbed schedule, so assert the runs
    # are merely both substantial and both verified.
    assert sum(noisy_counts) > 30 and sum(clean_counts) > 30
    assert check_recovery(noisy).ok
