"""Public-API surface tests: the names the README promises must exist,
be importable from their documented locations, and carry docstrings."""

import importlib

import pytest

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


# The frozen top-level surface.  Removing or renaming any of these names
# is a breaking change and must bump the major version; additions belong
# here too so the freeze stays exact.
FROZEN_TOP_LEVEL = [
    "AppEnvelope",
    "Application",
    "BaseRecoveryProcess",
    "ClockEntry",
    "CrashPlan",
    "DamaniGargProcess",
    "DeliveryOrder",
    "EventKind",
    "ExperimentResult",
    "ExperimentSpec",
    "FailureInjector",
    "FaultTolerantVectorClock",
    "History",
    "HistoryRecord",
    "LiveEnv",
    "Network",
    "NetworkMessage",
    "NullTracer",
    "PartitionPlan",
    "ProcessContext",
    "ProcessHost",
    "ProtocolConfig",
    "ProtocolStats",
    "RecordKind",
    "RecoveryToken",
    "RuntimeEnv",
    "SimEnv",
    "SimTrace",
    "Simulator",
    "TimerHandle",
    "TraceEvent",
    "Tracer",
    "run_experiment",
    "__version__",
]


def test_top_level_all_is_frozen():
    assert sorted(repro.__all__) == sorted(FROZEN_TOP_LEVEL)


def test_top_level_all_resolves():
    for name in repro.__all__:
        if name.startswith("__"):
            continue
        assert hasattr(repro, name), name


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.NoSuchName  # noqa: B018


def test_env_implementations_share_the_interface():
    from repro import LiveEnv, RuntimeEnv, SimEnv

    assert issubclass(SimEnv, RuntimeEnv)
    assert issubclass(LiveEnv, RuntimeEnv)


PUBLIC_MODULES = [
    "repro.core",
    "repro.core.ftvc",
    "repro.core.history",
    "repro.core.tokens",
    "repro.core.recovery",
    "repro.core.extensions",
    "repro.clocks",
    "repro.sim",
    "repro.storage",
    "repro.protocols",
    "repro.apps",
    "repro.dsm",
    "repro.analysis",
    "repro.harness",
    "repro.stress",
    "repro.exec",
    "repro.testing",
    "repro.runtime",
    "repro.runtime.env",
    "repro.live",
    "repro.service",
]


# The frozen client-facing service surface (see repro/service/__init__.py).
# Removing or renaming any of these is a breaking change and must bump
# the major version; additions belong here too so the freeze stays exact.
FROZEN_SERVICE = [
    "KVClient",
    "KVGet",
    "KVPut",
    "KVReplicate",
    "KVReply",
    "KVServiceApp",
    "KVSession",
    "RoutingTable",
    "ServiceConfig",
    "ServiceReplicaState",
    "ShardEndpoint",
    "ShardManager",
    "check_service_payload",
    "run_service_bench",
    "write_service_bench",
]


def test_service_all_is_frozen():
    import repro.service

    assert sorted(repro.service.__all__) == sorted(FROZEN_SERVICE)


def test_service_surface_resolves_and_documents_itself():
    import repro.service

    for name in FROZEN_SERVICE:
        obj = getattr(repro.service, name)
        assert obj.__doc__, f"repro.service.{name} lacks a docstring"


def test_kvstore_wire_types_are_the_service_ones():
    """The deprecation shims must hand back the canonical classes, so
    isinstance checks and codec round-trips agree across old and new
    import paths."""
    import warnings

    import repro.service

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        import repro.apps.kvstore as kvstore

        for name in ("KVPut", "KVGet", "KVReplicate", "KVReply"):
            assert getattr(kvstore, name) is getattr(repro.service, name)


def test_kvstore_wire_type_shim_warns():
    import warnings

    import repro.apps.kvstore as kvstore

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        kvstore.KVPut  # noqa: B018
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    )


# The frozen RuntimeEnv protocol surface: everything an engine must
# provide and everything a protocol may call.
FROZEN_RUNTIME_ENV = [
    "alive",
    "attach",
    "broadcast",
    "crash_count",
    "n",
    "now",
    "pid",
    "resume_timer",
    "schedule_after",
    "schedule_at",
    "send",
    "storage",
    "suspend_timer",
    "tracer",
]


def test_runtime_env_surface_is_frozen():
    from repro.runtime import RuntimeEnv

    for name in FROZEN_RUNTIME_ENV:
        assert hasattr(RuntimeEnv, name) or name in getattr(
            RuntimeEnv, "__annotations__", {}
        ), f"RuntimeEnv.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports_and_documents_itself(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and len(module.__doc__.strip()) > 40, module_name


@pytest.mark.parametrize(
    "module_name",
    ["repro.analysis", "repro.apps", "repro.exec", "repro.harness",
     "repro.protocols", "repro.sim", "repro.storage", "repro.dsm",
     "repro.core", "repro.service"],
)
def test_package_all_is_accurate(module_name):
    module = importlib.import_module(module_name)
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_readme_quickstart_names_exist():
    from repro import (                                    # noqa: F401
        CrashPlan,
        DamaniGargProcess,
        ExperimentSpec,
        ProtocolConfig,
        run_experiment,
    )
    from repro.analysis import check_recovery, check_theorem1  # noqa: F401
    from repro.apps import RandomRoutingApp                    # noqa: F401


def test_every_public_class_has_a_docstring():
    import inspect

    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
