"""Fault-Tolerant Vector Clock (paper Section 4, Figure 2).

Each entry of the clock is a ``(version, timestamp)`` pair:

- the *version* in entry ``i`` of process ``i``'s clock counts how many
  times ``i`` has failed and recovered;
- entry ``j`` holds the highest version of ``P_j`` the owner causally
  depends on, with the largest timestamp seen within that version.

Entries are ordered lexicographically: ``e1 < e2`` iff ``v1 < v2`` or
(``v1 == v2`` and ``ts1 < ts2``).  The clock rules (Figure 2):

- **initialize** -- every entry ``(0, 0)``, own entry ``(0, 1)``;
- **send** -- attach the current clock, then increment the own timestamp;
- **receive** -- component-wise maximum with the message's clock, then
  increment the own timestamp;
- **restart** (after a failure) -- increment the own *version*, reset the
  own timestamp to 0 (requires no lost state: only the version number,
  which is preserved via the post-restart checkpoint);
- **rollback** -- increment the own timestamp, leave the version alone.

Theorem 1: for *useful* states (neither lost nor orphan),
``s -> u  iff  s.clock < u.clock``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True, slots=True)
class ClockEntry:
    """One ``(version, timestamp)`` component.

    ``order=True`` gives exactly the paper's lexicographic order, because
    ``version`` is declared first.  ``slots=True`` because live clusters
    allocate one entry per changed clock component per message -- the
    per-instance dict is pure overhead on the hot path.
    """

    version: int = 0
    timestamp: int = 0

    def __post_init__(self) -> None:
        if self.version < 0 or self.timestamp < 0:
            raise ValueError(f"negative clock entry {self!r}")

    def __repr__(self) -> str:
        return f"({self.version},{self.timestamp})"


class FaultTolerantVectorClock:
    """Immutable FTVC; operations return new clocks.

    Immutability means clocks can be stored in checkpoints, log entries and
    message envelopes without defensive copying -- a rollback that restores
    a checkpointed clock cannot be corrupted by later clock updates.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Sequence[ClockEntry]) -> None:
        if not entries:
            raise ValueError("FTVC needs at least one entry")
        self._entries = tuple(entries)

    @classmethod
    def initial(cls, pid: int, n: int) -> "FaultTolerantVectorClock":
        """Figure 2 Initialize: all (0,0), own timestamp 1."""
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range 0..{n - 1}")
        entries = [ClockEntry(0, 0)] * n
        entries[pid] = ClockEntry(0, 1)
        return cls(entries)

    @classmethod
    def of(
        cls, pairs: Iterable[tuple[int, int]]
    ) -> "FaultTolerantVectorClock":
        """Build from ``(version, timestamp)`` pairs (tests, scenarios)."""
        return cls([ClockEntry(v, t) for v, t in pairs])

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, i: int) -> ClockEntry:
        return self._entries[i]

    def __iter__(self):
        return iter(self._entries)

    @property
    def entries(self) -> tuple[ClockEntry, ...]:
        return self._entries

    def pairs(self) -> tuple[tuple[int, int], ...]:
        """Entries as plain ``(version, timestamp)`` tuples."""
        return tuple((e.version, e.timestamp) for e in self._entries)

    # ------------------------------------------------------------------
    # Clock rules (Figure 2)
    # ------------------------------------------------------------------
    def tick(self, pid: int) -> "FaultTolerantVectorClock":
        """Increment the own timestamp (send / post-receive / rollback)."""
        entries = list(self._entries)
        e = entries[pid]
        entries[pid] = ClockEntry(e.version, e.timestamp + 1)
        return FaultTolerantVectorClock(entries)

    def merge(
        self, other: "FaultTolerantVectorClock"
    ) -> "FaultTolerantVectorClock":
        """Component-wise maximum under the lexicographic entry order."""
        if len(other) != len(self):
            raise ValueError("FTVC length mismatch")
        merged = tuple(
            max(a, b) for a, b in zip(self._entries, other._entries)
        )
        # Hot-path fast path: on a pipeline link the receiver's clock very
        # often already dominates (or is dominated by) the message clock;
        # returning the existing immutable instance skips an allocation
        # per delivery.
        if merged == self._entries:
            return self
        if merged == other._entries:
            return other
        return FaultTolerantVectorClock(merged)

    def restart(self, pid: int) -> "FaultTolerantVectorClock":
        """New incarnation: own version + 1, own timestamp reset to 0.

        Deliberately needs only the previous *version* number, never the
        (possibly lost) previous timestamp -- the property the paper relies
        on for asynchronous restart.
        """
        entries = list(self._entries)
        entries[pid] = ClockEntry(entries[pid].version + 1, 0)
        return FaultTolerantVectorClock(entries)

    # ------------------------------------------------------------------
    # Partial order (Section 4.1)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultTolerantVectorClock):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __le__(self, other: "FaultTolerantVectorClock") -> bool:
        if len(other) != len(self):
            raise ValueError("FTVC length mismatch")
        return all(a <= b for a, b in zip(self._entries, other._entries))

    def __lt__(self, other: "FaultTolerantVectorClock") -> bool:
        """The paper's ``c1 < c2``: every entry <=, some entry strictly <."""
        return self <= other and self != other

    def concurrent_with(self, other: "FaultTolerantVectorClock") -> bool:
        return not (self <= other) and not (other <= self)

    # ------------------------------------------------------------------
    # Delta encoding (wire fast path)
    # ------------------------------------------------------------------
    def diff(
        self, base: "FaultTolerantVectorClock"
    ) -> tuple[tuple[int, int, int], ...]:
        """Entries differing from ``base`` as ``(index, version, timestamp)``.

        A sender that knows the last clock it put on a link can transmit
        only this diff; between consecutive messages on one link usually
        just the sender's own entry moved, so the diff is O(1) where the
        full clock is O(n).
        """
        if len(base) != len(self):
            raise ValueError("FTVC length mismatch")
        return tuple(
            (i, e.version, e.timestamp)
            for i, (b, e) in enumerate(zip(base._entries, self._entries))
            if e != b
        )

    @classmethod
    def from_delta(
        cls,
        base: "FaultTolerantVectorClock",
        changes: Iterable[tuple[int, int, int]],
    ) -> "FaultTolerantVectorClock":
        """Invert :meth:`diff`: apply ``changes`` on top of ``base``."""
        entries = list(base._entries)
        for i, version, timestamp in changes:
            entries[i] = ClockEntry(version, timestamp)
        return cls(entries)

    # ------------------------------------------------------------------
    # Overhead accounting (Section 6.9)
    # ------------------------------------------------------------------
    def piggyback_entries(self) -> int:
        """Number of scalar timestamps piggybacked on a message: O(n)."""
        return len(self._entries)

    def wire_size_bits(self, timestamp_bits: int = 32) -> int:
        """Estimated encoded size.

        Each entry needs ``timestamp_bits`` for the timestamp plus
        ``ceil(log2(f + 1))`` bits for the version, where ``f`` is the
        largest version in the clock -- the paper's "log f bits" claim.
        """
        max_version = max(e.version for e in self._entries)
        version_bits = max(1, (max_version + 1 - 1).bit_length())
        return len(self._entries) * (timestamp_bits + version_bits)

    def delta_wire_size_bits(
        self, base: "FaultTolerantVectorClock", timestamp_bits: int = 32
    ) -> int:
        """Estimated encoded size of :meth:`diff` against ``base``.

        Per changed entry: ``ceil(log2 n)`` index bits, the same version
        bits as :meth:`wire_size_bits`, and ``timestamp_bits``; plus a
        change-count field.  The counterpart of the full-clock estimate
        for Section 6.9-style accounting of the delta scheme.
        """
        changes = self.diff(base)
        n = len(self._entries)
        index_bits = max(1, (n - 1).bit_length())
        max_version = max((v for _, v, _ in changes), default=0)
        version_bits = max(1, max_version.bit_length())
        count_bits = max(1, n.bit_length())
        return count_bits + len(changes) * (
            index_bits + version_bits + timestamp_bits
        )

    @staticmethod
    def _uvarint_size(value: int) -> int:
        """Bytes a LEB128 varint needs for ``value`` (>= 0)."""
        return max(1, (value.bit_length() + 6) // 7)

    def wire_size_bytes(self) -> int:
        """Exact byte cost of the full clock under the live binary codec:
        a tag byte, a varint entry count, and one varint
        ``(version, timestamp)`` pair per entry."""
        size = self._uvarint_size
        return (
            1
            + size(len(self._entries))
            + sum(
                size(e.version) + size(e.timestamp) for e in self._entries
            )
        )

    def delta_wire_size_bytes(self, base: "FaultTolerantVectorClock") -> int:
        """Exact byte cost of the delta frame against ``base`` under the
        live binary codec: a tag byte, a varint change count, and one
        varint ``(index, version, timestamp)`` triple per changed entry."""
        changes = self.diff(base)
        size = self._uvarint_size
        return (
            1
            + size(len(changes))
            + sum(size(i) + size(v) + size(t) for i, v, t in changes)
        )

    def __repr__(self) -> str:
        inner = " ".join(repr(e) for e in self._entries)
        return f"FTVC[{inner}]"
