"""The paper's primary contribution.

- :mod:`repro.core.ftvc` -- the Fault-Tolerant Vector Clock (Section 4,
  Figure 2): a vector clock whose entries are ``(version, timestamp)``
  pairs, maintaining causality between useful states across failures.
- :mod:`repro.core.history` -- the history mechanism (Section 5, Figure 3):
  per-(process, version) records that yield exact orphan and
  obsolete-message tests (Lemmas 3 and 4).
- :mod:`repro.core.tokens` -- recovery tokens broadcast after a failure.
- :mod:`repro.core.recovery` -- the complete asynchronous recovery protocol
  (Section 6, Figure 4).
- :mod:`repro.core.extensions` -- the paper's Section 6.5 remarks made
  concrete: send-history retransmission, output commit, and log/checkpoint
  garbage collection.
"""

from repro.core.ftvc import ClockEntry, FaultTolerantVectorClock
from repro.core.history import History, HistoryRecord, RecordKind
from repro.core.recovery import AppEnvelope, DamaniGargProcess
from repro.core.tokens import RecoveryToken

__all__ = [
    "AppEnvelope",
    "ClockEntry",
    "DamaniGargProcess",
    "FaultTolerantVectorClock",
    "History",
    "HistoryRecord",
    "RecordKind",
    "RecoveryToken",
]
