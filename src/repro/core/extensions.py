"""Section 6.5 extensions made concrete.

The paper's closing remarks note two pieces every practical optimistic
system needs; this module provides both on top of the core protocol:

**Output commit** -- "Before committing an output to the environment, a
process must make sure that it will never rollback the current state or
lose it in a failure."  A state is *permanently safe* once its entire
causal past is on stable storage: for each clock entry ``(v, t)`` of
process ``j`` either

- a token for ``(j, v)`` is known and ``t`` is at or below the restoration
  point (the restored prefix was replayed from stable storage, so it can
  never be lost again), or
- ``v`` is ``j``'s current version and ``t`` is within ``j``'s flushed
  frontier.

Outputs are held (per process, with stable dedup keys so crashes cannot
double-commit) until the test passes.

**Garbage collection** (Remark 2, after Wang et al. [28]) -- a checkpoint
whose clock is permanently safe can never be the target of a future
rollback scan, so every older checkpoint and the log prefix below it can
be reclaimed.

Both are driven by a :class:`StabilityCoordinator`: a control-plane object
that periodically collects each process's flushed frontier (one clock
entry per process -- the same O(n) budget as the paper's clock) and hands
the vector to every live process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.ftvc import ClockEntry
from repro.storage.intents import CrashPointReached


@dataclass
class StabilityStats:
    """What the coordinator accomplished, for the benchmarks."""

    rounds: int = 0
    outputs_committed: int = 0
    checkpoints_collected: int = 0
    log_entries_collected: int = 0


class StabilityCoordinator:
    """Periodic stability sweep over a set of Damani-Garg processes.

    The coordinator models the paper's suggested control plane: it costs
    one frontier entry per process per sweep and never touches protocol
    decisions -- it only unlocks output commit and space reclamation.
    Frontiers of crashed processes are served from the last report, which
    is sound: a flushed prefix remains recoverable forever.
    """

    def __init__(
        self,
        sim: Any,
        protocols,
        *,
        interval: float = 5.0,
    ) -> None:
        # ``sim`` is any scheduler with ``schedule(delay, cb, label=)`` --
        # the simulator kernel or a live event loop adapter.  Duck-typed so
        # the core layer stays free of engine imports.
        self.sim = sim
        self.protocols = list(protocols)
        self.interval = interval
        self.stats = StabilityStats()
        self._cached: dict[int, ClockEntry] = {}
        self._enabled = False

    def start(self) -> None:
        self._enabled = True
        self._schedule()

    def stop(self) -> None:
        self._enabled = False

    def _schedule(self) -> None:
        self.sim.schedule(self.interval, self._sweep, label="stability")

    def sweep_now(self) -> dict[int, ClockEntry]:
        """One synchronous sweep; returns the frontier used (for tests)."""
        for protocol in self.protocols:
            if protocol.env.alive:
                self._cached[protocol.pid] = protocol.stable_frontier()
        frontier = dict(self._cached)
        for protocol in self.protocols:
            if protocol.env.alive:
                try:
                    committed, ckpts, entries = protocol.apply_stability(
                        frontier
                    )
                except CrashPointReached as exc:
                    # An armed crash point fired inside this process's
                    # compaction sweep: that process crashes; the sweep
                    # continues for everyone else.
                    protocol.env.on_crash_point(exc)
                    continue
                self.stats.outputs_committed += committed
                self.stats.checkpoints_collected += ckpts
                self.stats.log_entries_collected += entries
        self.stats.rounds += 1
        return frontier

    def _sweep(self) -> None:
        if not self._enabled:
            return
        self.sweep_now()
        self._schedule()
