"""The Damani-Garg asynchronous recovery protocol (paper Section 6, Fig. 4).

One :class:`DamaniGargProcess` runs per application process and implements
the four protocol actions exactly as published:

**Receive message** (6.1)
    Discard if obsolete (history token record contradicts the message's
    clock, Lemma 4); postpone if the clock mentions a version for which an
    earlier version's token has not arrived; otherwise log to the volatile
    buffer, update history and FTVC, and run the application handler.

**Restart after a failure** (6.2)
    Restore the last checkpoint, replay the stable log, broadcast a token
    ``(failed version, restored timestamp)``, increment the version, reset
    the timestamp, update the history, and take a fresh checkpoint (so the
    version number survives another failure).  Recovery is completely
    asynchronous: nothing here waits for any other process.

**Receive token** (6.3)
    Synchronously log the token; if the history shows a message record for
    the failed version above the restoration point, the process is an
    orphan (Lemma 3) and rolls back; either way the token record is
    installed and messages postponed for this token are re-examined.

**Rollback** (6.4)
    Flush the log (a non-failed process loses nothing), restore the maximum
    non-orphan checkpoint, replay logged messages up to the orphan point,
    discard the orphan suffix of checkpoints and log, and bump the FTVC
    timestamp (the version is untouched: rollback is not a failure).

Extensions from Section 6.5 are opt-in via
:class:`~repro.protocols.base.ProtocolConfig`:

- ``retransmit_on_token`` -- Remark 1: the token carries the full clock and
  peers retransmit logged sends concurrent with the restored state, so
  messages received-but-unlogged at the failure are not lost forever.

Per-message dedup ids give every process duplicate suppression
unconditionally (exactly-once delivery on an at-least-once transport);
``retransmit_on_token`` only controls whether the send history needed for
retransmission is kept.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.core.ftvc import ClockEntry, FaultTolerantVectorClock
from repro.core.history import History
from repro.core.tokens import RecoveryToken
from repro.protocols.base import BaseRecoveryProcess, ProtocolConfig
from repro.runtime.app import Application
from repro.runtime.env import RuntimeEnv
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind
from repro.storage import intents


@dataclass(frozen=True)
class AppEnvelope:
    """What actually travels on the wire for an application message."""

    payload: Any
    clock: FaultTolerantVectorClock
    dedup_id: tuple[int, int]       # (sender pid, sender send sequence)


@dataclass(frozen=True)
class _SendLogEntry:
    """Send-history entry kept for the Remark-1 retransmission extension."""

    dst: int
    envelope: AppEnvelope
    sender_uid: tuple[int, int, int]


@dataclass(frozen=True)
class _ReplayedNetworkMessage:
    """A log entry re-presented to the receive path after a rollback
    truncated it (duck-typed stand-in for a NetworkMessage)."""

    msg_id: int
    src: int
    payload: AppEnvelope
    kind: str = "app"


class DamaniGargProcess(BaseRecoveryProcess):
    """The paper's protocol for one process."""

    name = "Damani-Garg"
    requires_fifo = False
    asynchronous_recovery = True
    tolerates_concurrent_failures = True

    def __init__(
        self,
        env: RuntimeEnv,
        app: Application,
        config: ProtocolConfig | None = None,
    ) -> None:
        super().__init__(env, app, config)
        self.clock = FaultTolerantVectorClock.initial(self.pid, self.n)
        self.history = History(self.pid, self.n)
        # Volatile state, all lost in a crash:
        self._held: list[NetworkMessage] = []     # postponed messages
        self._send_seq = 0                        # dedup id source
        self._delivered_ids: set[tuple[int, int]] = set()
        self._send_log: list[_SendLogEntry] = []  # Remark-1 send history
        # Last clock put on the wire per destination, the delta-encoding
        # base a link-level encoder would hold.  Volatile on purpose: a
        # crash (like a live reconnect) resets every link to the
        # full-clock fallback.
        self._wire_clock_sent: dict[int, FaultTolerantVectorClock] = {}
        # Debug/analysis map: state uid -> FTVC at state creation.  Not part
        # of the protocol; the Theorem 1 oracle reads it.
        self.clock_by_uid: dict[tuple[int, int, int], FaultTolerantVectorClock] = {
            self.executor.current_uid: self.clock
        }
        # Section 6.5 extension state (driven by a StabilityCoordinator):
        self._stable_own = self.clock[self.pid]   # flushed frontier entry
        # Decentralised stability (config.gossip_stability): last frontier
        # entry reported by each peer.  Volatile: after a crash the next
        # gossip round repopulates it (a stale loss only delays GC).
        self._frontier_reports: dict[int, ClockEntry] = {}
        # pending outputs: (dedup key, clock at emission, value); volatile.
        self._pending_outputs: list[
            tuple[tuple, FaultTolerantVectorClock, Any]
        ] = []
        if self.config.commit_outputs:
            # Commit keys are stable: a crash between commit and replay
            # must not double-commit (the environment saw the value).
            self.storage.put("committed_outputs", set())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._register_send(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)
        # Checkpoint 0 is taken after bootstrap so a restart never needs to
        # re-run the (unreplayable) initial sends.
        self.take_checkpoint()
        self.start_periodic_tasks()

    def on_network_message(self, msg: NetworkMessage) -> None:
        if msg.kind == "token":
            self._receive_token(msg.payload)
        elif msg.kind == "app":
            self._receive_app(msg)
        elif msg.kind == "frontier":
            self._receive_frontier(*msg.payload)
        else:
            raise ValueError(f"unexpected message kind {msg.kind!r}")

    def on_crash(self) -> None:
        lost = self.storage.on_crash()
        self._held.clear()
        self._send_log.clear()
        self._delivered_ids.clear()
        self._pending_outputs.clear()
        self._wire_clock_sent.clear()
        self._frontier_reports.clear()
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.CUSTOM,
                self.pid,
                what="volatile_lost",
                unlogged=lost,
            )

    def on_restart(self) -> None:
        """Section 6.2: restore, replay, token, new version, checkpoint."""
        # Heal any multi-step durable transition the failed incarnation
        # left in flight before reading the image (no-op when clean).
        intents.heal(self.storage)
        self.stats.restarts += 1
        if len(self.storage.checkpoints) == 0:
            self._fresh_start_after_crash()
            return
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTORE,
                self.pid,
                ckpt_uid=ckpt.snapshot["uid"],
                reason="restart",
            )
        with self.obs.span("dg.restart_replay_wall_s"):
            self._restore_checkpoint(ckpt)
            replayed = 0
            for entry in self.storage.log.stable_entries(ckpt.log_position):
                self._replay_entry(entry)
                replayed += 1
        # The restored checkpoint can predate the incarnation that just
        # failed (a rollback may have discarded every later checkpoint), in
        # which case replay reconstructed our own entry in an *older*
        # version's terms.  The token must condemn the version we actually
        # ran: adopt the *version* from the durable own-entry frontier,
        # which every stable write keeps current.  Only the version -- no
        # state of a later version was reconstructible, so timestamp 0 is
        # the sound restoration point for it; adopting the frontier's
        # timestamp within the replayed version would under-condemn states
        # the rollback truncated out of the stable log.
        durable_own = self.storage.get("stable_own")
        if (
            durable_own is not None
            and durable_own.version > self.clock[self.pid].version
        ):
            entries = list(self.clock.entries)
            entries[self.pid] = ClockEntry(durable_own.version, 0)
            self.clock = FaultTolerantVectorClock(entries)
            self._stable_own = entries[self.pid]
        failed_version = self.clock[self.pid].version
        restored_ts = self.clock[self.pid].timestamp
        token = RecoveryToken(
            origin=self.pid,
            version=failed_version,
            timestamp=restored_ts,
            full_clock=self.clock if self.config.retransmit_on_token else None,
        )
        # Token log + restart checkpoint are two durable steps: a crash
        # between them is healed by aborting (on_restart re-derives the
        # same token and the (origin, version) dedupe absorbs the relog).
        intent = self.storage.begin_intent(
            intents.RESTART,
            token=(token.origin, token.version, token.timestamp),
        )
        self.storage.advance_intent(intent, "token_logged")
        self.storage.log_token(
            token, dedupe_key=(token.origin, token.version)
        )
        self.env.broadcast(token, kind="token")
        self.stats.tokens_sent += self.n - 1
        self.stats.control_sent += self.n - 1
        self.obs.counter("dg.tokens_broadcast", self.n - 1)
        self.obs.counter("dg.restarts")
        if self.obs.enabled:
            self.obs.event(
                "dg.restart",
                pid=self.pid,
                failed_version=failed_version,
                replayed=replayed,
            )
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.TOKEN_SEND,
                self.pid,
                version=failed_version,
                timestamp=restored_ts,
            )
        self.clock = self.clock.restart(self.pid)
        self.history.observe_token(token)
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, self.clock[self.pid].version
        )
        self.clock_by_uid[self.executor.current_uid] = self.clock
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTART,
                self.pid,
                failed_version=failed_version,
                new_version=self.clock[self.pid].version,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                restored_ts=restored_ts,
                replayed=replayed,
            )
        # Memory-only commit: the restart checkpoint's writes persist the
        # intent-free image, making the transition durably committed.
        self.storage.commit_intent(intent)
        self.take_checkpoint()
        # Tokens are logged synchronously precisely so a failure cannot
        # forget them; re-apply every logged token to the restored history
        # (re-application is idempotent and may trigger a further rollback
        # if the restored suffix is an orphan of some other failure).
        for logged in self.storage.tokens:
            self._apply_token(logged)
        self._represent_recovered_entries()
        self._sample_obs_gauges()

    def _fresh_start_after_crash(self) -> None:
        """Boot again when the failed incarnation left *nothing* durable.

        Only reachable via a crash point armed inside the initial
        checkpoint transition: ``on_start`` is synchronous, so no
        delivery can interleave between bootstrap and checkpoint 0, and
        the lost interval is exactly the deterministic bootstrap.
        Nothing unreconstructible was lost -- reset the volatile
        protocol state and run ``on_start`` again.  The re-sent
        bootstrap messages carry the original dedup ids (the sequence
        restarts at zero), so receivers that consumed the first copies
        absorb the duplicates, and no token is needed.
        """
        self.clock = FaultTolerantVectorClock.initial(self.pid, self.n)
        self.history = History(self.pid, self.n)
        self._send_seq = 0
        self._stable_own = self.clock[self.pid]
        self.clock_by_uid = {self.executor.current_uid: self.clock}
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.CUSTOM,
                self.pid,
                what="fresh_start",
            )
        self.on_start()

    def _represent_recovered_entries(self) -> None:
        """Hand back log entries preserved by a healed mid-crash rollback.

        The startup crawler never deletes what a rolled-forward rollback
        truncates: the entries wait under ``RECOVERED_ENTRIES_KEY`` and
        are re-presented here as ordinary network messages.  Delivery
        dedup absorbs any the anchor state already consumed; orphans are
        discarded by the usual obsolete-test.  The key is emptied first
        so a crash mid-re-presentation equals ordinary volatile loss
        (Remark 1 retransmission recovers anything that mattered).
        """
        pending = self.storage.get(intents.RECOVERED_ENTRIES_KEY)
        if not pending:
            return
        self.storage.put(intents.RECOVERED_ENTRIES_KEY, [])
        for entry in pending:
            clock, dedup_id = entry.meta[0], entry.meta[1]
            self._receive_app(
                _ReplayedNetworkMessage(
                    msg_id=entry.msg_id,
                    src=entry.src,
                    payload=self._rebuild_envelope(
                        entry.payload, clock, dedup_id
                    ),
                )
            )

    def _sample_obs_gauges(self) -> None:
        """Per-process gauge samples (history memory, postponed queue).

        ``history.size()`` is the live O(n·f) quantity of Section 6.9;
        sampling it at every history mutation gives the obs layer its
        trajectory and peak.  Guarded: the size computation is not free.
        """
        if self.obs.enabled:
            self.obs.gauge(
                f"dg.history_records.p{self.pid}", self.history.size()
            )
            self.obs.gauge(
                f"dg.postponed_depth.p{self.pid}", len(self._held)
            )

    # ------------------------------------------------------------------
    # Receive message (Section 6.1)
    # ------------------------------------------------------------------
    def _receive_app(self, msg: NetworkMessage) -> None:
        envelope: AppEnvelope = msg.payload
        if self.history.is_obsolete(envelope.clock):
            self.stats.app_discarded += 1
            self.obs.counter("dg.obsolete_discarded")
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.DISCARD,
                    self.pid,
                    msg_id=msg.msg_id,
                    reason="obsolete",
                )
            return
        missing = self.history.missing_tokens(envelope.clock)
        if missing:
            self._held.append(msg)
            self.stats.app_postponed += 1
            self.obs.counter("dg.postponed")
            if self.obs.enabled:
                self.obs.gauge(
                    f"dg.postponed_depth.p{self.pid}", len(self._held)
                )
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.POSTPONE,
                    self.pid,
                    msg_id=msg.msg_id,
                    awaiting=missing,
                )
            return
        if envelope.dedup_id in self._delivered_ids:
            self.stats.duplicates_discarded += 1
            self.obs.counter("dg.duplicates_discarded")
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.DISCARD,
                    self.pid,
                    msg_id=msg.msg_id,
                    reason="duplicate",
                )
            return
        self._deliver(msg)

    def _deliver(self, msg: NetworkMessage) -> None:
        envelope: AppEnvelope = msg.payload
        self.history.observe_message_clock(envelope.clock)
        self.clock = self.clock.merge(envelope.clock).tick(self.pid)
        self._delivered_ids.add(envelope.dedup_id)
        self.stats.app_delivered += 1
        self._sample_obs_gauges()
        ctx = self.executor.execute(envelope.payload, msg_id=msg.msg_id)
        self.clock_by_uid[self.executor.current_uid] = self.clock
        # Log after execution so the entry can carry the uid of the state it
        # created (needed for identity-preserving replay).  Receive and log
        # are a single atomic simulator event, so this ordering is
        # unobservable to the rest of the system.
        # The entry snapshots the post-delivery *receiver* clock alongside
        # the message clock: replay restores it verbatim, so clock events
        # that happened between deliveries (a rollback's tick, a restart's
        # version bump) are reproduced even though they leave no log entry
        # of their own.  Recomputing merge+tick from the checkpoint instead
        # would silently understate replayed clocks whenever recovery
        # interleaved with the logged suffix.
        self.storage.log.append(
            msg.msg_id,
            msg.src,
            envelope.payload,
            meta=(
                envelope.clock,
                envelope.dedup_id,
                self.executor.current_uid,
                self.clock,
            ),
        )
        for send in ctx.sends:
            self._register_send(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)
        self.note_delivery_for_checkpoint()

    def _replay_entry(self, entry) -> None:
        """Re-execute one logged receive; sends and outputs are suppressed
        (piecewise determinism guarantees they equal the originals)."""
        clock, dedup_id, uid, state_clock = entry.meta
        self.history.observe_message_clock(clock)
        # Restore the logged post-delivery clock rather than recomputing
        # merge+tick: the logged value embeds every clock adjustment that
        # recovery events made between entries (see the append site).
        self.clock = state_clock
        self._delivered_ids.add(dedup_id)
        self.stats.replayed += 1
        ctx = self.executor.execute(
            entry.payload, msg_id=entry.msg_id, replay=True, uid=uid
        )
        # First write wins: a same-incarnation replay reconstructs the
        # original clock exactly, but a post-restart replay of an entry
        # from a later incarnation rebuilds the state content under an
        # older own version -- the clock recorded at the original
        # delivery is the truthful one for the Theorem 1 oracle.
        self.clock_by_uid.setdefault(self.executor.current_uid, self.clock)
        for send in ctx.sends:
            self._register_send(send.dst, send.payload, transmit=False)
        self.emit_outputs(ctx.outputs, replay=True)

    def inject_app_send(self, dst: int, payload: Any) -> None:
        """Environment-driven send outside any delivery or bootstrap.

        The entry point for open-loop load generation
        (:mod:`repro.live.load`): the source hands jobs to the protocol at
        its own cadence and each goes out with the current clock and a
        fresh dedup id, exactly like a bootstrap send.  Like bootstrap
        sends, injected sends are not replayable from the log -- ones
        newer than the last checkpoint are lost if this process fails --
        so a load scenario must not crash the injecting process.  That is
        sound for the same reason bootstrap is: a process that never
        *receives* application messages acquires no foreign clock
        dependencies and can never become an orphan.
        """
        self._register_send(dst, payload, transmit=True)

    def _register_send(self, dst: int, payload: Any, *, transmit: bool) -> None:
        """Attach the current clock, remember send history, tick.

        With ``transmit=False`` (replay) the message is not re-sent but the
        clock and the dedup sequence advance exactly as they originally did,
        keeping replayed state byte-identical to the lost original.
        """
        envelope = AppEnvelope(
            payload=payload,
            clock=self.clock,
            dedup_id=(self.pid, self._send_seq),
        )
        self._send_seq += 1
        if self.config.retransmit_on_token:
            self._send_log.append(
                _SendLogEntry(
                    dst=dst,
                    envelope=envelope,
                    sender_uid=self.executor.current_uid,
                )
            )
        if transmit:
            sent = self.env.send(dst, envelope, kind="app")
            self.stats.app_sent += 1
            self.stats.piggyback_entries += envelope.clock.piggyback_entries()
            bits = envelope.clock.wire_size_bits()
            self.stats.piggyback_bits += bits
            self.obs.counter("dg.piggyback_bytes", bits / 8.0)
            self._note_wire_cost(dst, envelope.clock)
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.SEND,
                    self.pid,
                    msg_id=sent.msg_id,
                    dst=dst,
                    uid=self.executor.current_uid,
                    dedup=envelope.dedup_id,
                )
        self.clock = self.clock.tick(self.pid)

    def _note_wire_cost(self, dst: int, clock: FaultTolerantVectorClock) -> None:
        """Account the full-clock versus delta wire cost of one send.

        Mirrors what a per-link delta encoder pays: the first clock on a
        link (or after a crash reset) goes out full; afterwards only the
        diff against the last clock sent to ``dst``.  Deterministic stats
        always; exact byte counters (JSON text vs binary varints) only
        when the obs layer is on, since they cost a serialization.
        """
        base = self._wire_clock_sent.get(dst)
        if base is None:
            self.stats.piggyback_delta_bits += clock.wire_size_bits()
        else:
            self.stats.piggyback_delta_bits += clock.delta_wire_size_bits(base)
        if self.obs.enabled:
            full_json = len(
                json.dumps(
                    [[v, t] for v, t in clock.pairs()],
                    separators=(",", ":"),
                )
            )
            if base is None:
                delta_bytes = clock.wire_size_bytes()
                self.obs.counter("dg.wire_full_fallbacks")
            else:
                delta_bytes = clock.delta_wire_size_bytes(base)
            self.obs.counter("dg.wire_bytes_full_json", full_json)
            self.obs.counter("dg.wire_bytes_delta", delta_bytes)
            self.obs.counter("dg.wire_clocks_sent")
        self._wire_clock_sent[dst] = clock

    # ------------------------------------------------------------------
    # Receive token (Section 6.3)
    # ------------------------------------------------------------------
    def _receive_token(self, token: RecoveryToken) -> None:
        self.stats.tokens_received += 1
        # Synchronous write, before acting; a duplicate of an
        # already-logged (origin, version) is skipped -- the durable copy
        # is identical, so the fsync and the log growth are both saved.
        appended = self.storage.log_token(
            token, dedupe_key=(token.origin, token.version)
        )
        if appended:
            self.stats.sync_log_writes += 1
        self.obs.counter("dg.tokens_received")
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.TOKEN_DELIVER,
                self.pid,
                origin=token.origin,
                version=token.version,
                timestamp=token.timestamp,
            )
        self._apply_token(token)
        self._release_held()

    def _apply_token(self, token: RecoveryToken) -> None:
        """Orphan test, optional rollback, then install the token record."""
        leftovers: list = []
        if self.history.orphaned_by(token):
            self.obs.counter("dg.orphans_detected")
            leftovers = self._rollback(token)
        self.history.observe_token(token)
        self._sample_obs_gauges()
        if (
            self.config.retransmit_on_token
            and token.full_clock is not None
            and token.origin != self.pid
        ):
            self._retransmit_for(token)
        # Section 6.5 Remark 1: "no message is lost" in a rollback.  Log
        # entries past the orphan point were undone, but the non-obsolete
        # ones among them are still perfectly good messages whose senders
        # will never resend them; feed them back through the normal receive
        # path (which re-checks obsoleteness against the now-installed
        # token record and discards the rest).
        for entry in leftovers:
            clock, dedup_id = entry.meta[0], entry.meta[1]
            self._receive_app(
                _ReplayedNetworkMessage(
                    msg_id=entry.msg_id,
                    src=entry.src,
                    payload=self._rebuild_envelope(
                        entry.payload, clock, dedup_id
                    ),
                )
            )

    def _rebuild_envelope(self, payload, clock, dedup_id):
        """Reconstruct the wire envelope for a re-presented log entry
        (subclasses with richer wire formats override this)."""
        return AppEnvelope(payload=payload, clock=clock, dedup_id=dedup_id)

    def _release_held(self) -> None:
        """Re-examine postponed messages after a token arrived."""
        held, self._held = self._held, []
        for msg in held:
            self._receive_app(msg)
        if self.obs.enabled:
            self.obs.gauge(
                f"dg.postponed_depth.p{self.pid}", len(self._held)
            )

    # ------------------------------------------------------------------
    # Rollback (Section 6.4)
    # ------------------------------------------------------------------
    def _rollback(self, token: RecoveryToken) -> list:
        """Roll back to the latest non-orphan state.

        Returns the truncated log entries (received after the orphan
        point) so the caller can re-present the still-valid ones to the
        receive path once the token record is installed.
        """
        own_before = self.clock[self.pid]
        ckpt = self.storage.checkpoints.latest_satisfying(
            lambda c: c.extras["history"].survives_token(token)
        )
        if ckpt is None:
            # Cannot happen: the initial checkpoint's history holds at most
            # (mes, 0, 0/1) per process, which never exceeds a restoration
            # point for its own version 0 and has no record for higher
            # versions.
            raise RuntimeError(
                f"P{self.pid}: no non-orphan checkpoint for {token!r}"
            )
        position = ckpt.log_position
        # Pre-compute the complete transition so the write-ahead intent
        # names the full target state before any durable step runs -- a
        # crash anywhere inside the rollback then rolls *forward* to the
        # same image.  The orphan boundary scans stable+volatile in
        # receive order (the flush below moves the volatile suffix
        # without reordering, so this equals the post-flush stable scan),
        # and the restored own-entry mirrors the post-rollback clock
        # rule: each entry's meta[3] is the receiver clock right after
        # its delivery, so the last replayed entry's own-component plus
        # the rollback tick is exactly what _set_stable_own will persist.
        boundary = position
        for entry in self.storage.log.all_entries(position):
            e = entry.meta[0][token.origin]
            if e.version == token.version and e.timestamp > token.timestamp:
                break   # first orphan message: stop before it
            boundary += 1
        if boundary > position:
            replayed_own = self.storage.log.entry(boundary - 1).meta[3][self.pid]
        else:
            replayed_own = ckpt.extras["clock"][self.pid]
        if replayed_own.version == own_before.version:
            stable_own_after = ClockEntry(
                replayed_own.version, replayed_own.timestamp + 1
            )
        else:
            stable_own_after = ClockEntry(
                own_before.version, own_before.timestamp + 1
            )
        intent = self.storage.begin_intent(
            intents.ROLLBACK,
            token=(token.origin, token.version, token.timestamp),
            anchor_ckpt_id=ckpt.ckpt_id,
            truncate_at=boundary,
            stable_own=stable_own_after,
        )
        # A non-failed process loses nothing: log everything first.
        self.storage.advance_intent(intent, "log_flushed")
        self.flush_log()
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTORE,
                self.pid,
                ckpt_uid=ckpt.snapshot["uid"],
                reason="rollback",
            )
        with self.obs.span("dg.rollback_wall_s"):
            self._restore_checkpoint(ckpt)
            self.storage.advance_intent(intent, "checkpoints_discarded")
            self.storage.checkpoints.discard_after(ckpt)
            replayed = 0
            for entry in self.storage.log.stable_entries(position):
                if entry.index >= boundary:
                    break
                self._replay_entry(entry)
                replayed += 1
        leftovers = list(self.storage.log.stable_entries(boundary))
        self.storage.advance_intent(intent, "log_truncated")
        discarded = self.storage.log.truncate(boundary)
        if self.clock[self.pid].version == own_before.version:
            # Figure 4's rollback rule: bump the timestamp, keep the version.
            self.clock = self.clock.tick(self.pid)
        else:
            # The surviving checkpoint predates one of our own restarts, so
            # the restored clock carries an older version.  Regressing to it
            # would mint version-v timestamps beyond the restoration point
            # we already announced for v (making our own token declare our
            # fresh states obsolete).  The version must never move backwards:
            # continue the *current* incarnation instead, with a timestamp
            # above everything it has used.
            entries = list(self.clock.entries)
            entries[self.pid] = type(own_before)(
                own_before.version, own_before.timestamp + 1
            )
            self.clock = FaultTolerantVectorClock(entries)
        restored_uid = self.executor.new_recovery_state()
        self.clock_by_uid[self.executor.current_uid] = self.clock
        # Memory-only commit: the stable_own write below persists the
        # intent-free image, making the rollback durably committed.
        self.storage.commit_intent(intent)
        # The rollback began with a full flush, so the post-rollback own
        # entry is stable-reconstructible; persist it (the rollback may
        # be about to discard the only checkpoints recording our version).
        self._set_stable_own(self.clock[self.pid])
        # Tokens are durable facts; reinstate every logged one over the
        # restored (older) history.
        for logged in self.storage.tokens:
            self.history.observe_token(logged)
        self.stats.note_rollback(token.origin, token.version)
        self.obs.counter("dg.rollbacks")
        if self.obs.enabled:
            self.obs.event(
                "dg.rollback",
                pid=self.pid,
                origin=token.origin,
                version=token.version,
                replayed=replayed,
                discarded=discarded,
            )
        self._sample_obs_gauges()
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.ROLLBACK,
                self.pid,
                origin=token.origin,
                version=token.version,
                timestamp=token.timestamp,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
                discarded_log_entries=discarded,
            )
        return leftovers

    # ------------------------------------------------------------------
    # Checkpoint plumbing
    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        extras: dict[str, Any] = {
            "clock": self.clock,
            "history": self.history.snapshot(),
            "send_seq": self._send_seq,
            # Always checkpointed: duplicate suppression must survive a
            # rollback/restart even without the retransmission extension
            # (the transport may be at-least-once regardless).
            "delivered_ids": set(self._delivered_ids),
        }
        if self.config.retransmit_on_token:
            extras["send_log"] = list(self._send_log)
        return extras

    def _restore_checkpoint(self, ckpt) -> None:
        self.executor.restore(ckpt.snapshot)
        self.clock = ckpt.extras["clock"]
        self.history = ckpt.extras["history"].snapshot()
        self._send_seq = ckpt.extras["send_seq"]
        self._pending_outputs = []    # replay re-emits what still matters
        self._delivered_ids = set(ckpt.extras.get("delivered_ids", set()))
        if self.config.retransmit_on_token:
            self._send_log = list(ckpt.extras.get("send_log", []))
        else:
            self._send_log = []

    # ------------------------------------------------------------------
    # Remark-1 extension: retransmission of possibly-lost messages
    # ------------------------------------------------------------------
    def _retransmit_for(self, token: RecoveryToken) -> None:
        """Resend logged sends to the failed process that the restored
        state may not reflect.

        The paper's Remark 1 says to resend sends *concurrent* with the
        token's state.  We resend every send that does not causally follow
        the restored state -- concurrent or happened-before -- because a
        message whose send precedes the restored state through some other
        path can still have been received inside the lost suffix.
        Receiver-side dedup ids make the superset harmless.
        """
        assert token.full_clock is not None
        for entry in self._send_log:
            if entry.dst != token.origin:
                continue
            if not (token.full_clock <= entry.envelope.clock):
                sent = self.env.send(entry.dst, entry.envelope, kind="app")
                self.stats.retransmitted += 1
                self.stats.app_sent += 1
                self.stats.piggyback_entries += (
                    entry.envelope.clock.piggyback_entries()
                )
                bits = entry.envelope.clock.wire_size_bits()
                self.stats.piggyback_bits += bits
                self.obs.counter("dg.retransmitted")
                self.obs.counter("dg.piggyback_bytes", bits / 8.0)
                self._note_wire_cost(entry.dst, entry.envelope.clock)
                if self.trace is not None:
                    self.trace.record(
                        self.env.now,
                        EventKind.SEND,
                        self.pid,
                        msg_id=sent.msg_id,
                        dst=entry.dst,
                        uid=entry.sender_uid,
                        dedup=entry.envelope.dedup_id,
                        retransmit=True,
                    )

    # ------------------------------------------------------------------
    # Section 6.5 extensions: output commit and garbage collection
    # ------------------------------------------------------------------
    def flush_log(self) -> int:
        # Log flush + stable_own write are two durable steps (the paper
        # keeps the durable clock frontier in lockstep with the stable
        # log); the intent is a no-op when an outer transition
        # (checkpoint, rollback) already covers the pair.
        intent = self.storage.begin_intent(intents.FLUSH)
        self.storage.advance_intent(intent, "log_flushed")
        moved = super().flush_log()
        self.storage.commit_intent(intent)
        # Everything delivered so far is now reconstructible from stable
        # storage; our own-entry becomes part of the global stable frontier.
        self._set_stable_own(self.clock[self.pid])
        return moved

    def _set_stable_own(self, entry) -> None:
        """Record the own-entry frontier of stable storage (durably).

        The frontier rides along with writes that are already synchronous
        (flushes, the rollback's pre-restore flush), so persisting it here
        adds one word to those writes, not a new write.  ``on_restart``
        reads back the *version*: it must survive failures even when every
        checkpoint of the current incarnation has been discarded by an
        interleaved rollback, or a second failure would re-announce an
        already-dead version and leave that incarnation's orphans standing.

        Plain assignment, not a monotone max: a rollback truncates the
        stable log and then re-records the (lower) post-rollback entry --
        the old frontier would cover states that stable storage no longer
        holds, which both mis-aims the next restart token and lets the
        stability coordinator certify outputs against vanished states.
        """
        self._stable_own = entry
        self.storage.put("stable_own", self._stable_own)

    def stable_frontier(self):
        """The own clock entry of our latest stable-storage-recoverable
        state, reported to the StabilityCoordinator."""
        return self._stable_own

    # ------------------------------------------------------------------
    # Decentralised stability gossip (live-runtime alternative to the
    # StabilityCoordinator object, which needs one Python object holding
    # every protocol -- impossible across OS processes)
    # ------------------------------------------------------------------
    def gossip_tick(self) -> None:
        """Broadcast our stable frontier; sweep if a full vector is held.

        Stale reports are sound (see ProtocolConfig.gossip_stability):
        a frontier entry only ever certifies states that were stable when
        it was reported, and a stable prefix is recoverable forever.
        """
        self._receive_frontier(self.pid, self.stable_frontier())
        self.env.broadcast(
            (self.pid, self.stable_frontier()), kind="frontier"
        )
        self.stats.control_sent += self.n - 1
        self.obs.counter("dg.frontier_gossip", self.n - 1)

    def _receive_frontier(self, src: int, entry) -> None:
        self._frontier_reports[src] = entry
        if len(self._frontier_reports) == self.n:
            self.apply_stability(dict(self._frontier_reports))

    def emit_outputs(self, records, *, replay: bool) -> None:
        if not self.config.commit_outputs:
            super().emit_outputs(records, replay=replay)
            return
        committed: set = self.storage.get("committed_outputs")
        uid = self.executor.current_uid
        for index, record in enumerate(records):
            key = (uid, index)
            if key in committed:
                continue
            self._pending_outputs.append((key, self.clock, record.value))
            if not replay and self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.OUTPUT,
                    self.pid,
                    value=record.value,
                    uid=uid,
                    committed=False,
                )

    def _entry_permanently_safe(self, j: int, entry, frontier) -> bool:
        """Can the dependence on ``(j, entry)`` ever be rolled back?

        Safe iff the state is within a restored prefix (attested by a
        token: replayed from stable storage, immune forever) or within
        ``j``'s current flushed frontier.
        """
        record = self.history.record(j, entry.version)
        from repro.core.history import RecordKind

        if (
            record is not None
            and record.kind is RecordKind.TOKEN
            and entry.timestamp <= record.timestamp
        ):
            return True
        front = frontier.get(j)
        return (
            front is not None
            and entry.version == front.version
            and entry.timestamp <= front.timestamp
        )

    def _clock_permanently_safe(self, clock, frontier) -> bool:
        return all(
            self._entry_permanently_safe(j, entry, frontier)
            for j, entry in enumerate(clock)
        )

    def apply_stability(self, frontier) -> tuple[int, int, int]:
        """One coordinator sweep: commit safe outputs, reclaim space.

        Returns ``(outputs committed, checkpoints collected, log entries
        collected)`` for the coordinator's stats.
        """
        committed_count = 0
        if self.config.commit_outputs and self._pending_outputs:
            committed: set = self.storage.get("committed_outputs")
            still_pending = []
            for key, clock, value in self._pending_outputs:
                if self._clock_permanently_safe(clock, frontier):
                    committed.add(key)
                    self.outputs.append((self.env.now, value))
                    committed_count += 1
                    if self.trace is not None:
                        self.trace.record(
                            self.env.now,
                            EventKind.OUTPUT,
                            self.pid,
                            value=value,
                            uid=key[0],
                            committed=True,
                        )
                else:
                    still_pending.append((key, clock, value))
            self._pending_outputs = still_pending

        ckpts_collected = 0
        entries_collected = 0
        if self.config.enable_gc:
            anchor = None
            for ckpt in self.storage.checkpoints:
                if self._clock_permanently_safe(
                    ckpt.extras["clock"], frontier
                ):
                    anchor = ckpt
            if anchor is not None:
                # Checkpoint GC + log-prefix discard are two durable
                # steps; both are idempotent given the anchor, so a
                # crash between them is healed by rolling forward.
                intent = self.storage.begin_intent(
                    intents.COMPACTION,
                    anchor_ckpt_id=anchor.ckpt_id,
                    anchor_position=anchor.log_position,
                )
                self.storage.advance_intent(intent, "checkpoints_collected")
                ckpts_collected = (
                    self.storage.checkpoints.garbage_collect_before(
                        anchor.ckpt_id
                    )
                )
                self.storage.commit_intent(intent)
                entries_collected = self.storage.log.discard_prefix(
                    anchor.log_position
                )
        if self.config.compact_history:
            # Tokens are logged synchronously on receipt, so every record
            # the run below drops had its killing token durably observed
            # before this sweep started.
            compacted = self.history.compact()
            if compacted:
                self.stats.history_compacted += compacted
                self.obs.counter("dg.history_compacted", compacted)
                self._sample_obs_gauges()
        return committed_count, ckpts_collected, entries_collected

    # ------------------------------------------------------------------
    # Harness introspection
    # ------------------------------------------------------------------
    def piggyback_entry_count(self) -> int:
        """O(n): one (version, timestamp) pair per process."""
        return self.clock.piggyback_entries()
