"""The history mechanism (paper Section 5, Figure 3).

Each process keeps, in volatile memory, at most one record per known
``(process, version)`` pair:

- a **token record** ``(token, v, t)`` -- "version ``v`` of that process
  failed and was restored at timestamp ``t``"; token records are final for
  their version (the restoration point is a fact) and are never overwritten
  by message records;
- a **message record** ``(mes, v, t)`` -- "the largest timestamp of version
  ``v`` of that process that we transitively depend on is ``t``"; updated
  by taking the maximum over the clocks of delivered messages.

The two exact tests the paper proves:

- **obsolete message** (Lemma 4): message ``m`` is obsolete iff for some
  ``j`` the history holds ``(token, v, t)`` for ``P_j`` while
  ``m.clock[j] = (v, t')`` with ``t' > t``;
- **orphan state** (Lemma 3): on receiving token ``(v, t)`` from ``P_j``,
  the local state is an orphan iff the history holds ``(mes, v, t')`` for
  ``P_j`` with ``t' > t``.

The history is O(n·f) space (Section 6.9): at most one record per version
per process.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from enum import Enum

from repro.core.ftvc import FaultTolerantVectorClock
from repro.core.tokens import RecoveryToken


class RecordKind(Enum):
    """Whether a history record came from a message clock (maximum-updated)
    or from a token (final for its version)."""

    MESSAGE = "mes"
    TOKEN = "token"


@dataclass(frozen=True)
class HistoryRecord:
    """One ``(kind, version, timestamp)`` record for some ``(process, version)``."""

    kind: RecordKind
    version: int
    timestamp: int

    def __repr__(self) -> str:
        return f"({self.kind.value},{self.version},{self.timestamp})"


class History:
    """Per-process history table: ``history[j][version] -> HistoryRecord``."""

    def __init__(self, pid: int, n: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range 0..{n - 1}")
        self.pid = pid
        self.n = n
        self._records: list[dict[int, HistoryRecord]] = [{} for _ in range(n)]
        # Figure 3 Initialize: (mes,0,0) for every process, (mes,0,1) for self.
        for j in range(n):
            self._records[j][0] = HistoryRecord(RecordKind.MESSAGE, 0, 0)
        self._records[pid][0] = HistoryRecord(RecordKind.MESSAGE, 0, 1)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def record(self, j: int, version: int) -> HistoryRecord | None:
        """The record for version ``version`` of process ``j``, if any."""
        return self._records[j].get(version)

    def records_for(self, j: int) -> list[HistoryRecord]:
        """All records kept about process ``j``, oldest version first."""
        return [self._records[j][v] for v in sorted(self._records[j])]

    def has_token(self, j: int, version: int) -> bool:
        rec = self._records[j].get(version)
        return rec is not None and rec.kind is RecordKind.TOKEN

    def size(self) -> int:
        """Total records held -- the O(n·f) quantity of Section 6.9."""
        return sum(len(per) for per in self._records)

    # ------------------------------------------------------------------
    # Updates (Figure 3)
    # ------------------------------------------------------------------
    def observe_message_clock(self, clock: FaultTolerantVectorClock) -> None:
        """Receive-message rule: raise message records to the clock's entries.

        A token record for the same version is kept as-is: the restoration
        point is final, and a message that would contradict it (timestamp
        above the token's) is obsolete and must have been discarded before
        this method is called.
        """
        if len(clock) != self.n:
            raise ValueError("clock length mismatch")
        for j, entry in enumerate(clock):
            existing = self._records[j].get(entry.version)
            if existing is not None:
                if existing.kind is RecordKind.TOKEN:
                    continue
                if existing.timestamp >= entry.timestamp:
                    continue
            self._records[j][entry.version] = HistoryRecord(
                RecordKind.MESSAGE, entry.version, entry.timestamp
            )

    def observe_token(self, token: RecoveryToken) -> None:
        """Receive-token rule: install the final record for that version."""
        self._records[token.origin][token.version] = HistoryRecord(
            RecordKind.TOKEN, token.version, token.timestamp
        )

    # ------------------------------------------------------------------
    # The paper's exact tests
    # ------------------------------------------------------------------
    def is_obsolete(self, clock: FaultTolerantVectorClock) -> bool:
        """Lemma 4: the message carrying ``clock`` is from a lost or orphan
        state iff some entry exceeds a known token's restoration point."""
        for j, entry in enumerate(clock):
            rec = self._records[j].get(entry.version)
            if (
                rec is not None
                and rec.kind is RecordKind.TOKEN
                and entry.timestamp > rec.timestamp
            ):
                return True
        return False

    def missing_tokens(
        self, clock: FaultTolerantVectorClock
    ) -> list[tuple[int, int]]:
        """Deliverability test (Section 6.1).

        A message is not deliverable if its clock mentions version ``k`` of
        some process ``j`` while we have not yet received the tokens for all
        versions ``l < k`` of ``P_j``.  Returns the ``(j, l)`` pairs still
        awaited (empty list == deliverable).
        """
        missing: list[tuple[int, int]] = []
        for j, entry in enumerate(clock):
            for l in range(entry.version):
                if not self.has_token(j, l):
                    missing.append((j, l))
        return missing

    def orphaned_by(self, token: RecoveryToken) -> bool:
        """Lemma 3: are we an orphan of this failure?

        True iff we transitively depend on a state of the failed version
        with a timestamp above the restoration point.
        """
        rec = self._records[token.origin].get(token.version)
        return (
            rec is not None
            and rec.kind is RecordKind.MESSAGE
            and rec.timestamp > token.timestamp
        )

    def survives_token(self, token: RecoveryToken) -> bool:
        """Non-orphan test used for the rollback scan (Figure 4, step I).

        A checkpointed history survives iff it holds no message record for
        the failed version, or that record's timestamp is at most the
        restoration point.  (The paper's step I writes the strict ``t' < t``;
        we use ``t' <= t``, consistent with Lemma 3's orphan condition
        ``t < t'`` -- a state that depends exactly on the restored state is
        not an orphan, since the restored state survives.)
        """
        rec = self._records[token.origin].get(token.version)
        if rec is None or rec.kind is RecordKind.TOKEN:
            return True
        return rec.timestamp <= token.timestamp

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> "History":
        """A deep copy, safe to store in a checkpoint."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:
        parts = []
        for j in range(self.n):
            recs = " ".join(repr(r) for r in self.records_for(j))
            parts.append(f"P{j}:[{recs}]")
        return "History(" + ", ".join(parts) + ")"
