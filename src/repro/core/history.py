"""The history mechanism (paper Section 5, Figure 3).

Each process keeps, in volatile memory, at most one record per known
``(process, version)`` pair:

- a **token record** ``(token, v, t)`` -- "version ``v`` of that process
  failed and was restored at timestamp ``t``"; token records are final for
  their version (the restoration point is a fact) and are never overwritten
  by message records;
- a **message record** ``(mes, v, t)`` -- "the largest timestamp of version
  ``v`` of that process that we transitively depend on is ``t``"; updated
  by taking the maximum over the clocks of delivered messages.

The two exact tests the paper proves:

- **obsolete message** (Lemma 4): message ``m`` is obsolete iff for some
  ``j`` the history holds ``(token, v, t)`` for ``P_j`` while
  ``m.clock[j] = (v, t')`` with ``t' > t``;
- **orphan state** (Lemma 3): on receiving token ``(v, t)`` from ``P_j``,
  the local state is an orphan iff the history holds ``(mes, v, t')`` for
  ``P_j`` with ``t' > t``.

The history is O(n·f) space (Section 6.9): at most one record per version
per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.ftvc import FaultTolerantVectorClock
from repro.core.tokens import RecoveryToken


class RecordKind(Enum):
    """Whether a history record came from a message clock (maximum-updated)
    or from a token (final for its version)."""

    MESSAGE = "mes"
    TOKEN = "token"


@dataclass(frozen=True)
class HistoryRecord:
    """One ``(kind, version, timestamp)`` record for some ``(process, version)``."""

    kind: RecordKind
    version: int
    timestamp: int

    def __repr__(self) -> str:
        return f"({self.kind.value},{self.version},{self.timestamp})"


class History:
    """Per-process history table: ``history[j][version] -> HistoryRecord``."""

    def __init__(self, pid: int, n: int) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range 0..{n - 1}")
        self.pid = pid
        self.n = n
        self._records: list[dict[int, HistoryRecord]] = [{} for _ in range(n)]
        # Compaction floor per process: records for versions below the
        # floor have been dropped (see compact()); a clock entry below
        # the floor is treated as obsolete and a token below it as
        # already-applied.
        self._floor: list[int] = [0] * n
        # Figure 3 Initialize: (mes,0,0) for every process, (mes,0,1) for self.
        for j in range(n):
            self._records[j][0] = HistoryRecord(RecordKind.MESSAGE, 0, 0)
        self._records[pid][0] = HistoryRecord(RecordKind.MESSAGE, 0, 1)

    # ------------------------------------------------------------------
    # Record access
    # ------------------------------------------------------------------
    def record(self, j: int, version: int) -> HistoryRecord | None:
        """The record for version ``version`` of process ``j``, if any."""
        return self._records[j].get(version)

    def records_for(self, j: int) -> list[HistoryRecord]:
        """All records kept about process ``j``, oldest version first."""
        return [self._records[j][v] for v in sorted(self._records[j])]

    def has_token(self, j: int, version: int) -> bool:
        if version < self._floor[j]:
            # Compaction precondition: every compacted version's token
            # was observed before its record was dropped.
            return True
        rec = self._records[j].get(version)
        return rec is not None and rec.kind is RecordKind.TOKEN

    def floor(self, j: int) -> int:
        """Versions of ``j`` below this have been compacted away."""
        return self._floor[j]

    def size(self) -> int:
        """Total records held -- the O(n·f) quantity of Section 6.9."""
        return sum(len(per) for per in self._records)

    # ------------------------------------------------------------------
    # Updates (Figure 3)
    # ------------------------------------------------------------------
    def observe_message_clock(self, clock: FaultTolerantVectorClock) -> None:
        """Receive-message rule: raise message records to the clock's entries.

        A token record for the same version is kept as-is: the restoration
        point is final, and a message that would contradict it (timestamp
        above the token's) is obsolete and must have been discarded before
        this method is called.
        """
        if len(clock) != self.n:
            raise ValueError("clock length mismatch")
        for j, entry in enumerate(clock):
            if entry.version < self._floor[j]:
                # Below the compaction floor nothing is recorded; such a
                # clock can only reach here through a replayed log entry
                # whose original delivery predates the floor advance.
                continue
            existing = self._records[j].get(entry.version)
            if existing is not None:
                if existing.kind is RecordKind.TOKEN:
                    continue
                if existing.timestamp >= entry.timestamp:
                    continue
            self._records[j][entry.version] = HistoryRecord(
                RecordKind.MESSAGE, entry.version, entry.timestamp
            )

    def observe_token(self, token: RecoveryToken) -> None:
        """Receive-token rule: install the final record for that version."""
        if token.version < self._floor[token.origin]:
            # Already observed, applied, and compacted away (tokens are
            # final per version, so a duplicate carries nothing new).
            return
        self._records[token.origin][token.version] = HistoryRecord(
            RecordKind.TOKEN, token.version, token.timestamp
        )

    # ------------------------------------------------------------------
    # The paper's exact tests
    # ------------------------------------------------------------------
    def is_obsolete(self, clock: FaultTolerantVectorClock) -> bool:
        """Lemma 4: the message carrying ``clock`` is from a lost or orphan
        state iff some entry exceeds a known token's restoration point.

        An entry below a compaction floor is treated as obsolete: the
        compacted versions' restoration points are gone, so the exact
        Lemma 4 comparison is no longer available, and delivering such a
        message could make us an undetectable orphan (its record would
        be skipped by the floor).  Conservative discard is the only safe
        answer, and the floor only advances past versions whose tokens
        were observed long enough ago for a stability sweep to run.
        """
        for j, entry in enumerate(clock):
            if entry.version < self._floor[j]:
                return True
            rec = self._records[j].get(entry.version)
            if (
                rec is not None
                and rec.kind is RecordKind.TOKEN
                and entry.timestamp > rec.timestamp
            ):
                return True
        return False

    def missing_tokens(
        self, clock: FaultTolerantVectorClock
    ) -> list[tuple[int, int]]:
        """Deliverability test (Section 6.1).

        A message is not deliverable if its clock mentions version ``k`` of
        some process ``j`` while we have not yet received the tokens for all
        versions ``l < k`` of ``P_j``.  Returns the ``(j, l)`` pairs still
        awaited (empty list == deliverable).
        """
        missing: list[tuple[int, int]] = []
        for j, entry in enumerate(clock):
            # Versions below the floor are known-tokened (compaction
            # precondition), so the scan starts at the floor.
            for l in range(self._floor[j], entry.version):
                if not self.has_token(j, l):
                    missing.append((j, l))
        return missing

    def orphaned_by(self, token: RecoveryToken) -> bool:
        """Lemma 3: are we an orphan of this failure?

        True iff we transitively depend on a state of the failed version
        with a timestamp above the restoration point.
        """
        rec = self._records[token.origin].get(token.version)
        return (
            rec is not None
            and rec.kind is RecordKind.MESSAGE
            and rec.timestamp > token.timestamp
        )

    def survives_token(self, token: RecoveryToken) -> bool:
        """Non-orphan test used for the rollback scan (Figure 4, step I).

        A checkpointed history survives iff it holds no message record for
        the failed version, or that record's timestamp is at most the
        restoration point.  (The paper's step I writes the strict ``t' < t``;
        we use ``t' <= t``, consistent with Lemma 3's orphan condition
        ``t < t'`` -- a state that depends exactly on the restored state is
        not an orphan, since the restored state survives.)
        """
        rec = self._records[token.origin].get(token.version)
        if rec is None or rec.kind is RecordKind.TOKEN:
            return True
        return rec.timestamp <= token.timestamp

    # ------------------------------------------------------------------
    # Compaction (Section 6.9)
    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Drop records provably dead under the token-supersession rule.

        For each process ``j``, scan the contiguous run of TOKEN records
        starting at the current floor.  Every version in that run except
        the newest has a token for a *newer* version sitting right above
        it, which makes its record dead on all three paths:

        - ``orphaned_by`` / ``survives_token`` (Lemma 3): the token was
          observed and applied before compaction ran, so any orphan it
          condemns has already rolled back; a duplicate token is a no-op.
        - ``missing_tokens``: the floor certifies the token was seen.
        - ``is_obsolete`` (Lemma 4): a clock entry below the floor is
          answered conservatively -- obsolete -- instead of comparing
          against the dropped restoration point.  Messages still carrying
          such an entry depend on an incarnation at least two failures
          old; discarding the stragglers is safe (dedup ids and Remark-1
          retransmission make delivery at-least-once, and an orphaned
          dependence *must* be discarded), it can only cost a delivery
          that the exact test would have allowed.

        The newest token of the run is kept: no newer token supersedes
        it, and it is the live restoration point for Lemma 4.  MESSAGE
        records are never compacted.  Returns the number of records
        dropped.
        """
        dropped = 0
        for j in range(self.n):
            run_end = self._floor[j]
            while True:
                rec = self._records[j].get(run_end)
                if rec is None or rec.kind is not RecordKind.TOKEN:
                    break
                run_end += 1
            new_floor = run_end - 1     # keep the newest token of the run
            if new_floor <= self._floor[j]:
                continue
            for version in range(self._floor[j], new_floor):
                if self._records[j].pop(version, None) is not None:
                    dropped += 1
            self._floor[j] = new_floor
        return dropped

    # ------------------------------------------------------------------
    # Checkpoint support
    # ------------------------------------------------------------------
    def snapshot(self) -> "History":
        """A copy safe to store in a checkpoint.

        Structural copy, not ``copy.deepcopy``: records are frozen
        dataclasses, so sharing them between snapshots is safe, and
        snapshots run on every checkpoint -- this is the protocol's
        hottest allocation site after the clock itself.
        """
        clone = History.__new__(History)
        clone.pid = self.pid
        clone.n = self.n
        clone._records = [dict(per) for per in self._records]
        clone._floor = list(self._floor)
        return clone

    def __repr__(self) -> str:
        parts = []
        for j in range(self.n):
            recs = " ".join(repr(r) for r in self.records_for(j))
            parts.append(f"P{j}:[{recs}]")
        return "History(" + ", ".join(parts) + ")"
