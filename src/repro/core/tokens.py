"""Recovery tokens (paper Section 5).

After recovering from a failure, a process broadcasts a token carrying the
*failed* version number and the timestamp of that version at the point of
restoration.  The token is the only control message the protocol ever
sends; its size is one clock entry (Section 6.9).

The optional ``full_clock`` field implements the paper's Remark 1: if the
failed process also broadcasts its whole clock, other processes can resend
messages whose sends were concurrent with the restored state, recovering
messages that were received but not yet logged at the failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.ftvc import FaultTolerantVectorClock


@dataclass(frozen=True)
class RecoveryToken:
    """``(origin, version, timestamp)``: "version ``version`` of process
    ``origin`` failed; its states with timestamps > ``timestamp`` are lost"."""

    origin: int
    version: int
    timestamp: int
    full_clock: "FaultTolerantVectorClock | None" = None

    def __post_init__(self) -> None:
        if self.origin < 0 or self.version < 0 or self.timestamp < 0:
            raise ValueError(f"bad token {self!r}")

    def piggyback_entries(self) -> int:
        """Clock entries carried: 1, or n with the Remark-1 extension."""
        if self.full_clock is not None:
            return self.full_clock.piggyback_entries()
        return 1

    def __repr__(self) -> str:
        return f"Token(P{self.origin} v{self.version} ts{self.timestamp})"
