"""Compatibility shim: the trace model lives in :mod:`repro.runtime.trace`.

The ground-truth event trace is engine-agnostic (live runs record the same
events over real sockets), so the canonical home moved out of the
simulation package.  Importing from here keeps working.
"""

from repro.runtime.trace import EventKind, SimTrace, TraceEvent

__all__ = ["EventKind", "SimTrace", "TraceEvent"]
