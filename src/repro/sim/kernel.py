"""Deterministic discrete-event simulation kernel.

The kernel is intentionally tiny: a binary heap of :class:`Event` objects
ordered by ``(time, priority, sequence_number)``.  The sequence number makes
the execution order a total order, so a run is a pure function of the seed
and the scheduled callbacks -- a property the recovery test-suite relies on
(same seed => byte-identical trace).

Virtual time is a ``float`` carried by the kernel; no *simulation* decision
ever reads wall-clock time.  The optional observability tracer (see
:mod:`repro.obs`) does sample the wall clock, but only to report how fast
the simulation itself is running -- it never feeds back into event order,
which is what the determinism tests pin down.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

#: Relative tolerance for :meth:`Simulator.schedule_at` -- absolute times
#: recomputed through float arithmetic (``t1 + dt - t1`` style) can land an
#: ulp below ``now``; deltas within this relative band are clamped to zero
#: instead of raising a spurious :class:`SimulationError`.
TIME_EPSILON = 1e-9


class SimulationError(Exception):
    """Raised for kernel misuse (negative delays, running a spent kernel)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` which is exactly the order
    the kernel fires them in.  ``priority`` defaults to 0; lower fires first
    among events at the same virtual time.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Holding a handle allows the owner to cancel the event before it fires;
    cancellation is O(1) (the event is tombstoned, not removed from the
    heap).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Virtual time at which the event will fire (or would have)."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


def _label_root(label: str) -> str:
    """Collapse a per-instance event label to its bounded-cardinality root.

    Labels look like ``deliver#123`` or ``ckpt:2``; the suffix identifies
    the instance and would explode histogram cardinality.
    """
    if not label:
        return "unlabelled"
    return label.partition("#")[0].partition(":")[0]


class Simulator:
    """The discrete-event kernel.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()

    The kernel never advances time on its own; it jumps from event to event.
    ``run`` stops when the queue drains, when ``until`` is passed, or when
    ``max_events`` callbacks have fired.

    An observability tracer (:class:`repro.obs.Tracer`) may be attached via
    :attr:`tracer`; when present, the run loop reports per-label callback
    wall times, queue depth and virtual-time progress.  ``tracer = None``
    (the default) keeps the hot loop entirely instrumentation-free.
    """

    def __init__(self, *, tracer: Any | None = None) -> None:
        self._queue: list[Event] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._fired: int = 0
        self._running: bool = False
        self.tracer: Any | None = tracer

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    @property
    def pending_raw(self) -> int:
        """Total queue length including cancelled tombstones.

        Tombstoned events occupy heap slots until the run loop pops past
        them; the observability layer reports both this and :attr:`pending`
        so tombstone build-up (e.g. timer churn) is visible.
        """
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        ``delay`` must be non-negative; zero-delay events fire after any
        already-scheduled events at the current time (sequence order).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        event = Event(
            time=self._now + delay,
            priority=priority,
            seq=self._seq,
            callback=callback,
            label=label,
        )
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def retarget(
        self,
        handle: EventHandle,
        callback: Callable[[], None],
    ) -> EventHandle:
        """Swap the callback of a pending event, keeping its position.

        The event keeps its ``(time, priority, seq)`` key, so it fires
        exactly where it always would have -- including its place among
        same-instant ties.  Handing a periodic timer to a placeholder
        across a process's downtime and handing it back this way is
        indistinguishable from never having touched it.
        """
        handle._event.callback = callback
        return handle

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``.

        ``time`` values recomputed through float arithmetic can fall a
        rounding error below ``now`` even when they mean "right now"; such
        deltas (within :data:`TIME_EPSILON`, relative) are clamped to zero
        rather than rejected.  Genuinely-past times still raise.
        """
        delay = time - self._now
        if delay < 0.0:
            tolerance = TIME_EPSILON * max(1.0, abs(self._now), abs(time))
            if delay >= -tolerance:
                delay = 0.0
        return self.schedule(
            delay, callback, priority=priority, label=label
        )

    def _next_event_time(self) -> float | None:
        """Time of the earliest live event, discarding leading tombstones."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Execute events in order.

        ``until`` is inclusive: an event at exactly ``until`` fires.  Events
        scheduled during execution are honoured.  Re-entrant calls are
        rejected -- callbacks must not call :meth:`run`.

        When the loop stops because the queue is exhausted (or holds only
        events beyond ``until``), time fast-forwards to ``until``.  When it
        stops because ``max_events`` was reached with work still pending at
        or before ``until``, time stays at the last fired event -- jumping
        ahead of unfired events would time-warp the simulation.
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant")
        self._running = True
        fired_this_call = 0
        tracer = self.tracer
        try:
            while self._queue:
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    if tracer is not None:
                        tracer.counter("sim.tombstones_popped")
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and fired_this_call >= max_events:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                if tracer is None:
                    event.callback()
                else:
                    start = perf_counter()
                    event.callback()
                    elapsed = perf_counter() - start
                    tracer.counter("sim.events_fired")
                    tracer.observe(
                        f"sim.event_wall_s.{_label_root(event.label)}",
                        elapsed,
                    )
                    tracer.gauge("sim.queue_depth", len(self._queue))
                    tracer.gauge("sim.virtual_time", self._now)
                self._fired += 1
                fired_this_call += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            next_time = self._next_event_time()
            if next_time is None or next_time > until:
                self._now = until

    def drain(self, limit: int = 10_000_000) -> None:
        """Run to quiescence, failing loudly if ``limit`` events fire.

        Protocol bugs commonly manifest as livelock (token storms, replay
        loops); the limit converts those into a crisp test failure instead
        of a hang.
        """
        before = self._fired
        self.run(max_events=limit)
        if self._queue and any(not e.cancelled for e in self._queue):
            raise SimulationError(
                f"simulation did not quiesce within {limit} events "
                f"({self._fired - before} fired this call)"
            )
