"""Simulated message-passing network.

Point-to-point reliable channels between ``n`` endpoints with:

- configurable delivery order: per-channel FIFO, or arbitrary reordering
  (independent latency draws) -- the paper explicitly assumes *nothing*
  about ordering, while several Table 1 baselines require FIFO;
- pluggable latency models, seeded per channel for reproducibility;
- network partitions: messages crossing a partition are held and delivered
  (with a fresh latency) when the partition heals, which models the paper's
  "reliable token delivery" assumption while still letting experiments show
  that a partitioned process recovers without waiting;
- broadcast (used for recovery tokens).

Delivery is *at-least-queued*: the network always hands the message to the
destination's :class:`~repro.sim.process.ProcessHost`, which buffers it if
the process is currently crashed.  Loss of received-but-unlogged messages in
a failure is a property of the *process* (volatile memory), not of this
transport, exactly as in the paper's model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterable, Sequence

from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind, SimTrace
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStreams


class DeliveryOrder(Enum):
    """Channel ordering discipline."""

    FIFO = "fifo"        # per-channel first-in first-out
    RANDOM = "random"    # arbitrary reordering across a channel


class LatencyModel:
    """Base class for channel latency distributions.

    ``sample`` sees the channel and message kind so that models can be
    channel-dependent (scripted scenarios) while plain distributions ignore
    the extra arguments.
    """

    def sample(self, rng, src: int, dst: int, kind: str) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"bad latency bounds [{self.low}, {self.high}]")

    def sample(self, rng, src: int, dst: int, kind: str) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant latency; useful for hand-scripted scenarios."""

    value: float = 1.0

    def sample(self, rng, src: int, dst: int, kind: str) -> float:
        return self.value


class ScriptedLatency(LatencyModel):
    """Per-channel queues of pre-planned latencies.

    The figure scenarios use this to force the exact message orderings shown
    in the paper: the k-th message sent on channel ``(src, dst)`` of kind
    ``kind`` gets the k-th scripted delay; channels without a script fall
    back to ``default``.
    """

    def __init__(self, default: float = 1.0) -> None:
        self.default = default
        self._queues: dict[tuple[int, int, str], list[float]] = {}

    def plan(
        self, src: int, dst: int, *delays: float, kind: str = "app"
    ) -> "ScriptedLatency":
        self._queues.setdefault((src, dst, kind), []).extend(delays)
        return self

    def sample(self, rng, src: int, dst: int, kind: str) -> float:
        queue = self._queues.get((src, dst, kind))
        if queue:
            return queue.pop(0)
        return self.default


class Network:
    """The transport connecting ``n`` process hosts."""

    def __init__(
        self,
        sim: Simulator,
        n: int,
        *,
        streams: RandomStreams | None = None,
        latency: LatencyModel | None = None,
        order: DeliveryOrder = DeliveryOrder.RANDOM,
        trace: SimTrace | None = None,
        duplicate_rate: float = 0.0,
    ) -> None:
        """``duplicate_rate`` turns the transport into at-least-once
        delivery: each application message is delivered a second time with
        that probability (fresh latency).  Only protocols with duplicate
        suppression should be run on such a network."""
        if n <= 0:
            raise ValueError("network needs at least one endpoint")
        if not 0.0 <= duplicate_rate < 1.0:
            raise ValueError(f"bad duplicate_rate {duplicate_rate}")
        self.sim = sim
        self.n = n
        self.order = order
        self.latency = latency if latency is not None else UniformLatency()
        self.trace = trace
        self.duplicate_rate = duplicate_rate
        self.duplicates_injected = 0
        self._streams = streams if streams is not None else RandomStreams(0)
        self._receivers: dict[int, Callable[[NetworkMessage], None]] = {}
        self._msg_ids = itertools.count()
        # FIFO bookkeeping: earliest admissible delivery time per channel.
        self._channel_clock: dict[tuple[int, int], float] = {}
        # Partition state: either None (fully connected) or a mapping
        # pid -> group id.
        self._partition: dict[int, int] | None = None
        self._held: list[NetworkMessage] = []
        # Counters for the metrics layer.
        self.sent_count: dict[str, int] = {}
        self.delivered_count: dict[str, int] = {}
        # Messages scheduled on the wire and not yet handed to a receiver
        # (excludes partition-held messages), for the obs in-flight gauge.
        self._in_flight = 0

    # ------------------------------------------------------------------
    # Registration and basic sending
    # ------------------------------------------------------------------
    def register(
        self, pid: int, receiver: Callable[[NetworkMessage], None]
    ) -> None:
        """Attach the receive callback for endpoint ``pid``."""
        if not 0 <= pid < self.n:
            raise ValueError(f"pid {pid} out of range 0..{self.n - 1}")
        if pid in self._receivers:
            raise ValueError(f"pid {pid} already registered")
        self._receivers[pid] = receiver

    def send(
        self,
        src: int,
        dst: int,
        payload: Any,
        *,
        kind: str = "app",
        latency: float | None = None,
    ) -> NetworkMessage:
        """Send ``payload`` from ``src`` to ``dst``; returns the envelope.

        ``latency`` overrides the latency model for this one message, which
        the hand-scripted figure scenarios use to force exact orderings.
        """
        msg = NetworkMessage(
            msg_id=next(self._msg_ids),
            src=src,
            dst=dst,
            kind=kind,
            payload=payload,
            send_time=self.sim.now,
            latency_override=latency,
        )
        self.sent_count[kind] = self.sent_count.get(kind, 0) + 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(f"net.sent.{kind}")
        if self._blocked(src, dst):
            self._held.append(msg)
            if tracer is not None:
                tracer.counter("net.partition_held")
                tracer.gauge("net.held_messages", len(self._held))
        else:
            self._schedule_delivery(msg)
            if (
                self.duplicate_rate > 0.0
                and kind == "app"
                and self._streams.stream("duplication").random()
                < self.duplicate_rate
            ):
                self.duplicates_injected += 1
                if tracer is not None:
                    tracer.counter("net.duplicates_injected")
                self._schedule_delivery(msg)
        return msg

    def broadcast(
        self,
        src: int,
        payload: Any,
        *,
        kind: str = "token",
        include_self: bool = False,
    ) -> list[NetworkMessage]:
        """Send ``payload`` to every endpoint (optionally including src)."""
        sent = []
        for dst in range(self.n):
            if dst == src and not include_self:
                continue
            sent.append(self.send(src, dst, payload, kind=kind))
        return sent

    # ------------------------------------------------------------------
    # Delivery machinery
    # ------------------------------------------------------------------
    def _schedule_delivery(self, msg: NetworkMessage) -> None:
        rng = self._streams.stream(f"latency/{msg.src}->{msg.dst}")
        if msg.latency_override is not None:
            delay = msg.latency_override
        else:
            delay = self.latency.sample(rng, msg.src, msg.dst, msg.kind)
        deliver_at = self.sim.now + delay
        if self.order is DeliveryOrder.FIFO:
            key = (msg.src, msg.dst)
            floor = self._channel_clock.get(key, 0.0)
            deliver_at = max(deliver_at, floor)
            self._channel_clock[key] = deliver_at
        self.sim.schedule_at(
            deliver_at,
            lambda m=msg: self._deliver(m),
            label=f"deliver#{msg.msg_id}",
        )
        self._in_flight += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.gauge("net.in_flight", self._in_flight)

    def _deliver(self, msg: NetworkMessage) -> None:
        self._in_flight -= 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.gauge("net.in_flight", self._in_flight)
        if self._blocked(msg.src, msg.dst):
            # A partition was imposed while the message was in flight.
            self._held.append(msg)
            if tracer is not None:
                tracer.counter("net.partition_held")
                tracer.gauge("net.held_messages", len(self._held))
            return
        receiver = self._receivers.get(msg.dst)
        if receiver is None:
            raise RuntimeError(f"no receiver registered for pid {msg.dst}")
        self.delivered_count[msg.kind] = (
            self.delivered_count.get(msg.kind, 0) + 1
        )
        if tracer is not None:
            tracer.counter(f"net.delivered.{msg.kind}")
            tracer.observe(
                f"net.latency.{msg.kind}", self.sim.now - msg.send_time
            )
        receiver(msg)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition(self, groups: Sequence[Iterable[int]]) -> None:
        """Split the network into the given groups.

        Every pid must appear in exactly one group.  Messages between
        different groups are held until :meth:`heal`.  At most one
        partition can be in force: imposing a second one would silently
        overwrite the first, and the first heal would then release
        everything early.
        """
        if self._partition is not None:
            raise ValueError(
                "network is already partitioned; heal() before imposing "
                "another partition"
            )
        assignment: dict[int, int] = {}
        for gid, group in enumerate(groups):
            for pid in group:
                if pid in assignment:
                    raise ValueError(f"pid {pid} in two partition groups")
                assignment[pid] = gid
        missing = set(range(self.n)) - set(assignment)
        if missing:
            raise ValueError(f"pids {sorted(missing)} missing from partition")
        self._partition = assignment
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter("net.partitions")
            tracer.event(
                "net.partition", groups=[sorted(g) for g in groups]
            )
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                EventKind.PARTITION,
                -1,
                groups=[sorted(g) for g in groups],
            )

    def heal(self) -> None:
        """Remove the partition and release held messages."""
        self._partition = None
        held, self._held = self._held, []
        if self.order is DeliveryOrder.FIFO:
            # ``_held`` mixes messages held at send time with messages
            # caught *in flight* (partition imposed after scheduling),
            # which join the list at their delivery time -- after later
            # sends held at send time.  Rescheduling in list order would
            # hand the per-channel floor to the later send first and
            # cement the inversion; msg_ids are minted in send order, so
            # sorting restores per-channel send order.
            held.sort(key=lambda m: m.msg_id)
        for msg in held:
            self._schedule_delivery(msg)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter("net.heals")
            tracer.gauge("net.held_messages", 0)
            tracer.event("net.heal", released=len(held))
        if self.trace is not None:
            self.trace.record(self.sim.now, EventKind.HEAL, -1, released=len(held))

    def _blocked(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        return self._partition[src] != self._partition[dst]

    @property
    def held_messages(self) -> int:
        """Messages currently stranded by a partition."""
        return len(self._held)
