"""Crash and partition injection.

Failure schedules are data, not code: a :class:`CrashPlan` is a list of
``(time, pid, downtime)`` triples and a :class:`PartitionPlan` a list of
``(time, groups, heal_time)``; the :class:`FailureInjector` turns them into
simulator events against the process hosts.  Rate-based generation
(``CrashPlan.poisson``) produces plans from a seeded stream so experiments
remain reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sim.kernel import Simulator
from repro.sim.network import Network
from repro.sim.process import ProcessHost
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class CrashEvent:
    time: float
    pid: int
    downtime: float = 1.0

    def __post_init__(self) -> None:
        if self.time < 0 or self.downtime <= 0:
            raise ValueError(f"bad crash event {self!r}")


@dataclass(frozen=True)
class CrashPointEvent:
    """Arm a named stable-storage crash point on one process.

    Unlike a timed :class:`CrashEvent`, the crash fires *when the
    process reaches the named durable step* (e.g.
    ``"rollback:checkpoints_discarded"``), leaving exactly the partial
    image that step produces; the host then restarts after ``downtime``
    and the startup crawler heals the image.  Points that the schedule
    never reaches simply stay armed and harmless.
    """

    pid: int
    point: str
    downtime: float = 1.0

    def __post_init__(self) -> None:
        if self.downtime <= 0 or ":" not in self.point:
            raise ValueError(f"bad crash-point event {self!r}")


@dataclass
class CrashPlan:
    """A deterministic schedule of crashes."""

    events: list[CrashEvent] = field(default_factory=list)

    def crash(self, time: float, pid: int, downtime: float = 1.0) -> "CrashPlan":
        """Append a crash (builder style)."""
        self.events.append(CrashEvent(time, pid, downtime))
        return self

    def concurrent(
        self, time: float, pids: Iterable[int], downtime: float = 1.0
    ) -> "CrashPlan":
        """Crash several processes at the same instant."""
        for pid in pids:
            self.events.append(CrashEvent(time, pid, downtime))
        return self

    @staticmethod
    def poisson(
        *,
        n: int,
        horizon: float,
        rate: float,
        downtime: float = 1.0,
        streams: RandomStreams | None = None,
        max_failures_per_process: int | None = None,
    ) -> "CrashPlan":
        """Independent Poisson crash arrivals per process.

        ``rate`` is crashes per unit virtual time per process.  A crash
        that lands while the process is still down from an earlier crash
        is skipped *as a whole* when the plan executes -- neither the
        crash nor its paired restart fires -- so overlap is harmless: the
        earlier crash's downtime is never truncated.
        """
        streams = streams if streams is not None else RandomStreams(0)
        plan = CrashPlan()
        for pid in range(n):
            rng = streams.stream(f"crashes/{pid}")
            t = 0.0
            count = 0
            while True:
                t += rng.expovariate(rate)
                if t >= horizon:
                    break
                plan.crash(t, pid, downtime)
                count += 1
                if (
                    max_failures_per_process is not None
                    and count >= max_failures_per_process
                ):
                    break
        plan.events.sort(key=lambda e: (e.time, e.pid))
        return plan

    @property
    def failure_count(self) -> int:
        return len(self.events)


@dataclass(frozen=True)
class PartitionEvent:
    time: float
    groups: tuple[tuple[int, ...], ...]
    heal_time: float

    def __post_init__(self) -> None:
        if self.heal_time <= self.time:
            raise ValueError("partition must heal after it forms")


@dataclass
class PartitionPlan:
    """A deterministic schedule of partitions (non-overlapping).

    Non-overlap is enforced by :meth:`validate` (called by
    :meth:`FailureInjector.install`): the network holds a single partition
    at a time, so a second partition imposed before the first heals would
    silently overwrite it and the first heal would release everything
    early.
    """

    events: list[PartitionEvent] = field(default_factory=list)

    def partition(
        self,
        time: float,
        groups: Sequence[Iterable[int]],
        heal_time: float,
    ) -> "PartitionPlan":
        self.events.append(
            PartitionEvent(
                time, tuple(tuple(sorted(g)) for g in groups), heal_time
            )
        )
        return self

    def validate(self) -> None:
        """Raise ``ValueError`` if any two partition windows overlap."""
        ordered = sorted(self.events, key=lambda e: e.time)
        for prev, nxt in zip(ordered, ordered[1:]):
            if nxt.time < prev.heal_time:
                raise ValueError(
                    f"overlapping partitions: [{prev.time}, {prev.heal_time}) "
                    f"and [{nxt.time}, {nxt.heal_time}) -- the network holds "
                    "one partition at a time; heal the first before forming "
                    "the second"
                )


class FailureInjector:
    """Schedules a crash plan and a partition plan onto the simulation."""

    def __init__(
        self,
        sim: Simulator,
        hosts: Sequence[ProcessHost],
        network: Network | None = None,
    ) -> None:
        self.sim = sim
        self.hosts = list(hosts)
        self.network = network

    def install(
        self,
        crashes: CrashPlan | None = None,
        partitions: PartitionPlan | None = None,
        crash_points: Sequence[CrashPointEvent] | None = None,
    ) -> None:
        if crash_points:
            for cp in crash_points:
                self.hosts[cp.pid].runtime_env().storage.arm_crash_point(
                    cp.point, downtime=cp.downtime
                )
        if crashes is not None:
            for ev in crashes.events:
                host = self.hosts[ev.pid]
                # Crash fires at high priority so that at time t the failure
                # precedes message deliveries scheduled for the same instant.
                self.sim.schedule_at(
                    ev.time,
                    lambda host=host, ev=ev: self._crash(host, ev),
                    priority=-1,
                    label=f"crash:{ev.pid}",
                )
        if partitions is not None:
            if self.network is None:
                raise ValueError("partition plan requires a network")
            partitions.validate()
            for pev in partitions.events:
                self.sim.schedule_at(
                    pev.time,
                    lambda groups=pev.groups: self.network.partition(groups),
                    priority=-1,
                    label="partition",
                )
                # Heal fires ahead of everything else at its instant so a
                # back-to-back plan (next partition forming exactly at this
                # heal time) finds the network connected again.
                self.sim.schedule_at(
                    pev.heal_time,
                    self.network.heal,
                    priority=-2,
                    label="heal",
                )

    def _crash(self, host: ProcessHost, ev: CrashEvent) -> None:
        """Crash ``host`` and schedule the paired restart -- liveness-aware.

        A crash landing while the process is already down is a no-op, and
        its restart must not fire either: scheduling both unconditionally
        would let the second crash's (earlier) restart resurrect the
        process mid-way through the first crash's downtime.
        """
        if not host.alive:
            return
        host.crash()
        self.sim.schedule(
            ev.downtime, host.restart, label=f"restart:{ev.pid}"
        )
