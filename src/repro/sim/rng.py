"""Named deterministic random streams.

Every source of randomness in a simulation (per-channel latency, workload
choices, failure times, ...) draws from its own named stream so that adding
a new consumer of randomness does not perturb the draws seen by existing
consumers.  Stream seeds are derived from the root seed and the stream name
with a stable hash, so runs are reproducible across Python processes
(``hash()`` is salted and therefore unusable here).
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from ``root_seed`` and ``name``.

    Uses BLAKE2b, which is stable across interpreter runs and platforms.
    """
    digest = hashlib.blake2b(
        f"{root_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class RandomStreams:
    """A factory of independent, reproducible :class:`random.Random` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.stream("latency/0->1")
    >>> b = streams.stream("latency/0->1")
    >>> a is b
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self._root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = random.Random(derive_seed(self._root_seed, name))
        self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of ours."""
        return RandomStreams(derive_seed(self._root_seed, f"spawn:{name}"))
