"""Simulation-side process container.

The piecewise-deterministic application model (:class:`Application`,
:class:`AppExecutor`, :class:`ProcessContext`, ...) is engine-agnostic and
lives in :mod:`repro.runtime.app`; this module re-exports it for
compatibility and provides the simulation-specific substrate:

- :class:`ProcessHost` -- the container that connects a recovery-protocol
  process to the simulator and network and implements crash/restart
  mechanics (buffering transport deliveries while down).

Protocols do not talk to the host directly any more: they run against the
narrow :class:`~repro.runtime.env.RuntimeEnv` interface, obtained from a
host via :meth:`ProcessHost.runtime_env`.
"""

from __future__ import annotations

import warnings

from repro.runtime.app import (          # noqa: F401  (compat re-exports)
    Application,
    AppExecutor,
    OutputRecord,
    ProcessContext,
    RecoveryProcess,
    SendRecord,
    StateUid,
)
from repro.runtime.trace import EventKind, SimTrace
from repro.sim.kernel import Simulator
from repro.sim.network import Network, NetworkMessage
from repro.storage.intents import CrashPointReached

__all__ = [
    "Application",
    "AppExecutor",
    "OutputRecord",
    "ProcessContext",
    "ProcessHost",
    "RecoveryProcess",
    "SendRecord",
    "StateUid",
]


class ProcessHost:
    """Substrate container for one simulated process.

    Owns liveness: when the process is crashed, transport deliveries are
    buffered here (the network is reliable) and drained on restart.  The
    *volatile memory* lost in a crash belongs to the protocol object, which
    clears it in ``on_crash``.
    """

    def __init__(
        self,
        pid: int,
        sim: Simulator,
        network: Network,
        trace: SimTrace | None = None,
    ) -> None:
        self.pid = pid
        self.sim = sim
        self.network = network
        self.trace = trace
        self.alive = True
        self.crash_count = 0
        self._protocol: RecoveryProcess | None = None
        self._buffered: list[NetworkMessage] = []
        self._env = None
        network.register(pid, self._on_transport_deliver)

    def runtime_env(self):
        """The :class:`~repro.sim.env.SimEnv` wrapping this host.

        Created on first use and cached; protocols built from this host
        (directly or through the deprecated host-passing constructor) all
        share it.
        """
        if self._env is None:
            from repro.sim.env import SimEnv

            self._env = SimEnv(self)
        return self._env

    def _attach(self, protocol: RecoveryProcess) -> None:
        if self._protocol is not None:
            raise RuntimeError(f"host {self.pid} already has a protocol")
        self._protocol = protocol

    def attach(self, protocol: RecoveryProcess) -> None:
        """Deprecated: protocols attach through their RuntimeEnv."""
        warnings.warn(
            "ProcessHost.attach is deprecated; protocols attach through "
            "their RuntimeEnv (host.runtime_env().attach(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        self._attach(protocol)

    @property
    def protocol(self) -> RecoveryProcess:
        if self._protocol is None:
            raise RuntimeError(f"host {self.pid} has no protocol attached")
        return self._protocol

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        try:
            self.protocol.on_start()
        except CrashPointReached as exc:
            self.on_crash_point(exc)

    def crash(self) -> None:
        """Fail the process: volatile state is lost, delivery pauses."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter("host.crashes")
            tracer.event("host.crash", pid=self.pid, count=self.crash_count)
        if self.trace is not None:
            self.trace.record(
                self.sim.now, EventKind.CRASH, self.pid, count=self.crash_count
            )
        self.protocol.on_crash()
        # A dead process has no timers: stop the protocol's periodic
        # checkpoint/flush chains instead of letting them churn in the
        # kernel for the whole downtime.
        pause = getattr(self.protocol, "pause_periodic_tasks", None)
        if pause is not None:
            pause()

    def restart(self) -> None:
        """Bring the process back; the protocol runs its restart logic,
        then buffered transport deliveries are drained in arrival order."""
        if self.alive:
            return
        self.alive = True
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter("host.restarts")
            tracer.event(
                "host.restart", pid=self.pid, buffered=len(self._buffered)
            )
        try:
            self.protocol.on_restart()
        except CrashPointReached as exc:
            # An armed crash point fired mid-restart: the process dies
            # again with the partial image on "disk"; the rescheduled
            # restart heals and retries.
            self.on_crash_point(exc)
            return
        # Resume the periodic chains paused at crash time, preserving their
        # original phase (fire times are exactly those the pre-pause chain
        # would have used).
        resume = getattr(self.protocol, "resume_periodic_tasks", None)
        if resume is not None:
            resume()
        buffered, self._buffered = self._buffered, []
        for i, msg in enumerate(buffered):
            try:
                self.protocol.on_network_message(msg)
            except CrashPointReached as exc:
                # Undelivered drainees go back to the buffer, ahead of
                # anything that arrived while handling this message.
                self._buffered = buffered[i + 1:] + self._buffered
                self.on_crash_point(exc)
                return
        if tracer is not None:
            tracer.gauge(f"host.buffered.p{self.pid}", 0)

    # ------------------------------------------------------------------
    # Transport plumbing
    # ------------------------------------------------------------------
    def _on_transport_deliver(self, msg: NetworkMessage) -> None:
        if not self.alive:
            self._buffered.append(msg)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.counter("host.deliveries_buffered")
                tracer.gauge(
                    f"host.buffered.p{self.pid}", len(self._buffered)
                )
            return
        try:
            self.protocol.on_network_message(msg)
        except CrashPointReached as exc:
            self.on_crash_point(exc)

    def on_crash_point(self, exc: CrashPointReached) -> None:
        """An armed crash point fired: die here, restart after downtime.

        The protocol raised out of whatever durable step the point
        names, so its in-memory state is mid-transition -- exactly what
        crash semantics require: volatile state is discarded by
        :meth:`crash` and the restart re-derives everything from the
        (partial) stable image, which the startup crawler heals first.
        """
        if self.trace is not None:
            self.trace.record(
                self.sim.now,
                EventKind.CUSTOM,
                self.pid,
                what="crash_point",
                point=exc.point,
            )
        self.crash()
        self.sim.schedule(
            exc.downtime, self.restart, label=f"restart:{self.pid}"
        )

    def send(self, dst: int, payload, *, kind: str = "app",
             latency: float | None = None) -> NetworkMessage:
        """Protocol-facing send helper."""
        return self.network.send(
            self.pid, dst, payload, kind=kind, latency=latency
        )

    def broadcast(self, payload, *, kind: str = "token") -> list[NetworkMessage]:
        return self.network.broadcast(self.pid, payload, kind=kind)
