"""The simulation implementation of :class:`~repro.runtime.env.RuntimeEnv`.

:class:`SimEnv` adapts one :class:`~repro.sim.process.ProcessHost` (and
through it the deterministic kernel and the simulated network) to the
narrow environment interface protocols run against.  It adds nothing: every
method is a one-line delegation, so a protocol running through a ``SimEnv``
is bit-identical to one wired to the host directly -- the conformance suite
pins the trace signatures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.runtime.env import RuntimeEnv, TimerHandle
from repro.runtime.message import NetworkMessage
from repro.storage.intents import CrashPointReached
from repro.storage.stable import StableStorage


class SimEnv(RuntimeEnv):
    """One simulated process's runtime environment."""

    def __init__(
        self, host: Any, *, storage: StableStorage | None = None
    ) -> None:
        self.host = host
        self.sim = host.sim
        self.pid: int = host.pid
        self.n: int = host.network.n
        self.trace = host.trace
        self.storage = (
            storage if storage is not None else StableStorage(host.pid)
        )

    # ------------------------------------------------------------------
    # Clock, liveness, observability
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def alive(self) -> bool:
        return self.host.alive

    @property
    def crash_count(self) -> int:
        return self.host.crash_count

    @property
    def tracer(self) -> Any | None:
        return self.sim.tracer

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        dst: int,
        payload: Any,
        *,
        kind: str = "app",
        latency: float | None = None,
    ) -> NetworkMessage:
        return self.host.network.send(
            self.pid, dst, payload, kind=kind, latency=latency
        )

    def broadcast(
        self,
        payload: Any,
        *,
        kind: str = "token",
        include_self: bool = False,
    ) -> list[NetworkMessage]:
        return self.host.network.broadcast(
            self.pid, payload, kind=kind, include_self=include_self
        )

    # ------------------------------------------------------------------
    # Crash points (fault injection)
    # ------------------------------------------------------------------
    def on_crash_point(self, exc: CrashPointReached) -> None:
        """Convert an armed crash point into a crash + scheduled restart."""
        self.host.on_crash_point(exc)

    def _guard(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Wrap a timer callback so a crash point raised inside it (a
        periodic checkpoint/flush hitting an armed point) crashes the
        process instead of unwinding the kernel."""
        host = self.host

        def run() -> None:
            try:
                callback()
            except CrashPointReached as exc:
                host.on_crash_point(exc)

        return run

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def schedule_after(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        return self.sim.schedule(
            delay, self._guard(callback), priority=priority, label=label
        )

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> TimerHandle:
        # Exact absolute-time scheduling: ``now + (when - now)`` in float
        # arithmetic can miss ``when`` by an ulp, which would shift resumed
        # periodic chains off their historical fire times.
        return self.sim.schedule_at(
            when, self._guard(callback), priority=priority, label=label
        )

    def suspend_timer(
        self,
        handle: TimerHandle,
        interval: float,
        *,
        label: str = "",
    ) -> TimerHandle:
        # Deterministic suspension: instead of cancelling the pending
        # event, hand it to a phase keeper that keeps the chain ticking
        # (callback-free) at its historical instants while the owner is
        # down.  Every event the chain would have minted is still minted
        # at the same virtual instant, so the kernel's (time, priority,
        # seq) order -- and therefore the trace signature -- is identical
        # to a run where the owner stayed attached throughout.
        keeper = _SimPhaseKeeper(self.sim, handle, interval, label)
        self.sim.retarget(handle, keeper._tick)
        return keeper

    def resume_timer(
        self,
        handle: TimerHandle,
        interval: float,
        callback: Callable[[], None],
        *,
        label: str = "",
    ) -> TimerHandle:
        if not isinstance(handle, _SimPhaseKeeper):
            # Chains suspended before this env existed (or by generic
            # code) fall back to the phase-preserving reschedule.
            return super().resume_timer(
                handle, interval, callback, label=label
            )
        return handle._hand_back(self._guard(callback))

    # ------------------------------------------------------------------
    # Protocol attachment
    # ------------------------------------------------------------------
    def attach(self, protocol: Any) -> None:
        self.host._attach(protocol)


class _SimPhaseKeeper:
    """Holds a suspended periodic chain's place in the event order.

    While active it re-enacts exactly what the chain's own callback would
    have done at each deadline -- schedule the next fire ``interval``
    later, same label -- without running any protocol code.  Resuming
    swaps the owner's callback onto whichever event is currently pending;
    cancelling tombstones it.
    """

    __slots__ = ("_sim", "_handle", "_interval", "_label", "_active")

    def __init__(
        self, sim: Any, handle: Any, interval: float, label: str
    ) -> None:
        self._sim = sim
        self._handle = handle
        self._interval = interval
        self._label = label
        self._active = True

    @property
    def time(self) -> float:
        return self._handle.time

    @property
    def cancelled(self) -> bool:
        return self._handle.cancelled

    def cancel(self) -> None:
        self._active = False
        self._handle.cancel()

    def _tick(self) -> None:
        if not self._active:
            return
        self._handle = self._sim.schedule(
            self._interval, self._tick, label=self._label
        )

    def _hand_back(self, callback: Callable[[], None]) -> TimerHandle:
        self._active = False
        return self._sim.retarget(self._handle, callback)
