"""Deterministic discrete-event simulation substrate.

This package provides everything the recovery protocols run on top of:

- :mod:`repro.sim.kernel` -- the event-queue simulator (virtual time).
- :mod:`repro.sim.rng` -- named, independent, seeded random streams.
- :mod:`repro.sim.network` -- point-to-point channels with configurable
  ordering (FIFO or arbitrary), latency models, partitions, and a reliable
  broadcast used for recovery tokens.
- :mod:`repro.sim.process` -- the piecewise-deterministic application/process
  model of the paper's Section 3.
- :mod:`repro.sim.failures` -- crash and partition injection.
- :mod:`repro.sim.env` -- :class:`SimEnv`, the simulation implementation of
  the engine-agnostic :class:`repro.runtime.RuntimeEnv` protocols run on.

The trace model and the wire envelope are re-exported from
:mod:`repro.runtime`, their canonical home.
"""

from repro.sim.env import SimEnv
from repro.sim.failures import CrashPlan, FailureInjector, PartitionPlan
from repro.sim.kernel import Event, EventHandle, Simulator
from repro.sim.network import (
    DeliveryOrder,
    LatencyModel,
    Network,
    NetworkMessage,
    UniformLatency,
)
from repro.sim.process import (
    Application,
    ProcessContext,
    ProcessHost,
    SendRecord,
)
from repro.sim.rng import RandomStreams
from repro.sim.trace import (
    EventKind,
    SimTrace,
    TraceEvent,
)

__all__ = [
    "Application",
    "SimEnv",
    "CrashPlan",
    "DeliveryOrder",
    "Event",
    "EventHandle",
    "EventKind",
    "FailureInjector",
    "LatencyModel",
    "Network",
    "NetworkMessage",
    "PartitionPlan",
    "ProcessContext",
    "ProcessHost",
    "RandomStreams",
    "SendRecord",
    "SimTrace",
    "Simulator",
    "TraceEvent",
    "UniformLatency",
]
