"""Live stress sweep: seeded fault schedules for the real TCP cluster.

The simulator sweep (:mod:`repro.stress.sweep`) grades thousands of
adversarial schedules per minute; a live cluster costs several wall
seconds per run.  This module brings the same *shape* of harness --
seeded generation, oracle grading, ddmin shrinking, JSON reproducers --
to the live runtime at a scale it can afford: a
:class:`LiveStressCase` bundles a SIGKILL schedule with a
:class:`~repro.live.faults.LiveFaultPlan` (partitions, asymmetric
drops, gray links, disk faults, corrupt frames), and every case is a
pure function of its seed, so a failing seed replays bit-identically
through ``python -m repro stress --replay``.

Generation is bounded on purpose: 3 nodes, single-digit jobs, at most
one fault of each class, and every fault window closed well before the
drain phase (partitions heal before the run ends -- an unhealed
partition makes the completeness oracle vacuous, not wrong).  The goal
is diversity per second of wall clock, not raw schedule count.

Reproducer files carry ``"live": true`` so ``--replay`` dispatches to
the live runner; the simulator reproducer format is unchanged.
"""

from __future__ import annotations

import json
import random
import tempfile
import traceback
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.live.faults import (
    LiveCorruptFramePlan,
    LiveDiskFaultPlan,
    LiveFaultPlan,
    LiveGrayLinkPlan,
    LiveLinkDropPlan,
    LivePartitionPlan,
)
from repro.live.supervisor import (
    LiveClusterSpec,
    LiveCrashPlan,
    run_cluster,
)
from repro.live.verify import check_live_run
from repro.sim.rng import derive_seed
from repro.stress.shrink import _reduce_events

#: (at, pid, downtime) -- same tuple shape the simulator cases use.
LiveCrashTuple = tuple[float, int, float]


@dataclass(frozen=True)
class LiveStressCase:
    """One seeded live schedule; everything needed to reproduce the run."""

    seed: int
    n: int
    jobs: int
    run_seconds: float
    linger: float
    crashes: tuple[LiveCrashTuple, ...]
    faults: LiveFaultPlan

    @property
    def event_count(self) -> int:
        return len(self.crashes) + self.faults.event_count

    def describe(self) -> str:
        return (
            f"seed={self.seed} n={self.n} jobs={self.jobs} "
            f"run={self.run_seconds:.1f}s crashes={len(self.crashes)} "
            f"{self.faults.describe()}"
        )


def live_case_to_dict(case: LiveStressCase) -> dict[str, Any]:
    """JSON-ready dict for reproducer files; inverse of
    :func:`live_case_from_dict`."""
    return {
        "seed": case.seed,
        "n": case.n,
        "jobs": case.jobs,
        "run_seconds": case.run_seconds,
        "linger": case.linger,
        "crashes": [list(c) for c in case.crashes],
        "faults": case.faults.to_dict(),
    }


def live_case_from_dict(data: dict[str, Any]) -> LiveStressCase:
    """Rebuild a :class:`LiveStressCase` from its reproducer dict."""
    return LiveStressCase(
        seed=int(data["seed"]),
        n=int(data["n"]),
        jobs=int(data["jobs"]),
        run_seconds=float(data["run_seconds"]),
        linger=float(data["linger"]),
        crashes=tuple(
            (float(at), int(pid), float(down))
            for at, pid, down in data["crashes"]
        ),
        faults=LiveFaultPlan.from_dict(data["faults"]),
    )


def generate_live_case(seed: int) -> LiveStressCase:
    """Deterministically draw one bounded live schedule for ``seed``."""
    rng = random.Random(derive_seed(seed, "stress/live"))
    n = 3
    jobs = rng.randint(6, 12)
    run_seconds = round(rng.uniform(4.0, 5.5), 2)
    # Every injected window must close before the drain margin so
    # recovery and retransmission traffic can finish the pipeline.
    fault_close = run_seconds - 2.0

    crashes: tuple[LiveCrashTuple, ...] = ()
    if rng.random() < 0.4:
        crashes = (
            (
                round(rng.uniform(0.5, 1.4), 3),
                rng.randrange(n),
                round(rng.uniform(0.6, 1.0), 3),
            ),
        )

    return LiveStressCase(
        seed=seed,
        n=n,
        jobs=jobs,
        run_seconds=run_seconds,
        linger=1.2,
        crashes=crashes,
        faults=_draw_fault_plan(rng, n, fault_close, seed),
    )


def seeded_fault_plan(
    seed: int, *, n: int, run_seconds: float
) -> LiveFaultPlan:
    """A standalone seeded fault schedule for an ``n``-node cluster.

    The operator entry point (``python -m repro live --faults``) draws
    from the same vocabulary as the sweep but for whatever cluster shape
    the command line asked for.  Pure function of ``(seed, n,
    run_seconds)``.
    """
    rng = random.Random(derive_seed(seed, "live/faults"))
    return _draw_fault_plan(rng, n, max(1.0, run_seconds - 2.0), seed)


def _draw_fault_plan(
    rng: random.Random, n: int, fault_close: float, seed: int
) -> LiveFaultPlan:
    partitions: tuple[LivePartitionPlan, ...] = ()
    if rng.random() < 0.5:
        at = round(rng.uniform(0.3, 1.0), 3)
        heal = round(min(at + rng.uniform(0.6, 1.2), fault_close), 3)
        pids = list(range(n))
        rng.shuffle(pids)
        cut = rng.randint(1, n - 1)
        partitions = (
            LivePartitionPlan(
                at=at,
                groups=(
                    tuple(sorted(pids[:cut])),
                    tuple(sorted(pids[cut:])),
                ),
                heal_at=heal,
            ),
        )

    drops: tuple[LiveLinkDropPlan, ...] = ()
    if rng.random() < 0.35:
        src = rng.randrange(n)
        dst = rng.choice([p for p in range(n) if p != src])
        at = round(rng.uniform(0.2, 1.0), 3)
        drops = (
            LiveLinkDropPlan(
                src, dst, at,
                round(min(at + rng.uniform(0.4, 1.0), fault_close), 3),
            ),
        )

    gray: tuple[LiveGrayLinkPlan, ...] = ()
    if rng.random() < 0.4:
        src = rng.randrange(n)
        dst = rng.choice([p for p in range(n) if p != src])
        gray = (
            LiveGrayLinkPlan(
                src, dst, 0.0, round(fault_close, 3),
                delay=round(rng.uniform(0.005, 0.04), 4),
                jitter=round(rng.uniform(0.0, 0.02), 4),
                bandwidth=(
                    float(rng.choice([100_000, 250_000, 1_000_000]))
                    if rng.random() < 0.5 else None
                ),
            ),
        )

    disk: tuple[LiveDiskFaultPlan, ...] = ()
    if rng.random() < 0.4:
        disk = (
            LiveDiskFaultPlan(
                rng.randrange(n), 0.0,
                round(rng.uniform(1.0, fault_close), 3),
                mode=rng.choice(["fail", "stall"]),
                stall=round(rng.uniform(0.05, 0.2), 3),
            ),
        )

    corrupt: tuple[LiveCorruptFramePlan, ...] = ()
    if rng.random() < 0.5:
        src = rng.randrange(n)
        dst = rng.choice([p for p in range(n) if p != src])
        corrupt = (
            LiveCorruptFramePlan(
                src, dst, 0.0, round(fault_close, 3),
                rate=round(rng.uniform(0.1, 0.4), 3),
                seed=seed,
                mode=rng.choice(["bitflip", "truncate", "mixed"]),
            ),
        )

    return LiveFaultPlan(
        partitions=partitions,
        drops=drops,
        gray_links=gray,
        disk_faults=disk,
        corrupt_frames=corrupt,
    )


def build_live_spec(case: LiveStressCase) -> LiveClusterSpec:
    return LiveClusterSpec(
        n=case.n,
        jobs=case.jobs,
        run_seconds=case.run_seconds,
        linger=case.linger,
        crashes=[
            LiveCrashPlan(pid=pid, at=at, downtime=down)
            for at, pid, down in case.crashes
        ],
        faults=case.faults,
    )


@dataclass(frozen=True)
class LiveCaseResult:
    """One graded live run."""

    case: LiveStressCase
    violations: tuple[str, ...] = ()
    error: str | None = None
    shrunk: LiveStressCase | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations) or self.error is not None

    def headline(self) -> str:
        if self.error is not None:
            lines = [
                line for line in self.error.strip().splitlines()
                if line.strip()
            ]
            return f"exception: {lines[-1].strip() if lines else 'unknown'}"
        return self.violations[0] if self.violations else "ok"


def run_live_case(
    case: LiveStressCase, *, workdir: str | None = None
) -> LiveCaseResult:
    """Run one live schedule and grade it; exceptions become failures."""
    try:
        if workdir is None:
            with tempfile.TemporaryDirectory(
                prefix=f"live-stress-{case.seed}-"
            ) as tmp:
                return _graded(case, tmp)
        return _graded(case, workdir)
    except Exception:
        return LiveCaseResult(
            case=case, error=traceback.format_exc(limit=12)
        )


def _graded(case: LiveStressCase, workdir: str) -> LiveCaseResult:
    result = run_cluster(build_live_spec(case), workdir)
    violations: list[str] = []
    verdict = check_live_run(result.trace, n=case.n, jobs=case.jobs)
    violations.extend(verdict.failures)
    bad_exits = {
        pid: code for pid, code in result.exit_codes.items() if code != 0
    }
    if bad_exits:
        violations.append(f"non-zero exit codes: {bad_exits}")
    missing = [
        pid for pid in range(case.n) if pid not in result.done
    ]
    if missing:
        violations.append(f"missing done reports: {missing}")
    return LiveCaseResult(case=case, violations=tuple(violations))


# ---------------------------------------------------------------------------
# Shrinking: ddmin over the fault/crash event lists
# ---------------------------------------------------------------------------
def shrink_live_case(
    case: LiveStressCase,
    fails: Callable[[LiveStressCase], bool],
    *,
    max_attempts: int = 24,
) -> LiveStressCase:
    """Minimise a failing live schedule under a tight predicate budget.

    Each predicate call runs a real cluster (seconds of wall clock), so
    the default budget is a fraction of the simulator's.  The reduction
    itself is the same ddmin pass the simulator shrinker uses
    (:func:`repro.stress.shrink._reduce_events` is schedule-agnostic);
    the result is always a *verified-failing* case.
    """
    budget = max_attempts

    def check(candidate: LiveStressCase) -> bool:
        nonlocal budget
        if budget <= 0:
            return False
        budget -= 1
        return fails(candidate)

    while budget > 0:
        before = case
        if case.crashes:
            kept = _reduce_events(
                case.crashes,
                lambda ev: replace(case, crashes=ev),
                check,
            )
            case = replace(case, crashes=kept)
        for attr in (
            "partitions", "drops", "gray_links",
            "disk_faults", "corrupt_frames",
        ):
            events = getattr(case.faults, attr)
            if not events:
                continue
            kept = _reduce_events(
                events,
                lambda ev, attr=attr: replace(
                    case, faults=replace(case.faults, **{attr: ev})
                ),
                check,
            )
            case = replace(case, faults=replace(case.faults, **{attr: kept}))
        if case == before:
            break
    return case


# ---------------------------------------------------------------------------
# Sweep driver and reproducer files
# ---------------------------------------------------------------------------
@dataclass
class LiveSweepReport:
    """Aggregate outcome of one live seed block."""

    base_seed: int
    schedules: int
    cases_run: int = 0
    fault_events: int = 0
    crash_events: int = 0
    failures: list[LiveCaseResult] = field(default_factory=list)
    reproducers: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"live stress sweep: {self.cases_run}/{self.schedules} "
            f"schedules (seeds {self.base_seed}.."
            f"{self.base_seed + self.schedules - 1})",
            f"  injected: {self.crash_events} crashes, "
            f"{self.fault_events} fault windows",
        ]
        if self.ok:
            lines.append("  all invariants held")
        else:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for fr in self.failures:
                repro = fr.shrunk if fr.shrunk is not None else fr.case
                lines.append(f"    seed {fr.case.seed}: {fr.headline()}")
                lines.append(f"      reproducer: {repro.describe()}")
        return "\n".join(lines)


def live_sweep(
    schedules: int,
    *,
    base_seed: int = 0,
    shrink: bool = True,
    max_shrink_attempts: int = 24,
    fail_fast: bool = False,
    out_dir: Path | None = None,
    run: Callable[..., LiveCaseResult] = run_live_case,
    progress: Callable[[int, LiveCaseResult], None] | None = None,
) -> LiveSweepReport:
    """Run ``schedules`` generated live cases, serially.

    Live runs own the machine (one OS process per node); running them
    concurrently would turn scheduling jitter into spurious timing
    failures, so there is no ``jobs`` knob here.  ``run`` is injectable
    for the same reason as the simulator sweep's: plumbing tests.
    """
    report = LiveSweepReport(base_seed=base_seed, schedules=schedules)
    for index in range(schedules):
        seed = base_seed + index
        case = generate_live_case(seed)
        result = run(case)
        report.cases_run += 1
        report.crash_events += len(case.crashes)
        report.fault_events += case.faults.event_count
        if result.failed:
            if shrink:
                shrunk = shrink_live_case(
                    case,
                    lambda candidate: run(candidate).failed,
                    max_attempts=max_shrink_attempts,
                )
                if shrunk != case:
                    result = replace(result, shrunk=shrunk)
            report.failures.append(result)
            if out_dir is not None:
                report.reproducers.append(
                    dump_live_reproducer(result, out_dir)
                )
            if fail_fast:
                if progress is not None:
                    progress(index, result)
                break
        if progress is not None:
            progress(index, result)
    return report


def dump_live_reproducer(result: LiveCaseResult, out_dir: Path) -> Path:
    """Write a failing live case as replayable JSON (``"live": true``)."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "live": True,
        "case": live_case_to_dict(result.case),
        "shrunk": (
            live_case_to_dict(result.shrunk)
            if result.shrunk is not None else None
        ),
        "violations": list(result.violations),
        "error": result.error,
    }
    path = out_dir / f"stress-live-repro-seed{result.case.seed}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_live_reproducer(path: Path) -> tuple[LiveStressCase, dict]:
    """Load a live reproducer; replays the shrunk case when present."""
    data = json.loads(Path(path).read_text())
    chosen = data.get("shrunk") or data["case"]
    return live_case_from_dict(chosen), data
