"""Minimise failing stress cases to small reproducers.

Given a case and a ``fails(case) -> bool`` predicate (normally "run it
and see whether any oracle objects"), :func:`shrink_case` greedily
removes whatever it can while the failure persists:

1. delete crash events, ddmin-style -- halves first, then smaller
   chunks, down to single events;
2. delete partition windows the same way;
3. switch off incidental complexity (duplicate injection, retransmit,
   the output-commit/GC extensions) one flag at a time;
4. cut the horizon down to just past the last remaining failure event.

Every candidate is itself a well-formed :class:`StressCase`, so the
final reproducer replays through exactly the same ``build_spec`` path as
the original -- there is no separate "shrunk" format to keep honest.
The predicate budget is bounded by ``max_attempts``; shrinking is
best-effort and always returns the smallest *verified-failing* case
seen, never an unverified guess.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence, TypeVar

from repro.stress.generate import StressCase, with_events

E = TypeVar("E")


class _Budget:
    """Counts predicate invocations; exhausted -> stop shrinking."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spent(self) -> bool:
        return self.used >= self.limit

    def charge(self) -> None:
        self.used += 1


def shrink_case(
    case: StressCase,
    fails: Callable[[StressCase], bool],
    *,
    max_attempts: int = 200,
) -> StressCase:
    """Return a minimal-ish case for which ``fails`` still holds.

    ``case`` itself must fail; the result is always a case the predicate
    confirmed.  ``max_attempts`` bounds the number of predicate calls
    (each one typically re-runs the simulation).
    """
    budget = _Budget(max_attempts)

    def check(candidate: StressCase) -> bool:
        if budget.spent():
            return False
        budget.charge()
        return fails(candidate)

    # Passes interact (fewer crashes may allow a shorter horizon, a
    # shorter horizon may strand a partition past the end), so iterate
    # until a full sweep changes nothing or the budget runs out.
    while not budget.spent():
        before = case
        case = _shrink_crashes(case, check)
        case = _shrink_partitions(case, check)
        case = _shrink_crash_points(case, check)
        case = _shrink_flags(case, check)
        case = _shrink_horizon(case, check)
        if case == before:
            break
    return case


# ---------------------------------------------------------------------------
# Event-list reduction (ddmin flavoured: big bites first)
# ---------------------------------------------------------------------------
def _reduce_events(
    events: Sequence[E],
    rebuild: Callable[[tuple[E, ...]], StressCase],
    check: Callable[[StressCase], bool],
) -> tuple[E, ...]:
    current = tuple(events)
    chunk = max(1, len(current) // 2)
    while chunk >= 1 and current:
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if check(rebuild(candidate)):
                current = candidate       # keep the deletion, same offset
            else:
                start += chunk
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return current


def _shrink_crashes(
    case: StressCase, check: Callable[[StressCase], bool]
) -> StressCase:
    if not case.crashes:
        return case
    kept = _reduce_events(
        case.crashes, lambda ev: with_events(case, crashes=ev), check
    )
    return with_events(case, crashes=kept)


def _shrink_partitions(
    case: StressCase, check: Callable[[StressCase], bool]
) -> StressCase:
    if not case.partitions:
        return case
    kept = _reduce_events(
        case.partitions, lambda ev: with_events(case, partitions=ev), check
    )
    return with_events(case, partitions=kept)


def _shrink_crash_points(
    case: StressCase, check: Callable[[StressCase], bool]
) -> StressCase:
    if not case.crash_points:
        return case
    kept = _reduce_events(
        case.crash_points,
        lambda ev: with_events(case, crash_points=ev),
        check,
    )
    return with_events(case, crash_points=kept)


# ---------------------------------------------------------------------------
# Flag and horizon simplification
# ---------------------------------------------------------------------------
def _shrink_flags(
    case: StressCase, check: Callable[[StressCase], bool]
) -> StressCase:
    candidates: list[StressCase] = []
    if case.duplicate_rate:
        candidates.append(replace(case, duplicate_rate=0.0))
    if case.retransmit_on_token:
        # Crash points are generated only for retransmit-enabled cases
        # (completeness after a mid-transition kill relies on Remark-1
        # retransmission), so dropping the flag must drop them too.
        candidates.append(
            replace(case, retransmit_on_token=False, crash_points=())
        )
    if case.commit_outputs or case.enable_gc:
        candidates.append(
            replace(
                case,
                commit_outputs=False,
                enable_gc=False,
                stability_interval=None,
            )
        )
    for candidate in candidates:
        if check(candidate):
            case = candidate
    return case


def _shrink_horizon(
    case: StressCase, check: Callable[[StressCase], bool]
) -> StressCase:
    """Pull the horizon down toward the last scheduled failure event."""
    last_event = 0.0
    for time, _pid, downtime in case.crashes:
        last_event = max(last_event, time + downtime)
    for _time, _groups, heal in case.partitions:
        last_event = max(last_event, heal)
    # A little slack after the last failure lets recovery traffic flow
    # before the drain phase takes over.
    floor = round(last_event + 2.0, 3)
    if floor >= case.horizon:
        return case
    candidate = replace(case, horizon=floor)
    if check(candidate):
        return candidate
    halfway = round((floor + case.horizon) / 2.0, 3)
    if halfway < case.horizon:
        candidate = replace(case, horizon=halfway)
        if check(candidate):
            return candidate
    return case
