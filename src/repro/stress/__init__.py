"""Randomized fault-injection stress harness (the PR-2 tentpole).

Thousands of seeded adversarial schedules -- overlapping Poisson
crashes, concurrent bursts, repeated partitions, duplicate injection,
FIFO and arbitrary ordering -- run against the Damani-Garg protocol and
graded by every invariant oracle the repo has.  Failing seeds shrink to
minimal JSON reproducers.  Entry points: ``python -m repro stress`` or
:func:`repro.stress.sweep`.
"""

from repro.stress.generate import (
    StressCase,
    build_spec,
    case_from_dict,
    case_to_dict,
    generate_case,
)
from repro.stress.live import (
    LiveCaseResult,
    LiveStressCase,
    LiveSweepReport,
    dump_live_reproducer,
    generate_live_case,
    live_case_from_dict,
    live_case_to_dict,
    live_sweep,
    load_live_reproducer,
    run_live_case,
    seeded_fault_plan,
    shrink_live_case,
)
from repro.stress.oracles import check_case
from repro.stress.profiles import DEFAULT_PROFILE, PROFILES, WORKLOADS, StressProfile
from repro.stress.shrink import shrink_case
from repro.stress.sweep import (
    CaseResult,
    SweepReport,
    dump_reproducer,
    exception_line,
    load_reproducer,
    run_case,
    sweep,
)

__all__ = [
    "StressCase",
    "StressProfile",
    "PROFILES",
    "DEFAULT_PROFILE",
    "WORKLOADS",
    "generate_case",
    "build_spec",
    "case_to_dict",
    "case_from_dict",
    "check_case",
    "shrink_case",
    "run_case",
    "exception_line",
    "sweep",
    "CaseResult",
    "SweepReport",
    "dump_reproducer",
    "load_reproducer",
    "LiveCaseResult",
    "LiveStressCase",
    "LiveSweepReport",
    "generate_live_case",
    "live_case_to_dict",
    "live_case_from_dict",
    "run_live_case",
    "shrink_live_case",
    "live_sweep",
    "seeded_fault_plan",
    "dump_live_reproducer",
    "load_live_reproducer",
]
