"""Stress-sweep tuning profiles and the workload registry.

A :class:`StressProfile` bounds the random schedule generator: system
sizes, horizons, crash rates, downtime ranges (long enough to overlap),
partition windows, duplication rates, ordering disciplines, and which
Section 6.5 extensions may be switched on.  Profiles are data so CI can
run a cheap sweep (``quick``) while local soaking uses ``heavy``.

Workload factories are deliberately smaller than the ones behind
``python -m repro run``: a stress sweep runs hundreds of schedules, so
each case must finish in tens of milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps import BankApp, PingPongApp, PipelineApp, RandomRoutingApp
from repro.runtime.app import Application

#: Workload name -> factory(n).  Every app here is piecewise-deterministic
#: and safe under any of the generated failure schedules.
WORKLOADS: dict[str, Callable[[int], Application]] = {
    "routing": lambda n: RandomRoutingApp(
        hops=40, seeds=tuple(range(min(2, n))), initial_items=2
    ),
    "routing-fanout": lambda n: RandomRoutingApp(
        hops=30, seeds=(0,), initial_items=2, fanout=2
    ),
    "pingpong": lambda n: PingPongApp(rounds=40),
    "pipeline": lambda n: PipelineApp(jobs=6),
    "bank": lambda n: BankApp(
        seeds=(0,) if n < 3 else (0, 2), max_chain=120
    ),
}


@dataclass(frozen=True)
class StressProfile:
    """Bounds for the randomized schedule generator (all seeded draws)."""

    name: str
    min_n: int = 3
    max_n: int = 6
    min_horizon: float = 30.0
    max_horizon: float = 70.0
    #: crashes per process per unit virtual time, drawn once per case
    crash_rate: tuple[float, float] = (0.005, 0.04)
    #: per-crash downtime range; the top end exceeds typical inter-arrival
    #: gaps so overlapping crash/restart pairs genuinely occur
    downtime: tuple[float, float] = (0.5, 8.0)
    max_failures_per_process: int = 4
    #: probability of adding one same-instant multi-process crash burst
    concurrent_burst_prob: float = 0.35
    max_burst_size: int = 3
    max_partitions: int = 2
    partition_duration: tuple[float, float] = (3.0, 12.0)
    #: probability the transport is at-least-once, and the rate if so
    duplicate_prob: float = 0.4
    duplicate_rate: tuple[float, float] = (0.05, 0.3)
    fifo_prob: float = 0.5
    retransmit_prob: float = 0.5
    #: probability of enabling output commit + GC (with a stability sweep)
    extensions_prob: float = 0.3
    #: probability (per retransmit-enabled case) of arming 1-2 stable-
    #: storage crash points (mid-transition kills; repro.storage.intents)
    crash_point_prob: float = 0.35
    checkpoint_interval: tuple[float, float] = (5.0, 12.0)
    flush_interval: tuple[float, float] = (1.5, 4.0)
    workloads: tuple[str, ...] = (
        "routing", "routing-fanout", "pingpong", "pipeline", "bank"
    )
    #: cap for the O(states^2) Theorem-1 oracle per case
    theorem_max_states: int = 200


PROFILES: dict[str, StressProfile] = {
    "quick": StressProfile(
        name="quick",
        max_n=5,
        min_horizon=20.0,
        max_horizon=40.0,
        max_partitions=1,
        theorem_max_states=120,
    ),
    "default": StressProfile(name="default"),
    "heavy": StressProfile(
        name="heavy",
        max_n=10,
        min_horizon=60.0,
        max_horizon=120.0,
        crash_rate=(0.01, 0.06),
        max_failures_per_process=6,
        max_partitions=4,
        theorem_max_states=300,
    ),
}

DEFAULT_PROFILE = PROFILES["default"]
