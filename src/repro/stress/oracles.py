"""Invariant oracles for stress runs.

:func:`check_case` grades one finished stress run against every safety
property the repo knows how to check, and returns the full list of
violations as strings (empty = the case passed).  It composes the
existing :mod:`repro.analysis` oracles rather than re-deriving anything:

- :func:`~repro.analysis.consistency.check_recovery` -- no surviving
  orphan, minimal rollback, maximum recoverable state, at most one
  rollback per failure, sound obsolete detection (Theorems 2/3, Lemma 4);
- :func:`~repro.analysis.theorem.check_theorem1` -- FTVC comparison
  agrees with the reconstructed happen-before on useful states
  (capped at ``theorem_max_states`` because the check is O(states^2));
- :func:`~repro.analysis.metrics.measure_overhead` -- the history
  structure stays within the paper's O(n.f) bound;
- output-commit safety -- when the Section 6.5 extension is on, no
  output committed to the environment may originate in a state that the
  ground truth later classifies as lost or orphaned.

The strings are shrinker-friendly: a case "still fails" when it produces
*any* violation, so shrinking never needs to parse them.
"""

from __future__ import annotations

from repro.analysis.consistency import check_recovery
from repro.analysis.metrics import measure_overhead
from repro.analysis.theorem import check_theorem1
from repro.harness.runner import ExperimentResult
from repro.sim.trace import EventKind
from repro.stress.generate import StressCase


def check_case(
    result: ExperimentResult,
    case: StressCase,
    *,
    theorem_max_states: int = 200,
) -> list[str]:
    """Run every oracle against ``result``; return all violations."""
    violations: list[str] = []

    verdict = check_recovery(result)
    violations.extend(f"recovery: {v}" for v in verdict.violations)

    theorem = check_theorem1(result, max_states=theorem_max_states)
    violations.extend(f"theorem1: {v}" for v in theorem.violations)

    overhead = measure_overhead(result)
    if not overhead.history_within_bound:
        violations.append(
            f"overhead: history size {overhead.history_records_max} exceeds "
            f"O(n.f) bound {overhead.history_bound}"
        )

    if case.commit_outputs:
        violations.extend(_check_output_commit(result, verdict))

    return violations


def _check_output_commit(result: ExperimentResult, verdict) -> list[str]:
    """Committed outputs must never originate in a lost/orphan state.

    The ground truth is reconstructed *after* the run, with full
    knowledge of every failure; the protocol had to make the same call
    online.  Any committed output whose source state the ground truth
    condemns is an unrecoverable leak to the environment.
    """
    gt = verdict.ground_truth
    condemned = verdict.orphans | gt.lost
    bad: list[str] = []
    for ev in result.trace.events(EventKind.OUTPUT):
        if not ev.get("committed"):
            continue
        uid = tuple(ev["uid"])
        if uid in condemned:
            bad.append(
                f"output-commit: pid {ev.pid} committed output "
                f"{ev.get('value')!r} from condemned state {uid} at "
                f"t={ev.time:.3f}"
            )
    return bad
