"""The stress sweep: generate, run, grade, shrink, report.

:func:`sweep` drives the whole tentpole loop: for each seed in the
block, :func:`~repro.stress.generate.generate_case` draws a schedule,
:func:`run_case` executes it under the Damani-Garg protocol and grades
it with every oracle in :mod:`repro.stress.oracles`, and any failure is
handed to :func:`~repro.stress.shrink.shrink_case` and dumped as a
replayable JSON reproducer.

A simulator bug that *raises* (rather than merely violating an
invariant) is treated exactly like an oracle violation -- caught,
reported, shrunk -- so the sweep keeps going and one bad schedule never
hides the rest of the block.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.harness.runner import run_experiment
from repro.stress.generate import (
    StressCase,
    build_spec,
    case_from_dict,
    case_to_dict,
    generate_case,
)
from repro.stress.oracles import check_case
from repro.stress.profiles import DEFAULT_PROFILE, StressProfile
from repro.stress.shrink import shrink_case


@dataclass(frozen=True)
class CaseResult:
    """One graded run."""

    case: StressCase
    violations: tuple[str, ...] = ()
    error: str | None = None
    shrunk: StressCase | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations) or self.error is not None

    def headline(self) -> str:
        if self.error is not None:
            first = self.error.strip().splitlines()[-1]
            return f"exception: {first}"
        if self.violations:
            return self.violations[0]
        return "ok"


def run_case(
    case: StressCase, *, theorem_max_states: int = 200
) -> CaseResult:
    """Execute one schedule and grade it; exceptions become failures."""
    try:
        result = run_experiment(build_spec(case))
        violations = check_case(
            result, case, theorem_max_states=theorem_max_states
        )
    except Exception:
        return CaseResult(case=case, error=traceback.format_exc(limit=12))
    return CaseResult(case=case, violations=tuple(violations))


@dataclass
class SweepReport:
    """Aggregate outcome of one seed block."""

    profile: str
    base_seed: int
    schedules: int
    cases_run: int = 0
    crash_events: int = 0
    partition_events: int = 0
    duplicate_cases: int = 0
    failures: list[CaseResult] = field(default_factory=list)
    reproducers: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"stress sweep: {self.cases_run}/{self.schedules} schedules "
            f"(profile={self.profile}, seeds {self.base_seed}.."
            f"{self.base_seed + self.schedules - 1})",
            f"  injected: {self.crash_events} crashes, "
            f"{self.partition_events} partitions, "
            f"{self.duplicate_cases} duplicate-injecting cases",
        ]
        if self.ok:
            lines.append("  all invariants held")
        else:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for fr in self.failures:
                repro = fr.shrunk if fr.shrunk is not None else fr.case
                lines.append(f"    seed {fr.case.seed}: {fr.headline()}")
                lines.append(f"      reproducer: {repro.describe()}")
        return "\n".join(lines)


def sweep(
    schedules: int,
    *,
    base_seed: int = 0,
    profile: StressProfile = DEFAULT_PROFILE,
    shrink: bool = True,
    max_shrink_attempts: int = 150,
    fail_fast: bool = False,
    out_dir: Path | None = None,
    run: Callable[..., CaseResult] = run_case,
    progress: Callable[[int, CaseResult], None] | None = None,
) -> SweepReport:
    """Run ``schedules`` generated cases for seeds ``base_seed..``.

    ``run`` is injectable so tests can exercise the sweep/shrink/dump
    plumbing against synthetic failures without paying for simulations.
    """
    report = SweepReport(
        profile=profile.name, base_seed=base_seed, schedules=schedules
    )
    for index in range(schedules):
        seed = base_seed + index
        case = generate_case(seed, profile)
        result = run(case, theorem_max_states=profile.theorem_max_states)
        report.cases_run += 1
        report.crash_events += case.crash_count
        report.partition_events += case.partition_count
        if case.duplicate_rate:
            report.duplicate_cases += 1
        if result.failed:
            if shrink:
                def fails(candidate: StressCase) -> bool:
                    return run(
                        candidate,
                        theorem_max_states=profile.theorem_max_states,
                    ).failed

                shrunk = shrink_case(
                    result.case, fails, max_attempts=max_shrink_attempts
                )
                if shrunk != result.case:
                    result = CaseResult(
                        case=result.case,
                        violations=result.violations,
                        error=result.error,
                        shrunk=shrunk,
                    )
            report.failures.append(result)
            if out_dir is not None:
                report.reproducers.append(dump_reproducer(result, out_dir))
            if fail_fast:
                if progress is not None:
                    progress(index, result)
                break
        if progress is not None:
            progress(index, result)
    return report


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------
def dump_reproducer(result: CaseResult, out_dir: Path) -> Path:
    """Write a failing case (and its shrunk form) as replayable JSON."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "case": case_to_dict(result.case),
        "shrunk": (
            case_to_dict(result.shrunk) if result.shrunk is not None else None
        ),
        "violations": list(result.violations),
        "error": result.error,
    }
    path = out_dir / f"stress-repro-seed{result.case.seed}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: Path) -> tuple[StressCase, dict]:
    """Load a reproducer; returns (case to replay, full payload).

    Replays the shrunk case when one was recorded -- that is the point
    of shrinking -- with the original still available in the payload.
    """
    data = json.loads(Path(path).read_text())
    chosen = data.get("shrunk") or data["case"]
    return case_from_dict(chosen), data
