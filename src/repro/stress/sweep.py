"""The stress sweep: generate, run, grade, shrink, report.

:func:`sweep` drives the whole tentpole loop: for each seed in the
block, :func:`~repro.stress.generate.generate_case` draws a schedule,
:func:`run_case` executes it under the Damani-Garg protocol and grades
it with every oracle in :mod:`repro.stress.oracles`, and any failure is
handed to :func:`~repro.stress.shrink.shrink_case` and dumped as a
replayable JSON reproducer.

A simulator bug that *raises* (rather than merely violating an
invariant) is treated exactly like an oracle violation -- caught,
reported, shrunk -- so the sweep keeps going and one bad schedule never
hides the rest of the block.
"""

from __future__ import annotations

import json
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.exec.cache import ResultCache

from repro.harness.runner import run_experiment
from repro.stress.generate import (
    StressCase,
    build_spec,
    case_from_dict,
    case_to_dict,
    generate_case,
)
from repro.stress.oracles import check_case
from repro.stress.profiles import DEFAULT_PROFILE, StressProfile
from repro.stress.shrink import shrink_case


@dataclass(frozen=True)
class CaseResult:
    """One graded run.

    ``trace_signature`` is the deterministic digest of the run's ground
    truth trace (see :meth:`repro.sim.trace.SimTrace.signature`); the
    parallel-vs-serial equivalence oracle compares it to prove that
    ``jobs=N`` executed bit-identical simulations.
    """

    case: StressCase
    violations: tuple[str, ...] = ()
    error: str | None = None
    shrunk: StressCase | None = None
    trace_signature: str | None = None

    @property
    def failed(self) -> bool:
        return bool(self.violations) or self.error is not None

    def headline(self) -> str:
        if self.error is not None:
            return f"exception: {exception_line(self.error)}"
        if self.violations:
            return self.violations[0]
        return "ok"


def exception_line(error: str) -> str:
    """The exception line of a formatted traceback (its last non-blank
    line, e.g. ``"ValueError: boom"``) -- what a failure headline shows."""
    lines = [line for line in error.strip().splitlines() if line.strip()]
    return lines[-1].strip() if lines else "unknown error"


def run_case(
    case: StressCase, *, theorem_max_states: int = 200
) -> CaseResult:
    """Execute one schedule and grade it; exceptions become failures."""
    try:
        result = run_experiment(build_spec(case))
        violations = check_case(
            result, case, theorem_max_states=theorem_max_states
        )
        signature = result.trace.signature()
    except Exception:
        return CaseResult(case=case, error=traceback.format_exc(limit=12))
    return CaseResult(
        case=case, violations=tuple(violations), trace_signature=signature
    )


def exec_run_case(payload: dict) -> CaseResult:
    """Worker entry point for the parallel engine (plain-data payload)."""
    case = case_from_dict(payload["case"])
    return run_case(
        case, theorem_max_states=int(payload["theorem_max_states"])
    )


@dataclass
class SweepReport:
    """Aggregate outcome of one seed block."""

    profile: str
    base_seed: int
    schedules: int
    cases_run: int = 0
    crash_events: int = 0
    partition_events: int = 0
    duplicate_cases: int = 0
    jobs: int = 1
    cache_hits: int = 0
    failures: list[CaseResult] = field(default_factory=list)
    reproducers: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"stress sweep: {self.cases_run}/{self.schedules} schedules "
            f"(profile={self.profile}, seeds {self.base_seed}.."
            f"{self.base_seed + self.schedules - 1}"
            + (f", jobs={self.jobs}" if self.jobs > 1 else "")
            + ")",
            f"  injected: {self.crash_events} crashes, "
            f"{self.partition_events} partitions, "
            f"{self.duplicate_cases} duplicate-injecting cases",
        ]
        if self.cache_hits:
            lines.append(
                f"  cache: {self.cache_hits}/{self.schedules} "
                "schedules served from the result cache"
            )
        if self.ok:
            lines.append("  all invariants held")
        else:
            lines.append(f"  FAILURES: {len(self.failures)}")
            for fr in self.failures:
                repro = fr.shrunk if fr.shrunk is not None else fr.case
                lines.append(f"    seed {fr.case.seed}: {fr.headline()}")
                lines.append(f"      reproducer: {repro.describe()}")
        return "\n".join(lines)


def sweep(
    schedules: int,
    *,
    base_seed: int = 0,
    profile: StressProfile = DEFAULT_PROFILE,
    shrink: bool = True,
    max_shrink_attempts: int = 150,
    fail_fast: bool = False,
    out_dir: Path | None = None,
    run: Callable[..., CaseResult] = run_case,
    progress: Callable[[int, CaseResult], None] | None = None,
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    budget_slots: int | None = None,
) -> SweepReport:
    """Run ``schedules`` generated cases for seeds ``base_seed..``.

    ``run`` is injectable so tests can exercise the sweep/shrink/dump
    plumbing against synthetic failures without paying for simulations.

    ``jobs > 1`` (or a ``cache``) routes execution through the
    :mod:`repro.exec` engine: cases run across crash-isolated worker
    processes and merge back in seed order, so the report is identical to
    the serial one (the equivalence property test pins this).  Shrinking
    stays serial per failure, in the parent, exactly as before -- except
    for schedules that *crashed their worker*, which are never re-run
    in-process.  ``progress`` is then called in completion order with the
    completed-count as its index.
    """
    report = SweepReport(
        profile=profile.name,
        base_seed=base_seed,
        schedules=schedules,
        jobs=max(1, jobs),
    )

    def account(case: StressCase) -> None:
        report.cases_run += 1
        report.crash_events += case.crash_count
        report.partition_events += case.partition_count
        if case.duplicate_rate:
            report.duplicate_cases += 1

    def record_failure(result: CaseResult, *, shrinkable: bool) -> CaseResult:
        if shrink and shrinkable:
            def fails(candidate: StressCase) -> bool:
                return run(
                    candidate,
                    theorem_max_states=profile.theorem_max_states,
                ).failed

            shrunk = shrink_case(
                result.case, fails, max_attempts=max_shrink_attempts
            )
            if shrunk != result.case:
                result = CaseResult(
                    case=result.case,
                    violations=result.violations,
                    error=result.error,
                    shrunk=shrunk,
                    trace_signature=result.trace_signature,
                )
        report.failures.append(result)
        if out_dir is not None:
            report.reproducers.append(dump_reproducer(result, out_dir))
        return result

    if jobs > 1 or cache is not None:
        _parallel_sweep(report, profile, run, progress, fail_fast,
                        record_failure, account, jobs, cache, budget_slots)
        return report

    for index in range(schedules):
        seed = base_seed + index
        case = generate_case(seed, profile)
        result = run(case, theorem_max_states=profile.theorem_max_states)
        account(case)
        if result.failed:
            result = record_failure(result, shrinkable=True)
            if fail_fast:
                if progress is not None:
                    progress(index, result)
                break
        if progress is not None:
            progress(index, result)
    return report


def _parallel_sweep(
    report: SweepReport,
    profile: StressProfile,
    run: Callable[..., CaseResult],
    progress: Callable[[int, CaseResult], None] | None,
    fail_fast: bool,
    record_failure: Callable[..., CaseResult],
    account: Callable[[StressCase], None],
    jobs: int,
    cache: "ResultCache | None",
    budget_slots: int | None = None,
) -> None:
    """Engine-backed sweep body: fan out, merge in seed order, then
    shrink/dump failures serially exactly like the serial loop."""
    from repro.exec.runner import ParallelRunner, ProcessBudget
    from repro.exec.tasks import Task

    if run is not run_case:
        raise ValueError(
            "parallel/cached sweeps ship the canonical run_case to "
            "workers; an injected runner requires jobs=1 and no cache"
        )
    if fail_fast:
        raise ValueError("fail_fast requires jobs=1 and no cache")

    cases = [
        generate_case(report.base_seed + index, profile)
        for index in range(report.schedules)
    ]
    tasks = [
        Task(
            fn="repro.stress.sweep:exec_run_case",
            payload={
                "case": case_to_dict(case),
                "theorem_max_states": profile.theorem_max_states,
            },
            label=f"seed {case.seed}",
        )
        for case in cases
    ]

    def on_done(done_count: int, outcome) -> None:
        if progress is not None:
            progress(done_count - 1, _outcome_to_result(outcome, cases))

    # Optional slot budget: stress cases weigh 1 slot each, so this only
    # bites when the caller wants the sweep to coexist with heavier
    # multi-process tasks or to cap concurrency below ``jobs``.
    budget = ProcessBudget(budget_slots) if budget_slots else None
    runner = ParallelRunner(jobs=max(1, jobs), cache=cache, budget=budget)
    outcomes = runner.map(tasks, progress=on_done)

    for case, outcome in zip(cases, outcomes):
        account(case)
        if outcome.cached:
            report.cache_hits += 1
        result = _outcome_to_result(outcome, cases)
        if result.failed:
            # A schedule that killed its worker process must never be
            # re-executed in the parent; everything else shrinks as usual.
            record_failure(result, shrinkable=not outcome.crashed)


def _outcome_to_result(outcome, cases: list[StressCase]) -> CaseResult:
    """Convert an engine outcome back into the sweep's CaseResult."""
    if outcome.ok:
        return outcome.value
    return CaseResult(case=cases[outcome.index], error=outcome.error)


# ---------------------------------------------------------------------------
# Reproducer files
# ---------------------------------------------------------------------------
def dump_reproducer(result: CaseResult, out_dir: Path) -> Path:
    """Write a failing case (and its shrunk form) as replayable JSON."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "case": case_to_dict(result.case),
        "shrunk": (
            case_to_dict(result.shrunk) if result.shrunk is not None else None
        ),
        "violations": list(result.violations),
        "error": result.error,
    }
    path = out_dir / f"stress-repro-seed{result.case.seed}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_reproducer(path: Path) -> tuple[StressCase, dict]:
    """Load a reproducer; returns (case to replay, full payload).

    Replays the shrunk case when one was recorded -- that is the point
    of shrinking -- with the original still available in the payload.
    """
    data = json.loads(Path(path).read_text())
    chosen = data.get("shrunk") or data["case"]
    return case_from_dict(chosen), data
