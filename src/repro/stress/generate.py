"""Randomized fault-schedule generation.

A :class:`StressCase` is the *complete*, plain-data description of one
adversarial run: system size, workload, delivery order, duplication rate,
protocol extension flags, and the full crash and partition schedules.  It
is a pure function of ``(profile, seed)`` -- :func:`generate_case` draws
everything from a stream derived with the same stable hash the simulator
uses -- and it round-trips through JSON, which is what makes failing
seeds replayable and shrinkable.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Any

from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan, CrashPointEvent, PartitionPlan
from repro.sim.network import DeliveryOrder
from repro.sim.rng import derive_seed
from repro.storage.intents import SIM_CRASH_POINTS
from repro.stress.profiles import DEFAULT_PROFILE, WORKLOADS, StressProfile

#: (time, pid, downtime)
CrashTuple = tuple[float, int, float]
#: (time, groups, heal_time) with groups a tuple of pid tuples
PartitionTuple = tuple[float, tuple[tuple[int, ...], ...], float]
#: (pid, "kind:step", downtime) -- see repro.storage.intents
CrashPointTuple = tuple[int, str, float]


@dataclass(frozen=True)
class StressCase:
    """One generated schedule; everything needed to reproduce the run."""

    seed: int
    n: int
    workload: str
    horizon: float
    order: str                       # "fifo" | "random"
    duplicate_rate: float
    checkpoint_interval: float
    flush_interval: float
    retransmit_on_token: bool
    commit_outputs: bool
    enable_gc: bool
    stability_interval: float | None
    crashes: tuple[CrashTuple, ...]
    partitions: tuple[PartitionTuple, ...]
    # Armed stable-storage crash points (pid, "kind:step", downtime);
    # generated only for retransmit-enabled cases, mirroring the live
    # runtime where mid-transition kills rely on Remark-1 retransmission
    # for completeness.
    crash_points: tuple[CrashPointTuple, ...] = ()

    @property
    def crash_count(self) -> int:
        return len(self.crashes)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)

    def describe(self) -> str:
        flags = []
        if self.duplicate_rate:
            flags.append(f"dup={self.duplicate_rate:.2f}")
        if self.retransmit_on_token:
            flags.append("retransmit")
        if self.commit_outputs:
            flags.append("commit+gc")
        if self.crash_points:
            flags.append(f"points={len(self.crash_points)}")
        return (
            f"seed={self.seed} n={self.n} {self.workload} "
            f"h={self.horizon:.0f} {self.order} "
            f"crashes={self.crash_count} partitions={self.partition_count}"
            + (" " + " ".join(flags) if flags else "")
        )


def generate_case(
    seed: int, profile: StressProfile = DEFAULT_PROFILE
) -> StressCase:
    """Deterministically draw one schedule for ``seed`` under ``profile``."""
    rng = random.Random(derive_seed(seed, f"stress/{profile.name}"))
    n = rng.randint(profile.min_n, profile.max_n)
    horizon = rng.uniform(profile.min_horizon, profile.max_horizon)
    workload = rng.choice(list(profile.workloads))
    order = "fifo" if rng.random() < profile.fifo_prob else "random"
    duplicate_rate = (
        rng.uniform(*profile.duplicate_rate)
        if rng.random() < profile.duplicate_prob
        else 0.0
    )
    retransmit = rng.random() < profile.retransmit_prob
    extensions = rng.random() < profile.extensions_prob
    return StressCase(
        seed=seed,
        n=n,
        workload=workload,
        horizon=round(horizon, 3),
        order=order,
        duplicate_rate=round(duplicate_rate, 3),
        checkpoint_interval=round(
            rng.uniform(*profile.checkpoint_interval), 3
        ),
        flush_interval=round(rng.uniform(*profile.flush_interval), 3),
        retransmit_on_token=retransmit,
        commit_outputs=extensions,
        enable_gc=extensions,
        stability_interval=round(rng.uniform(3.0, 6.0), 3) if extensions else None,
        crashes=_generate_crashes(rng, n, horizon, profile),
        partitions=_generate_partitions(rng, n, horizon, profile),
        crash_points=_generate_crash_points(seed, n, retransmit, profile),
    )


def _generate_crash_points(
    seed: int, n: int, retransmit: bool, profile: StressProfile
) -> tuple[CrashPointTuple, ...]:
    """Arm 1-2 stable-storage crash points on random processes.

    Drawn from a *separately derived* stream so pre-existing seeds keep
    generating byte-identical schedules (the points are purely
    additive).  Gated on retransmit: a mid-transition kill can orphan a
    delivered-but-truncated message, and completeness then relies on
    Remark-1 retransmission -- exactly the live-runtime configuration.
    """
    if not retransmit or profile.crash_point_prob <= 0:
        return ()
    rng = random.Random(
        derive_seed(seed, f"stress/{profile.name}/crash_points")
    )
    if rng.random() >= profile.crash_point_prob:
        return ()
    count = rng.randint(1, 2)
    points = []
    for _ in range(count):
        points.append(
            (
                rng.randrange(n),
                rng.choice(SIM_CRASH_POINTS),
                round(rng.uniform(*profile.downtime), 3),
            )
        )
    return tuple(sorted(set(points)))


def _generate_crashes(
    rng: random.Random, n: int, horizon: float, profile: StressProfile
) -> tuple[CrashTuple, ...]:
    """Poisson arrivals per process, downtimes long enough to overlap,
    plus an optional same-instant concurrent burst."""
    rate = rng.uniform(*profile.crash_rate)
    events: list[CrashTuple] = []
    for pid in range(n):
        t, count = 0.0, 0
        while count < profile.max_failures_per_process:
            t += rng.expovariate(rate)
            if t >= horizon * 0.85:
                break
            events.append(
                (round(t, 3), pid, round(rng.uniform(*profile.downtime), 3))
            )
            count += 1
    if n >= 2 and rng.random() < profile.concurrent_burst_prob:
        burst_at = round(rng.uniform(horizon * 0.2, horizon * 0.7), 3)
        size = rng.randint(2, min(profile.max_burst_size, n))
        for pid in rng.sample(range(n), size):
            events.append(
                (burst_at, pid, round(rng.uniform(*profile.downtime), 3))
            )
    events.sort(key=lambda e: (e[0], e[1]))
    return tuple(events)


def _generate_partitions(
    rng: random.Random, n: int, horizon: float, profile: StressProfile
) -> tuple[PartitionTuple, ...]:
    """Sequential, non-overlapping partition windows with random 2-way
    splits (``PartitionPlan.validate`` enforces the non-overlap)."""
    if n < 2 or profile.max_partitions == 0:
        return ()
    count = rng.randint(0, profile.max_partitions)
    events: list[PartitionTuple] = []
    t = rng.uniform(0.0, horizon * 0.3)
    for _ in range(count):
        start = t + rng.uniform(0.5, horizon * 0.2)
        duration = rng.uniform(*profile.partition_duration)
        heal = start + duration
        if heal >= horizon * 0.95:
            break
        pids = list(range(n))
        rng.shuffle(pids)
        cut = rng.randint(1, n - 1)
        groups = (tuple(sorted(pids[:cut])), tuple(sorted(pids[cut:])))
        events.append((round(start, 3), groups, round(heal, 3)))
        t = heal
    return tuple(events)


# ---------------------------------------------------------------------------
# Case -> runnable spec
# ---------------------------------------------------------------------------
def build_spec(case: StressCase) -> ExperimentSpec:
    """Assemble the :class:`ExperimentSpec` a case describes."""
    crashes = CrashPlan()
    for time, pid, downtime in case.crashes:
        crashes.crash(time, pid, downtime)
    partitions = PartitionPlan()
    for time, groups, heal_time in case.partitions:
        partitions.partition(time, groups, heal_time)
    return ExperimentSpec(
        n=case.n,
        app=WORKLOADS[case.workload](case.n),
        protocol=DamaniGargProcess,
        seed=case.seed,
        horizon=case.horizon,
        order=(
            DeliveryOrder.FIFO if case.order == "fifo"
            else DeliveryOrder.RANDOM
        ),
        duplicate_rate=case.duplicate_rate,
        config=ProtocolConfig(
            checkpoint_interval=case.checkpoint_interval,
            flush_interval=case.flush_interval,
            retransmit_on_token=case.retransmit_on_token,
            commit_outputs=case.commit_outputs,
            enable_gc=case.enable_gc,
        ),
        crashes=crashes if case.crashes else None,
        partitions=partitions if case.partitions else None,
        crash_points=tuple(
            CrashPointEvent(pid, point, downtime)
            for pid, point, downtime in case.crash_points
        ),
        stability_interval=case.stability_interval,
    )


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------
def case_to_dict(case: StressCase) -> dict[str, Any]:
    """Flatten a case to JSON-serialisable plain data."""
    return asdict(case)


def case_from_dict(data: dict[str, Any]) -> StressCase:
    """Rebuild a case from :func:`case_to_dict` output (JSON-safe types)."""
    return StressCase(
        seed=int(data["seed"]),
        n=int(data["n"]),
        workload=str(data["workload"]),
        horizon=float(data["horizon"]),
        order=str(data["order"]),
        duplicate_rate=float(data["duplicate_rate"]),
        checkpoint_interval=float(data["checkpoint_interval"]),
        flush_interval=float(data["flush_interval"]),
        retransmit_on_token=bool(data["retransmit_on_token"]),
        commit_outputs=bool(data["commit_outputs"]),
        enable_gc=bool(data["enable_gc"]),
        stability_interval=(
            None if data["stability_interval"] is None
            else float(data["stability_interval"])
        ),
        crashes=tuple(
            (float(t), int(pid), float(down))
            for t, pid, down in data["crashes"]
        ),
        partitions=tuple(
            (
                float(t),
                tuple(tuple(int(p) for p in group) for group in groups),
                float(heal),
            )
            for t, groups, heal in data["partitions"]
        ),
        # Absent in reproducers recorded before crash points existed.
        crash_points=tuple(
            (int(pid), str(point), float(down))
            for pid, point, down in data.get("crash_points", ())
        ),
    )


def with_events(
    case: StressCase,
    *,
    crashes: tuple[CrashTuple, ...] | None = None,
    partitions: tuple[PartitionTuple, ...] | None = None,
    crash_points: tuple[CrashPointTuple, ...] | None = None,
) -> StressCase:
    """Copy ``case`` with a different failure schedule (shrinker helper)."""
    kwargs: dict[str, Any] = {}
    if crashes is not None:
        kwargs["crashes"] = crashes
    if partitions is not None:
        kwargs["partitions"] = partitions
    if crash_points is not None:
        kwargs["crash_points"] = crash_points
    return replace(case, **kwargs)
