"""repro: a full reproduction of Damani & Garg (ICDCS 1996),
"How to Recover Efficiently and Asynchronously when Optimism Fails".

Public API tour
---------------

The paper's contribution::

    from repro import (
        FaultTolerantVectorClock,   # Section 4 / Figure 2
        History,                    # Section 5 / Figure 3
        RecoveryToken,
        DamaniGargProcess,          # Section 6 / Figure 4
    )

Running an experiment::

    from repro import ExperimentSpec, run_experiment, CrashPlan
    from repro.apps import RandomRoutingApp
    from repro.protocols import ProtocolConfig

    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1)),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(time=20.0, pid=1),
        horizon=80.0,
    )
    result = run_experiment(spec)

Checking it against the ground truth::

    from repro.analysis import check_recovery
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations
"""

from repro.core import (
    AppEnvelope,
    ClockEntry,
    DamaniGargProcess,
    FaultTolerantVectorClock,
    History,
    HistoryRecord,
    RecordKind,
    RecoveryToken,
)
from repro.harness import ExperimentResult, ExperimentSpec, run_experiment
from repro.obs import NullTracer, Tracer
from repro.protocols import BaseRecoveryProcess, ProtocolConfig, ProtocolStats
from repro.sim import (
    Application,
    CrashPlan,
    DeliveryOrder,
    FailureInjector,
    Network,
    PartitionPlan,
    ProcessContext,
    ProcessHost,
    SimTrace,
    Simulator,
)

__version__ = "1.0.0"

__all__ = [
    "AppEnvelope",
    "Application",
    "BaseRecoveryProcess",
    "ClockEntry",
    "CrashPlan",
    "DamaniGargProcess",
    "DeliveryOrder",
    "ExperimentResult",
    "ExperimentSpec",
    "FailureInjector",
    "FaultTolerantVectorClock",
    "History",
    "HistoryRecord",
    "Network",
    "PartitionPlan",
    "ProcessContext",
    "ProcessHost",
    "NullTracer",
    "ProtocolConfig",
    "ProtocolStats",
    "RecordKind",
    "Tracer",
    "RecoveryToken",
    "SimTrace",
    "Simulator",
    "run_experiment",
    "__version__",
]
