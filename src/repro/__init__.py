"""repro: a full reproduction of Damani & Garg (ICDCS 1996),
"How to Recover Efficiently and Asynchronously when Optimism Fails".

Public API tour
---------------

The paper's contribution::

    from repro import (
        FaultTolerantVectorClock,   # Section 4 / Figure 2
        History,                    # Section 5 / Figure 3
        RecoveryToken,
        DamaniGargProcess,          # Section 6 / Figure 4
    )

Running an experiment::

    from repro import ExperimentSpec, run_experiment, CrashPlan
    from repro.apps import RandomRoutingApp
    from repro.protocols import ProtocolConfig

    spec = ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=40, seeds=(0, 1)),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(time=20.0, pid=1),
        horizon=80.0,
    )
    result = run_experiment(spec)

Checking it against the ground truth::

    from repro.analysis import check_recovery
    verdict = check_recovery(result)
    assert verdict.ok, verdict.violations

Engines
-------

Protocols are written against :class:`~repro.runtime.env.RuntimeEnv`, the
narrow engine interface.  Two engines implement it: :class:`SimEnv`
(deterministic discrete-event simulation, what ``run_experiment`` uses)
and :class:`LiveEnv` (asyncio TCP cluster of real OS processes; see
``python -m repro live`` and ``docs/API.md``).
"""

from repro.core import (
    AppEnvelope,
    ClockEntry,
    DamaniGargProcess,
    FaultTolerantVectorClock,
    History,
    HistoryRecord,
    RecordKind,
    RecoveryToken,
)
from repro.harness import ExperimentResult, ExperimentSpec, run_experiment
from repro.obs import NullTracer, Tracer
from repro.protocols import BaseRecoveryProcess, ProtocolConfig, ProtocolStats
from repro.runtime import (
    Application,
    EventKind,
    NetworkMessage,
    ProcessContext,
    RuntimeEnv,
    SimTrace,
    TimerHandle,
    TraceEvent,
)
from repro.sim import (
    CrashPlan,
    DeliveryOrder,
    FailureInjector,
    Network,
    PartitionPlan,
    ProcessHost,
    SimEnv,
    Simulator,
)


def __getattr__(name: str):
    # repro.live pulls in asyncio machinery; load it only when asked for.
    if name == "LiveEnv":
        from repro.live import LiveEnv

        return LiveEnv
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__version__ = "1.0.0"

__all__ = [
    "AppEnvelope",
    "Application",
    "BaseRecoveryProcess",
    "ClockEntry",
    "CrashPlan",
    "DamaniGargProcess",
    "DeliveryOrder",
    "EventKind",
    "ExperimentResult",
    "ExperimentSpec",
    "FailureInjector",
    "FaultTolerantVectorClock",
    "History",
    "HistoryRecord",
    "LiveEnv",
    "Network",
    "NetworkMessage",
    "NullTracer",
    "PartitionPlan",
    "ProcessContext",
    "ProcessHost",
    "ProtocolConfig",
    "ProtocolStats",
    "RecordKind",
    "RecoveryToken",
    "RuntimeEnv",
    "SimEnv",
    "SimTrace",
    "Simulator",
    "TimerHandle",
    "TraceEvent",
    "Tracer",
    "run_experiment",
    "__version__",
]
