"""Benchmark wrapper: instrumented runs -> ``BENCH_obs.json``.

The ROADMAP's perf trajectory needs a machine-readable number per PR; this
module produces it.  :func:`run_bench` executes a named scenario (see
:mod:`repro.obs.scenarios`) with a live tracer and wall-clock timing, and
:func:`write_bench_json` serialises the headline quantities -- wall time,
events/second, peak history records, piggyback bytes -- into a flat JSON
file that successive PRs can diff.

``jobs > 1`` fans the *repeats* out over the :mod:`repro.exec` worker
pool; because each repeat is an identical seeded run, the counters and the
trace signature must come back the same from every worker, which doubles
as a cross-process determinism check.  Timing tasks are never cached
(``cacheable=False``): a wall-time served from disk would be a lie.

:func:`run_bench_matrix` benchmarks *several* scenarios in one call --
scenario x repeat tasks all share one pool -- and merges them into a
single ``BENCH_obs.json``-compatible report per scenario (format
``repro-bench-matrix-v1``).

Schema (``BENCH_obs.json``)::

    {
      "format": "repro-bench-v1",
      "scenario": "quickstart",
      "n": 4, "seed": 7,
      "repeats": 3,
      "wall_time_s": ...,            # best (min) of the repeats
      "wall_time_s_all": [...],
      "events_fired": ...,
      "events_per_sec": ...,         # events_fired / best wall time
      "delivered": ...,
      "peak_history_records": ...,   # the O(n·f) quantity, live-sampled
      "piggyback_bytes_total": ...,
      "piggyback_bytes_per_message": ...,
      "tokens_broadcast": ...,
      "rollbacks": ..., "restarts": ...,
      "trace_signature": "...",      # determinism cross-check
      "overhead": { ... }            # analysis.metrics.OverheadReport
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from repro.obs.scenarios import SCENARIOS, build_scenario
from repro.obs.tracer import Tracer

DEFAULT_BENCH_PATH = "BENCH_obs.json"
DEFAULT_MATRIX_PATH = "BENCH_obs_matrix.json"


@dataclass
class BenchResult:
    """Headline numbers from one benchmarked scenario."""

    scenario: str
    n: int
    seed: int
    repeats: int
    wall_time_s: float
    wall_time_s_all: list[float]
    events_fired: int
    events_per_sec: float
    delivered: int
    peak_history_records: int
    piggyback_bytes_total: float
    piggyback_bytes_per_message: float
    tokens_broadcast: float
    rollbacks: int
    restarts: int
    trace_signature: str
    overhead: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"format": "repro-bench-v1"}
        out.update(self.__dict__)
        return out


def _measure_once(scenario: str, seed: int | None) -> dict[str, Any]:
    """One instrumented repeat, as plain data (worker-transportable)."""
    from repro.analysis.metrics import measure_overhead
    from repro.harness.runner import run_experiment

    spec = build_scenario(scenario, seed)
    tracer = Tracer()
    spec.tracer = tracer
    start = perf_counter()
    result = run_experiment(spec)
    wall_time_s = perf_counter() - start
    app_sent = result.total("app_sent")
    piggyback_bytes = tracer.counter_value("dg.piggyback_bytes")
    return {
        "wall_time_s": wall_time_s,
        "trace_signature": result.trace.signature(),
        "n": result.spec.n,
        "seed": result.spec.seed,
        "events_fired": result.sim.events_fired,
        "delivered": result.total_delivered,
        "peak_history_records": int(
            tracer.max_gauge_over("dg.history_records.")
        ),
        "piggyback_bytes_total": piggyback_bytes,
        "piggyback_bytes_per_message": (
            piggyback_bytes / app_sent if app_sent else 0.0
        ),
        "tokens_broadcast": tracer.counter_value("dg.tokens_broadcast"),
        "rollbacks": result.total_rollbacks,
        "restarts": result.total_restarts,
        "overhead": measure_overhead(result).to_dict(),
    }


def exec_bench_repeat(payload: dict) -> dict[str, Any]:
    """Worker entry point: one repeat of one scenario.

    The payload carries a ``repeat`` index purely to keep task identities
    distinct in progress output; the measurement ignores it.
    """
    return _measure_once(payload["scenario"], payload["seed"])


def _combine(
    scenario: str, repeats_data: list[dict[str, Any]]
) -> BenchResult:
    """Merge per-repeat measurements into one BenchResult.

    Every repeat is the same seeded run, so all non-timing fields must be
    identical; a signature mismatch means the scenario (or the worker
    pool) is nondeterministic and the benchmark is meaningless.
    """
    signatures = {d["trace_signature"] for d in repeats_data}
    if len(signatures) != 1:
        raise RuntimeError(
            f"scenario {scenario!r} is nondeterministic across repeats "
            f"({len(signatures)} distinct trace signatures)"
        )
    wall_times = [d["wall_time_s"] for d in repeats_data]
    best = min(wall_times)
    sample = repeats_data[0]
    return BenchResult(
        scenario=scenario,
        n=sample["n"],
        seed=sample["seed"],
        repeats=len(repeats_data),
        wall_time_s=best,
        wall_time_s_all=wall_times,
        events_fired=sample["events_fired"],
        events_per_sec=sample["events_fired"] / best if best > 0 else 0.0,
        delivered=sample["delivered"],
        peak_history_records=sample["peak_history_records"],
        piggyback_bytes_total=sample["piggyback_bytes_total"],
        piggyback_bytes_per_message=sample["piggyback_bytes_per_message"],
        tokens_broadcast=sample["tokens_broadcast"],
        rollbacks=sample["rollbacks"],
        restarts=sample["restarts"],
        trace_signature=sample["trace_signature"],
        overhead=sample["overhead"],
    )


def _repeat_tasks(scenario: str, seed: int | None, repeats: int) -> list:
    from repro.exec.tasks import Task

    return [
        Task(
            fn="repro.obs.bench:exec_bench_repeat",
            payload={"scenario": scenario, "seed": seed, "repeat": repeat},
            label=f"{scenario} repeat {repeat}",
            cacheable=False,
        )
        for repeat in range(repeats)
    ]


def _run_tasks(tasks: list, jobs: int) -> list[dict[str, Any]]:
    """Run bench tasks through the engine; raise on any failed repeat."""
    from repro.exec.runner import ParallelRunner

    outcomes = ParallelRunner(jobs=jobs).map(tasks)
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise RuntimeError(
            f"benchmark task {first.label!r} failed:\n{first.error}"
        )
    return [o.value for o in outcomes]


def run_bench(
    scenario: str = "quickstart",
    *,
    seed: int | None = None,
    repeats: int = 3,
    jobs: int = 1,
) -> BenchResult:
    """Run ``scenario`` ``repeats`` times instrumented; keep the best time.

    Every repeat must produce the same trace signature (the runs are
    seeded); a mismatch raises, because a benchmark over nondeterministic
    runs would be meaningless.  ``jobs > 1`` runs the repeats across
    worker processes.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if jobs > 1:
        data = _run_tasks(_repeat_tasks(scenario, seed, repeats), jobs)
    else:
        data = [_measure_once(scenario, seed) for _ in range(repeats)]
    return _combine(scenario, data)


@dataclass
class BenchMatrix:
    """Several scenarios benchmarked together, one BenchResult each."""

    results: list[BenchResult] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro-bench-matrix-v1",
            "scenarios": {
                bench.scenario: bench.to_dict() for bench in self.results
            },
        }

    def summary(self) -> str:
        lines = [f"bench matrix: {len(self.results)} scenario(s)"]
        for bench in self.results:
            lines.append(
                f"  {bench.scenario}: best {bench.wall_time_s:.3f}s over "
                f"{bench.repeats} repeat(s), "
                f"{bench.events_per_sec:,.0f} events/s, "
                f"{bench.rollbacks} rollbacks"
            )
        return "\n".join(lines)


def run_bench_matrix(
    scenarios: list[str] | None = None,
    *,
    seed: int | None = None,
    repeats: int = 3,
    jobs: int = 1,
) -> BenchMatrix:
    """Benchmark several scenarios; scenario x repeat tasks share one pool.

    ``scenarios`` defaults to every registered scenario.  Each entry in the
    merged report is ``BENCH_obs.json``-compatible (same per-scenario
    schema as :func:`run_bench`).
    """
    if scenarios is None:
        scenarios = sorted(SCENARIOS)
    unknown = [name for name in scenarios if name not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {unknown}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    matrix = BenchMatrix()
    if jobs > 1:
        tasks = []
        for name in scenarios:
            tasks.extend(_repeat_tasks(name, seed, repeats))
        data = _run_tasks(tasks, jobs)
        for pos, name in enumerate(scenarios):
            block = data[pos * repeats : (pos + 1) * repeats]
            matrix.results.append(_combine(name, block))
    else:
        for name in scenarios:
            matrix.results.append(
                run_bench(name, seed=seed, repeats=repeats)
            )
    return matrix


def write_bench_json(
    bench: BenchResult, path: str = DEFAULT_BENCH_PATH
) -> str:
    """Serialise ``bench`` to ``path``; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def write_bench_matrix_json(
    matrix: BenchMatrix, path: str = DEFAULT_MATRIX_PATH
) -> str:
    """Serialise a :class:`BenchMatrix` to ``path``; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(matrix.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
