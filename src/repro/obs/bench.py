"""Benchmark wrapper: one instrumented run -> ``BENCH_obs.json``.

The ROADMAP's perf trajectory needs a machine-readable number per PR; this
module produces it.  :func:`run_bench` executes a named scenario (see
:mod:`repro.obs.scenarios`) with a live tracer and wall-clock timing, and
:func:`write_bench_json` serialises the headline quantities -- wall time,
events/second, peak history records, piggyback bytes -- into a flat JSON
file that successive PRs can diff.

Schema (``BENCH_obs.json``)::

    {
      "format": "repro-bench-v1",
      "scenario": "quickstart",
      "n": 4, "seed": 7,
      "repeats": 3,
      "wall_time_s": ...,            # best (min) of the repeats
      "wall_time_s_all": [...],
      "events_fired": ...,
      "events_per_sec": ...,         # events_fired / best wall time
      "delivered": ...,
      "peak_history_records": ...,   # the O(n·f) quantity, live-sampled
      "piggyback_bytes_total": ...,
      "piggyback_bytes_per_message": ...,
      "tokens_broadcast": ...,
      "rollbacks": ..., "restarts": ...,
      "trace_signature": "...",      # determinism cross-check
      "overhead": { ... }            # analysis.metrics.OverheadReport
    }
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from repro.obs.scenarios import build_scenario
from repro.obs.tracer import Tracer

DEFAULT_BENCH_PATH = "BENCH_obs.json"


@dataclass
class BenchResult:
    """Headline numbers from one benchmarked scenario."""

    scenario: str
    n: int
    seed: int
    repeats: int
    wall_time_s: float
    wall_time_s_all: list[float]
    events_fired: int
    events_per_sec: float
    delivered: int
    peak_history_records: int
    piggyback_bytes_total: float
    piggyback_bytes_per_message: float
    tokens_broadcast: float
    rollbacks: int
    restarts: int
    trace_signature: str
    overhead: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"format": "repro-bench-v1"}
        out.update(self.__dict__)
        return out


def run_bench(
    scenario: str = "quickstart",
    *,
    seed: int | None = None,
    repeats: int = 3,
) -> BenchResult:
    """Run ``scenario`` ``repeats`` times instrumented; keep the best time.

    Every repeat must produce the same trace signature (the runs are
    seeded); a mismatch raises, because a benchmark over nondeterministic
    runs would be meaningless.
    """
    from repro.analysis.metrics import measure_overhead
    from repro.harness.runner import run_experiment

    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    wall_times: list[float] = []
    signature: str | None = None
    result = tracer = None
    for _ in range(repeats):
        spec = build_scenario(scenario, seed)
        tracer = Tracer()
        spec.tracer = tracer
        start = perf_counter()
        result = run_experiment(spec)
        wall_times.append(perf_counter() - start)
        sig = result.trace.signature()
        if signature is None:
            signature = sig
        elif sig != signature:
            raise RuntimeError(
                f"scenario {scenario!r} is nondeterministic across repeats"
            )
    assert result is not None and tracer is not None and signature is not None
    best = min(wall_times)
    events = result.sim.events_fired
    overhead = measure_overhead(result)
    app_sent = result.total("app_sent")
    piggyback_bytes = tracer.counter_value("dg.piggyback_bytes")
    return BenchResult(
        scenario=scenario,
        n=result.spec.n,
        seed=result.spec.seed,
        repeats=repeats,
        wall_time_s=best,
        wall_time_s_all=wall_times,
        events_fired=events,
        events_per_sec=events / best if best > 0 else 0.0,
        delivered=result.total_delivered,
        peak_history_records=int(
            tracer.max_gauge_over("dg.history_records.")
        ),
        piggyback_bytes_total=piggyback_bytes,
        piggyback_bytes_per_message=(
            piggyback_bytes / app_sent if app_sent else 0.0
        ),
        tokens_broadcast=tracer.counter_value("dg.tokens_broadcast"),
        rollbacks=result.total_rollbacks,
        restarts=result.total_restarts,
        trace_signature=signature,
        overhead=overhead.to_dict(),
    )


def write_bench_json(
    bench: BenchResult, path: str = DEFAULT_BENCH_PATH
) -> str:
    """Serialise ``bench`` to ``path``; returns the path."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
