"""Structured run-wide observability primitives.

The paper's overhead analysis (Section 6.9) makes quantitative claims --
O(n) piggyback per message, zero control messages when failure-free,
O(n·f) history memory -- that the rest of this repository previously could
only reconstruct post-hoc from full traces.  This module provides the live
counterpart: a :class:`Tracer` every layer of the stack (kernel, network,
process host, protocol) reports into while a run executes.

Design constraints, in order:

1. **Determinism is sacred.**  A tracer never schedules simulator events,
   never draws from the seeded RNG streams, and never feeds a value back
   into protocol logic.  Attaching one must leave a seeded run's ground
   truth trace byte-identical (there is a test pinning this down).
2. **Zero cost when off.**  The kernel hot loop guards on ``tracer is
   None``; everywhere else the :data:`NULL_TRACER` singleton turns calls
   into cheap no-op method dispatches.  Callers computing *expensive*
   arguments should guard on :attr:`Tracer.enabled`.
3. **Bounded memory.**  Gauge time-series are decimated once they exceed a
   cap (stride doubling), so million-event runs cannot blow up the tracer.

Three primitive families:

- **counters** -- monotonically accumulating floats (``tokens broadcast``);
- **gauges**   -- last-value + max + a decimated ``(virtual time, value)``
  series (``queue depth``, ``history records``);
- **histograms / spans** -- value distributions; :meth:`Tracer.span` times
  a wall-clock section into a histogram.

Plus free-form **events**: timestamped dicts exported to the JSON-lines
trace file (partitions, restarts, rollbacks).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Iterator

#: Per-series sample cap before decimation halves the series and doubles
#: the keep-stride.  4096 points is plenty for plotting a trajectory.
SERIES_CAP = 4096

#: Histogram bucket upper bounds (seconds-oriented but unit-agnostic);
#: the last bucket is the +Inf overflow.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Histogram:
    """Fixed-boundary histogram with running count/sum/min/max."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {
                (str(b) if i < len(self.bounds) else "+inf"): c
                for i, (b, c) in enumerate(
                    zip(self.bounds + (float("inf"),), self.bucket_counts)
                )
                if c
            },
        }


class GaugeSeries:
    """Last/max tracking plus a decimated ``(t, value)`` trajectory."""

    __slots__ = ("last", "max", "samples", "_stride", "_skip")

    def __init__(self) -> None:
        self.last: float = 0.0
        self.max: float = float("-inf")
        self.samples: list[tuple[float, float]] = []
        self._stride = 1
        self._skip = 0

    def set(self, t: float, value: float) -> None:
        self.last = value
        if value > self.max:
            self.max = value
        self._skip += 1
        if self._skip < self._stride:
            return
        self._skip = 0
        self.samples.append((t, value))
        if len(self.samples) > SERIES_CAP:
            # Keep every other sample, double the stride: bounded memory,
            # uniformly thinning resolution.
            del self.samples[1::2]
            self._stride *= 2


class _Span:
    """Context manager feeding wall-clock duration into a histogram."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._tracer.observe(self._name, perf_counter() - self._start)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Every tracer method as a no-op; the off switch for instrumentation.

    Layers hold a tracer unconditionally (``self.obs = sim.tracer or
    NULL_TRACER``) so call sites stay branch-free; when an argument is
    expensive to compute, guard on :attr:`enabled` first.
    """

    enabled = False

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def bind_clock(self, now: Callable[[], float]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "events": 0}


#: The shared no-op instance.  Stateless, safe to share globally.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """The live tracer: typed counters, gauges, histograms, spans, events.

    ``now`` supplies the *virtual* timestamp attached to gauge samples and
    events; :func:`repro.harness.runner.run_experiment` binds it to the
    simulator clock.  Wall time appears only inside span/histogram values.
    """

    enabled = True

    def __init__(self, *, now: Callable[[], float] | None = None) -> None:
        self._now: Callable[[], float] = now if now is not None else (
            lambda: 0.0
        )
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, GaugeSeries] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: list[dict[str, Any]] = []
        self.started_wall = perf_counter()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind_clock(self, now: Callable[[], float]) -> None:
        """Attach the virtual-time source (idempotent, rebindable)."""
        self._now = now

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def counter(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        series = self.gauges.get(name)
        if series is None:
            series = self.gauges[name] = GaugeSeries()
        series.set(self._now(), value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def event(self, name: str, **fields: Any) -> None:
        record: dict[str, Any] = {"t": self._now(), "name": name}
        record.update(fields)
        self.events.append(record)

    # ------------------------------------------------------------------
    # Read-out
    # ------------------------------------------------------------------
    def counter_value(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def gauge_last(self, name: str, default: float = 0.0) -> float:
        series = self.gauges.get(name)
        return series.last if series is not None else default

    def gauge_max(self, name: str, default: float = 0.0) -> float:
        series = self.gauges.get(name)
        if series is None or series.max == float("-inf"):
            return default
        return series.max

    def gauges_matching(self, prefix: str) -> Iterator[tuple[str, GaugeSeries]]:
        for name, series in self.gauges.items():
            if name.startswith(prefix):
                yield name, series

    def max_gauge_over(self, prefix: str) -> float:
        """Max of ``gauge_max`` across every gauge sharing ``prefix``."""
        best = float("-inf")
        for _, series in self.gauges_matching(prefix):
            if series.max > best:
                best = series.max
        return best if best != float("-inf") else 0.0

    def snapshot(self) -> dict[str, Any]:
        """Aggregate view of everything recorded, JSON-serialisable."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                name: {
                    "last": series.last,
                    "max": series.max,
                    "samples": len(series.samples),
                }
                for name, series in sorted(self.gauges.items())
            },
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.histograms.items())
            },
            "events": len(self.events),
        }
