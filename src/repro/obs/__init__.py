"""Run-wide observability: live tracer, exporters, benchmark wrapper.

See ``docs/OBSERVABILITY.md`` for the metric-name catalogue and file
formats.  Quick tour::

    from repro.obs import Tracer
    from repro.harness.runner import run_experiment

    spec = ...                      # any ExperimentSpec
    spec.tracer = Tracer()
    result = run_experiment(spec)
    spec.tracer.counter_value("dg.tokens_broadcast")   # live counters

Attaching a tracer never changes a seeded run's event order -- the
determinism tests pin this down.

The scenario/benchmark helpers are lazy attributes: the substrate
(``protocols.base``) imports this package for :data:`NULL_TRACER`, and
eagerly importing the harness-dependent pieces here would close an import
cycle.
"""

from typing import Any

from repro.obs.export import MetricsReport, write_jsonl
from repro.obs.tracer import (
    NULL_TRACER,
    GaugeSeries,
    Histogram,
    NullTracer,
    Tracer,
)

__all__ = [
    "BenchMatrix",
    "BenchResult",
    "GaugeSeries",
    "Histogram",
    "MetricsReport",
    "NULL_TRACER",
    "NullTracer",
    "SCENARIOS",
    "Tracer",
    "build_scenario",
    "run_bench",
    "run_bench_matrix",
    "write_bench_json",
    "write_bench_matrix_json",
    "write_jsonl",
]

_LAZY = {
    "BenchMatrix": "repro.obs.bench",
    "BenchResult": "repro.obs.bench",
    "run_bench": "repro.obs.bench",
    "run_bench_matrix": "repro.obs.bench",
    "write_bench_json": "repro.obs.bench",
    "write_bench_matrix_json": "repro.obs.bench",
    "SCENARIOS": "repro.obs.scenarios",
    "build_scenario": "repro.obs.scenarios",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
