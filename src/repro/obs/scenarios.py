"""Named reference scenarios for the ``trace`` and ``bench`` CLI commands.

Each scenario is a zero-argument-friendly builder returning a fresh
:class:`~repro.harness.runner.ExperimentSpec`; the CLI (and the benchmark
wrapper) attach a tracer and run it.  They are deliberately small, seeded
and deterministic so PR-over-PR numbers from ``BENCH_obs.json`` are
comparable.

- ``quickstart``    -- the README quickstart run: 4 processes, one crash;
- ``failure-free``  -- same workload, no failures (the paper's "zero
  control messages when failure-free" regime);
- ``crash-storm``   -- 6 processes, repeated and concurrent crashes;
- ``partition``     -- a crash inside a network partition;
- ``scale``         -- 16 processes, two crashes, the heaviest of the set;
- ``stress-mix``    -- one schedule drawn from the randomized stress
  generator (crash bursts, partitions, duplicates), pinned to a seed so
  the adversarial regime also gets a stable PR-over-PR number.
"""

from __future__ import annotations

from typing import Callable

from repro.apps import RandomRoutingApp
from repro.core.recovery import DamaniGargProcess
from repro.harness.runner import ExperimentSpec
from repro.protocols.base import ProtocolConfig
from repro.sim.failures import CrashPlan, PartitionPlan


def _config() -> ProtocolConfig:
    return ProtocolConfig(checkpoint_interval=8.0, flush_interval=2.5)


def quickstart(seed: int = 7) -> ExperimentSpec:
    return ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(time=20.0, pid=1, downtime=2.0),
        horizon=100.0,
        seed=seed,
        config=_config(),
    )


def failure_free(seed: int = 7) -> ExperimentSpec:
    return ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=None,
        horizon=100.0,
        seed=seed,
        config=_config(),
    )


def crash_storm(seed: int = 3) -> ExperimentSpec:
    return ExperimentSpec(
        n=6,
        app=RandomRoutingApp(hops=60, seeds=(0, 1, 2), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=(
            CrashPlan()
            .crash(15.0, 1, 2.0)
            .crash(15.5, 4, 3.0)     # concurrent with pid 1's outage
            .crash(40.0, 2, 2.0)
            .crash(60.0, 1, 2.0)     # second failure of the same process
        ),
        horizon=100.0,
        seed=seed,
        config=_config(),
    )


def partition(seed: int = 5) -> ExperimentSpec:
    return ExperimentSpec(
        n=4,
        app=RandomRoutingApp(hops=50, seeds=(0, 1), initial_items=3),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(25.0, 2, 2.0),
        partitions=PartitionPlan().partition(
            20.0, [(0, 1), (2, 3)], heal_time=35.0
        ),
        horizon=100.0,
        seed=seed,
        config=_config(),
    )


def scale(seed: int = 3) -> ExperimentSpec:
    return ExperimentSpec(
        n=16,
        app=RandomRoutingApp(hops=60, seeds=tuple(range(4)), initial_items=2),
        protocol=DamaniGargProcess,
        crashes=CrashPlan().crash(20.0, 5, 2.0).crash(45.0, 11, 2.0),
        horizon=100.0,
        seed=seed,
        config=_config(),
    )


def stress_mix(seed: int = 55) -> ExperimentSpec:
    """One generated adversarial schedule, via the stress harness.

    The default seed picks a case that mixes concurrent crashes with
    duplicate injection -- historically the regime that found real
    protocol bugs -- so its trace/bench numbers track the cost of
    recovery under compounded failures rather than a hand-picked plan.
    """
    from repro.stress.generate import build_spec, generate_case
    from repro.stress.profiles import DEFAULT_PROFILE

    return build_spec(generate_case(seed, DEFAULT_PROFILE))


SCENARIOS: dict[str, Callable[..., ExperimentSpec]] = {
    "quickstart": quickstart,
    "failure-free": failure_free,
    "crash-storm": crash_storm,
    "partition": partition,
    "scale": scale,
    "stress-mix": stress_mix,
}


def build_scenario(name: str, seed: int | None = None) -> ExperimentSpec:
    """Instantiate a named scenario, optionally overriding its seed."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return builder(seed) if seed is not None else builder()
