"""Exporters: JSON-lines trace files and the end-of-run metrics report.

Two machine-readable artifacts come out of an instrumented run:

- :func:`write_jsonl` -- the full structured trace: one ``meta`` line,
  then every tracer event, then counter/gauge/histogram aggregates.  Each
  line is a self-describing JSON object with a ``type`` field, so the file
  is greppable and streamable (``jq 'select(.type=="event")'``).
- :class:`MetricsReport` -- the aggregate summary, merging the tracer's
  live counters with :func:`repro.analysis.metrics.measure_overhead` (the
  post-hoc Section 6.9 accounting) so the two accountings can be compared
  line by line.  Rendered for humans by
  :func:`repro.harness.reporting.render_metrics_report`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.tracer import Tracer

if TYPE_CHECKING:  # avoid a runtime cycle: harness imports obs
    from repro.harness.runner import ExperimentResult


def _jsonable(value: Any) -> Any:
    """Coerce trace payload values to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def write_jsonl(
    tracer: Tracer,
    path: str,
    *,
    meta: dict[str, Any] | None = None,
) -> int:
    """Write the tracer's full contents to ``path`` as JSON lines.

    Returns the number of lines written.  Layout: one ``meta`` header,
    ``event`` lines in recording order, then ``counter`` / ``gauge`` /
    ``histogram`` aggregate lines (gauges include their decimated
    time-series).
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        header = {"type": "meta", "format": "repro-obs-v1"}
        if meta:
            header.update(_jsonable(meta))
        fh.write(json.dumps(header) + "\n")
        lines += 1
        for event in tracer.events:
            record = {"type": "event"}
            record.update(_jsonable(event))
            fh.write(json.dumps(record) + "\n")
            lines += 1
        for name, value in sorted(tracer.counters.items()):
            fh.write(
                json.dumps({"type": "counter", "name": name, "value": value})
                + "\n"
            )
            lines += 1
        for name, series in sorted(tracer.gauges.items()):
            fh.write(
                json.dumps(
                    {
                        "type": "gauge",
                        "name": name,
                        "last": series.last,
                        "max": series.max,
                        "series": [[t, v] for t, v in series.samples],
                    }
                )
                + "\n"
            )
            lines += 1
        for name, hist in sorted(tracer.histograms.items()):
            record = {"type": "histogram", "name": name}
            record.update(_jsonable(hist.summary()))
            fh.write(json.dumps(record) + "\n")
            lines += 1
    return lines


@dataclass
class MetricsReport:
    """End-of-run summary: live tracer aggregates + post-hoc overhead.

    The ``overhead`` block reuses :class:`repro.analysis.metrics
    .OverheadReport` as a consumer of the same run, which doubles as a
    cross-check: the live counters and the trace-derived accounting must
    agree (a test pins the equality).
    """

    counters: dict[str, float]
    gauges: dict[str, dict[str, float]]
    histograms: dict[str, dict[str, Any]]
    event_count: int
    overhead: Any = None                  # OverheadReport | None
    wall_time_s: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        result: "ExperimentResult",
        tracer: Tracer,
        *,
        wall_time_s: float | None = None,
    ) -> "MetricsReport":
        from repro.analysis.metrics import measure_overhead

        snap = tracer.snapshot()
        return cls(
            counters=snap["counters"],
            gauges=snap["gauges"],
            histograms=snap["histograms"],
            event_count=snap["events"],
            overhead=measure_overhead(result),
            wall_time_s=wall_time_s,
            extra={
                "n": result.spec.n,
                "seed": result.spec.seed,
                "virtual_horizon": result.spec.horizon,
                "virtual_end": result.sim.now,
                "events_fired": result.sim.events_fired,
                "trace_signature": result.trace.signature(),
            },
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "event_count": self.event_count,
            "wall_time_s": self.wall_time_s,
        }
        out.update(self.extra)
        if self.overhead is not None:
            out["overhead"] = self.overhead.to_dict()
        return out
