"""Public testing utilities for building deterministic scenarios.

Downstream users writing their own applications or protocol variants need
the same tools this repository's test-suite uses: a way to stand up the
full stack with scripted messages and exact timings, run it to quiescence,
and assert recovery correctness.  This module packages them.

Example -- force a specific interleaving and check the protocol's
reaction::

    from repro.testing import ScenarioBuilder
    from repro.harness.scenarios import ScriptedApp

    result = (
        ScenarioBuilder(n=2)
        .app(ScriptedApp(bootstrap_sends={0: [(1, "m")]}))
        .latency(0, 1, 1.0)              # m arrives at t=1
        .crash(at=5.0, pid=1, downtime=1.0)
        .flush(pid=1, at=2.0)            # m survives the crash
        .run()
    )
    result.assert_recovered()
    assert result.protocols[1].executor.state == ("m",)
"""

from __future__ import annotations

from typing import Any

from repro.analysis.consistency import RecoveryVerdict, check_recovery
from repro.core.recovery import DamaniGargProcess
from repro.protocols.base import BaseRecoveryProcess, ProtocolConfig
from repro.sim.failures import CrashPlan, FailureInjector
from repro.sim.kernel import Simulator
from repro.sim.network import DeliveryOrder, Network, ScriptedLatency
from repro.sim.process import Application, ProcessHost
from repro.sim.rng import RandomStreams
from repro.sim.trace import SimTrace


class ScenarioRun:
    """A finished scripted run with assertion helpers."""

    def __init__(self, sim, network, trace, hosts, protocols) -> None:
        self.sim: Simulator = sim
        self.network: Network = network
        self.trace: SimTrace = trace
        self.hosts: list[ProcessHost] = hosts
        self.protocols: list[BaseRecoveryProcess] = protocols

    def verdict(self, **kwargs: Any) -> RecoveryVerdict:
        return check_recovery(self, **kwargs)

    def assert_recovered(self, **kwargs: Any) -> RecoveryVerdict:
        """Raise AssertionError with the violations if the oracle fails."""
        verdict = self.verdict(**kwargs)
        assert verdict.ok, verdict.violations
        return verdict

    def protocol(self, pid: int) -> BaseRecoveryProcess:
        return self.protocols[pid]


class ScenarioBuilder:
    """Fluent construction of a deterministic scripted experiment."""

    def __init__(self, n: int, *, seed: int = 0) -> None:
        if n < 1:
            raise ValueError("need at least one process")
        self.n = n
        self.seed = seed
        self._app: Application | None = None
        self._protocol_cls: type[BaseRecoveryProcess] = DamaniGargProcess
        self._latency = ScriptedLatency(default=2.0)
        self._crashes = CrashPlan()
        self._flushes: list[tuple[int, float]] = []
        self._checkpoints: list[tuple[int, float]] = []
        self._config = ProtocolConfig(
            checkpoint_interval=1e9, flush_interval=1e9
        )
        self._horizon = 200.0

    # ------------------------------------------------------------------
    # Configuration (all fluent)
    # ------------------------------------------------------------------
    def app(self, application: Application) -> "ScenarioBuilder":
        self._app = application
        return self

    def protocol(
        self, protocol_cls: type[BaseRecoveryProcess]
    ) -> "ScenarioBuilder":
        self._protocol_cls = protocol_cls
        return self

    def config(self, config: ProtocolConfig) -> "ScenarioBuilder":
        self._config = config
        return self

    def latency(
        self, src: int, dst: int, *delays: float, kind: str = "app"
    ) -> "ScenarioBuilder":
        """Plan exact delays for the next sends on channel (src, dst)."""
        self._latency.plan(src, dst, *delays, kind=kind)
        return self

    def default_latency(self, delay: float) -> "ScenarioBuilder":
        self._latency.default = delay
        return self

    def crash(
        self, *, at: float, pid: int, downtime: float = 1.0
    ) -> "ScenarioBuilder":
        self._crashes.crash(at, pid, downtime)
        return self

    def flush(self, *, pid: int, at: float) -> "ScenarioBuilder":
        """Force pid's volatile log to stable storage at a chosen time."""
        self._flushes.append((pid, at))
        return self

    def checkpoint(self, *, pid: int, at: float) -> "ScenarioBuilder":
        """Force pid to take a checkpoint at a chosen time."""
        self._checkpoints.append((pid, at))
        return self

    def horizon(self, time: float) -> "ScenarioBuilder":
        self._horizon = time
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> ScenarioRun:
        if self._app is None:
            raise ValueError("ScenarioBuilder needs .app(...)")
        sim = Simulator()
        trace = SimTrace()
        network = Network(
            sim,
            self.n,
            streams=RandomStreams(self.seed),
            latency=self._latency,
            order=DeliveryOrder.RANDOM,
            trace=trace,
        )
        hosts = [
            ProcessHost(pid, sim, network, trace) for pid in range(self.n)
        ]
        protocols = [
            self._protocol_cls(host.runtime_env(), self._app, self._config)
            for host in hosts
        ]
        if self._crashes.events:
            FailureInjector(sim, hosts, network).install(self._crashes)
        for pid, time in self._flushes:
            sim.schedule_at(time, protocols[pid].flush_log)
        for pid, time in self._checkpoints:
            sim.schedule_at(time, protocols[pid].take_checkpoint)
        for host in hosts:
            host.start()
        sim.run(until=self._horizon)
        for protocol in protocols:
            protocol.halt_periodic_tasks()
        sim.drain()
        return ScenarioRun(sim, network, trace, hosts, protocols)
