"""Piecewise-deterministic applications used as workloads.

Every application here obeys the paper's Section 3 model: ``handle`` is a
pure function of ``(state, payload)`` -- no clocks, no randomness, no I/O --
so replay from a checkpoint reconstructs states exactly.  "Randomness" in
the routing workloads is a deterministic integer mix of the state and the
received value, which gives irregular communication patterns while staying
replayable.

- :class:`~repro.apps.applications.RandomRoutingApp` -- hop-bounded chaotic
  routing; the workhorse for protocol comparisons.
- :class:`~repro.apps.applications.PingPongApp` -- paired counters, the
  simplest possible two-process workload.
- :class:`~repro.apps.applications.BankApp` -- money transfers with a
  conservation invariant (sum of balances + in-flight = constant), used by
  the consistency examples.
- :class:`~repro.apps.applications.PipelineApp` -- a staged pipeline with
  environment outputs at the sink (output-commit demo).

The kvstore names resolve lazily: :mod:`repro.apps.kvstore` imports its
wire types from :mod:`repro.service.kv` (their canonical home since the
service API redesign), and that module in turn depends on
:mod:`repro.apps.applications` -- resolving kvstore at first attribute
access instead of package-import time keeps the cycle open.
"""

import warnings

from repro.apps.applications import (
    BankApp,
    BankState,
    PingPongApp,
    PipelineApp,
    RandomRoutingApp,
    RoutingState,
    Transfer,
    WorkItem,
    mix64,
)

__all__ = [
    "BankApp",
    "BankState",
    "ClientState",
    "KVGet",
    "KVPut",
    "KVReplicate",
    "KVReply",
    "KVStoreApp",
    "PingPongApp",
    "PipelineApp",
    "RandomRoutingApp",
    "ReplicaState",
    "RoutingState",
    "Transfer",
    "WorkItem",
    "mix64",
]

#: Deprecated re-exports: the wire types now live in repro.service.kv.
_MOVED_WIRE_TYPES = frozenset({"KVPut", "KVGet", "KVReplicate", "KVReply"})
#: Still canonical here, just resolved lazily (cycle: kvstore -> service.kv
#: -> apps.applications -> this package).
_KVSTORE_NAMES = frozenset({"ClientState", "KVStoreApp", "ReplicaState"})


def __getattr__(name: str):
    if name in _MOVED_WIRE_TYPES:
        warnings.warn(
            f"repro.apps.{name} moved to repro.service.kv; update the "
            "import (the shim will be removed in the next major version)",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.service.kv as kv

        return getattr(kv, name)
    if name in _KVSTORE_NAMES:
        import repro.apps.kvstore as kvstore

        return getattr(kvstore, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
