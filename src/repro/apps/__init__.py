"""Piecewise-deterministic applications used as workloads.

Every application here obeys the paper's Section 3 model: ``handle`` is a
pure function of ``(state, payload)`` -- no clocks, no randomness, no I/O --
so replay from a checkpoint reconstructs states exactly.  "Randomness" in
the routing workloads is a deterministic integer mix of the state and the
received value, which gives irregular communication patterns while staying
replayable.

- :class:`~repro.apps.applications.RandomRoutingApp` -- hop-bounded chaotic
  routing; the workhorse for protocol comparisons.
- :class:`~repro.apps.applications.PingPongApp` -- paired counters, the
  simplest possible two-process workload.
- :class:`~repro.apps.applications.BankApp` -- money transfers with a
  conservation invariant (sum of balances + in-flight = constant), used by
  the consistency examples.
- :class:`~repro.apps.applications.PipelineApp` -- a staged pipeline with
  environment outputs at the sink (output-commit demo).
"""

from repro.apps.applications import (
    BankApp,
    BankState,
    PingPongApp,
    PipelineApp,
    RandomRoutingApp,
    RoutingState,
    Transfer,
    WorkItem,
    mix64,
)
from repro.apps.kvstore import (
    ClientState,
    KVGet,
    KVPut,
    KVReplicate,
    KVReply,
    KVStoreApp,
    ReplicaState,
)

__all__ = [
    "BankApp",
    "BankState",
    "ClientState",
    "KVGet",
    "KVPut",
    "KVReplicate",
    "KVReply",
    "KVStoreApp",
    "PingPongApp",
    "PipelineApp",
    "RandomRoutingApp",
    "ReplicaState",
    "RoutingState",
    "Transfer",
    "WorkItem",
    "mix64",
]
