"""Deterministic application state machines (see package docstring)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.runtime.app import ProcessContext

_MASK64 = (1 << 64) - 1


def mix64(a: int, b: int) -> int:
    """A deterministic 64-bit mixer (splitmix-style).

    Used wherever a workload wants irregular-but-replayable behaviour.
    """
    x = (a * 6364136223846793005 + b + 1442695040888963407) & _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 29
    return x


# ---------------------------------------------------------------------------
# Random routing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class WorkItem:
    """A hop-bounded unit of work wandering through the system."""

    hops_left: int
    value: int
    origin: int
    serial: int

    def __repr__(self) -> str:
        return f"Work(o{self.origin}#{self.serial} hops={self.hops_left})"


@dataclass(frozen=True)
class RoutingState:
    """Per-process state of :class:`RandomRoutingApp` (immutable)."""

    received: int = 0
    acc: int = 0            # rolling hash of everything consumed


class RandomRoutingApp:
    """Hop-bounded chaotic routing.

    ``seeds`` processes bootstrap ``initial_items`` work items each; every
    receive folds the item into the local accumulator and forwards it (with
    one hop fewer) to a destination derived deterministically from the new
    accumulator.  ``fanout`` > 1 occasionally splits an item to keep message
    pressure up on larger systems.
    """

    def __init__(
        self,
        *,
        hops: int = 32,
        seeds: tuple[int, ...] = (0,),
        initial_items: int = 2,
        fanout: int = 1,
    ) -> None:
        if hops < 0 or initial_items < 0 or fanout < 1:
            raise ValueError("bad RandomRoutingApp parameters")
        self.hops = hops
        self.seeds = seeds
        self.initial_items = initial_items
        self.fanout = fanout

    def initial_state(self, pid: int, n: int) -> RoutingState:
        return RoutingState()

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        if pid not in self.seeds or n < 2:
            return
        for serial in range(self.initial_items):
            value = mix64(pid + 1, serial + 1)
            dst = self._route(value, pid, n)
            ctx.send(
                dst,
                WorkItem(
                    hops_left=self.hops, value=value, origin=pid, serial=serial
                ),
            )

    def handle(
        self, state: RoutingState, payload: WorkItem, ctx: ProcessContext
    ) -> RoutingState:
        acc = mix64(state.acc, payload.value)
        new_state = RoutingState(received=state.received + 1, acc=acc)
        if payload.hops_left > 0 and ctx.n >= 2:
            copies = self.fanout if acc % 16 == 0 else 1
            for copy in range(copies):
                value = mix64(acc, copy)
                dst = self._route(value, ctx.pid, ctx.n)
                ctx.send(
                    dst,
                    WorkItem(
                        hops_left=payload.hops_left - 1,
                        value=value,
                        origin=payload.origin,
                        serial=payload.serial,
                    ),
                )
        return new_state

    @staticmethod
    def _route(value: int, pid: int, n: int) -> int:
        """A destination other than ourselves, derived from ``value``."""
        dst = value % (n - 1)
        if dst >= pid:
            dst += 1
        return dst


# ---------------------------------------------------------------------------
# Ping-pong
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Ping:
    round: int


class PingPongApp:
    """Adjacent pairs (0,1), (2,3), ... bounce a counter ``rounds`` times."""

    def __init__(self, rounds: int = 50) -> None:
        self.rounds = rounds

    def initial_state(self, pid: int, n: int) -> int:
        return 0

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        if pid % 2 == 0 and pid + 1 < n:
            ctx.send(pid + 1, Ping(round=1))

    def handle(self, state: int, payload: Ping, ctx: ProcessContext) -> int:
        partner = ctx.pid + 1 if ctx.pid % 2 == 0 else ctx.pid - 1
        if payload.round < self.rounds and 0 <= partner < ctx.n:
            ctx.send(partner, Ping(round=payload.round + 1))
        return payload.round


# ---------------------------------------------------------------------------
# Bank
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Transfer:
    amount: int
    serial: tuple[int, int]      # (sender pid, sender transfer count)


@dataclass(frozen=True)
class BankState:
    balance: int
    sent_transfers: int = 0
    received_transfers: int = 0


class BankApp:
    """Deterministic money shuffling with a conservation invariant.

    Each process starts with ``initial_balance``; on receiving a transfer it
    credits the amount, then (while it still has funds and the hop budget
    derived from the serial allows) debits a deterministic fraction and
    sends it onward.  At any consistent global state,
    ``sum(balances) + sum(in-flight transfers) == n * initial_balance`` --
    the invariant the recovery examples check after crashes.
    """

    def __init__(
        self,
        *,
        initial_balance: int = 1000,
        seeds: tuple[int, ...] = (0,),
        max_chain: int = 64,
    ) -> None:
        self.initial_balance = initial_balance
        self.seeds = seeds
        self.max_chain = max_chain

    def initial_state(self, pid: int, n: int) -> BankState:
        # Seed branches start pre-debited by the transfer their bootstrap
        # sends (bootstrap cannot modify state), keeping the global
        # conservation invariant exact: balances + in-flight == n * initial.
        balance = self.initial_balance
        if pid in self.seeds and n >= 2:
            balance -= self.initial_balance // 4
        return BankState(balance=balance)

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        if pid not in self.seeds or n < 2:
            return
        amount = self.initial_balance // 4
        dst = (pid + 1) % n
        ctx.send(dst, Transfer(amount=amount, serial=(pid, 0)))

    def handle(
        self, state: BankState, payload: Transfer, ctx: ProcessContext
    ) -> BankState:
        balance = state.balance + payload.amount
        received = state.received_transfers + 1
        sent = state.sent_transfers
        chain_position = payload.serial[1]
        if chain_position < self.max_chain and balance > 0 and ctx.n >= 2:
            h = mix64(balance, chain_position + 1)
            amount = 1 + h % max(1, balance // 2)
            dst = h % (ctx.n - 1)
            if dst >= ctx.pid:
                dst += 1
            balance -= amount
            ctx.send(
                dst, Transfer(amount=amount, serial=(ctx.pid, chain_position + 1))
            )
            sent += 1
        return BankState(
            balance=balance, sent_transfers=sent, received_transfers=received
        )


# ---------------------------------------------------------------------------
# Pipeline
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Job:
    job_id: int
    stage: int
    value: int


class PipelineApp:
    """Stage ``i`` transforms jobs and forwards them to stage ``i+1``.

    Stage 0 bootstraps ``jobs`` items; the final stage emits the finished
    value to the environment via ``ctx.output`` -- the surface on which the
    output-commit extension is demonstrated.
    """

    def __init__(self, jobs: int = 10) -> None:
        self.jobs = jobs

    def initial_state(self, pid: int, n: int) -> int:
        return 0   # jobs processed at this stage

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        if pid != 0 or n < 2:
            return
        for job_id in range(self.jobs):
            ctx.send(1, Job(job_id=job_id, stage=1, value=mix64(job_id, 0)))

    def handle(self, state: int, payload: Job, ctx: ProcessContext) -> int:
        value = mix64(payload.value, ctx.pid + 1)
        if payload.stage == ctx.n - 1:
            ctx.output(("done", payload.job_id, value))
        else:
            ctx.send(
                payload.stage + 1,
                Job(job_id=payload.job_id, stage=payload.stage + 1, value=value),
            )
        return state + 1
