"""A replicated key-value store as a piecewise-deterministic workload.

Topology: processes ``0 .. replicas-1`` are storage replicas; the rest are
clients.  Each key has a *primary* replica (by key hash); clients send
puts/gets to the primary, which applies the operation, pushes a
``KVReplicate`` to the other replicas, and answers the client.  Clients
keep exactly one operation outstanding and derive the next operation
deterministically from their state, so the whole workload is replayable.

The store gives the recovery experiments end-to-end *application-level*
invariants to check after crashes and rollbacks:

- **version monotonicity** -- along any surviving chain, a replica's
  version for a key never decreases;
- **session monotonicity** -- a client never observes a key's version
  going backwards (its reads/writes are ordered by its primary);
- **replica convergence** -- at quiescence with the Remark-1
  retransmission extension enabled, all replicas hold identical data
  (without it, a replicate update received-but-unlogged at a crash can be
  lost forever, and replicas may diverge -- a behaviour the kvstore
  example demonstrates deliberately).

.. deprecated:: 1.0
    The wire types (``KVPut``, ``KVGet``, ``KVReplicate``, ``KVReply``)
    and ``hash_key`` were promoted to :mod:`repro.service.kv`, where the
    client-facing service serves them.  Importing them from here still
    works through shims that emit ``DeprecationWarning``; see
    ``docs/API.md`` for the migration table.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any

from repro.apps.applications import mix64
from repro.runtime.app import ProcessContext
from repro.service.kv import KVGet as _KVGet
from repro.service.kv import KVPut as _KVPut
from repro.service.kv import KVReplicate as _KVReplicate
from repro.service.kv import KVReply as _KVReply
from repro.service.kv import hash_key

#: Wire-type shims: the canonical definitions live in repro.service.kv;
#: attribute access through this module warns (module __getattr__ below).
_MOVED_TO_SERVICE = {
    "KVPut": _KVPut,
    "KVGet": _KVGet,
    "KVReplicate": _KVReplicate,
    "KVReply": _KVReply,
}


def __getattr__(name: str):
    cls = _MOVED_TO_SERVICE.get(name)
    if cls is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"repro.apps.kvstore.{name} moved to repro.service.kv; "
        "update the import (the shim will be removed in the next major "
        "version)",
        DeprecationWarning,
        stacklevel=2,
    )
    return cls


# ---------------------------------------------------------------------------
# Process states (immutable; handlers return new instances)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaState:
    """``data`` maps key -> (value, version); stored as a sorted tuple so
    states are hashable and comparable in tests."""

    data: tuple[tuple[str, tuple[int, int]], ...] = ()
    applied: int = 0

    def lookup(self, key: str) -> tuple[int, int] | None:
        # Binary search: ``(key,)`` sorts immediately before
        # ``(key, entry)``, so bisect_left lands on the entry if present.
        i = bisect_left(self.data, (key,))
        if i < len(self.data) and self.data[i][0] == key:
            return self.data[i][1]
        return None

    def store(self, key: str, value: int, version: int) -> "ReplicaState":
        items = dict(self.data)
        items[key] = (value, version)
        return ReplicaState(
            data=tuple(sorted(items.items())), applied=self.applied + 1
        )

    def as_dict(self) -> dict[str, tuple[int, int]]:
        return dict(self.data)


@dataclass(frozen=True)
class ClientState:
    ops_sent: int = 0
    replies: int = 0
    acc: int = 0
    #: last observed (value, version) per key, sorted tuple
    observed: tuple[tuple[str, int], ...] = ()

    def observe(self, key: str, version: int) -> "ClientState":
        seen = dict(self.observed)
        seen[key] = version
        return ClientState(
            ops_sent=self.ops_sent,
            replies=self.replies + 1,
            acc=self.acc,
            observed=tuple(sorted(seen.items())),
        )

    def observed_version(self, key: str) -> int:
        return dict(self.observed).get(key, 0)


class KVStoreApp:
    """The application (both roles; behaviour switches on pid)."""

    def __init__(
        self,
        *,
        replicas: int = 2,
        keys: int = 6,
        ops_per_client: int = 40,
        put_ratio: int = 2,          # of every 3 ops, this many are puts
    ) -> None:
        if replicas < 1:
            raise ValueError("need at least one replica")
        if not 0 <= put_ratio <= 3:
            raise ValueError("put_ratio is out of every 3 ops")
        self.replicas = replicas
        self.keys = keys
        self.ops_per_client = ops_per_client
        self.put_ratio = put_ratio

    # ------------------------------------------------------------------
    # Topology helpers
    # ------------------------------------------------------------------
    def is_replica(self, pid: int) -> bool:
        return pid < self.replicas

    def primary_for(self, key: str) -> int:
        return mix64(hash_key(key), 0) % self.replicas

    # ------------------------------------------------------------------
    # Application protocol
    # ------------------------------------------------------------------
    def initial_state(self, pid: int, n: int) -> Any:
        if self.is_replica(pid):
            return ReplicaState()
        # The bootstrap op (seq 0) is pre-accounted here because bootstrap
        # cannot modify state.
        sends_at_bootstrap = 1 if self.replicas < n else 0
        return ClientState(ops_sent=sends_at_bootstrap)

    def bootstrap(self, pid: int, n: int, ctx: ProcessContext) -> None:
        if self.is_replica(pid) or self.replicas >= n:
            return
        self._issue_op(ClientState(ops_sent=0), pid, ctx)

    def handle(self, state: Any, payload: Any, ctx: ProcessContext) -> Any:
        if self.is_replica(ctx.pid):
            return self._replica_handle(state, payload, ctx)
        return self._client_handle(state, payload, ctx)

    # -- replica side ---------------------------------------------------
    def _replica_handle(
        self, state: ReplicaState, payload: Any, ctx: ProcessContext
    ) -> ReplicaState:
        if isinstance(payload, _KVPut):
            current = state.lookup(payload.key)
            version = (current[1] if current else 0) + 1
            new_state = state.store(payload.key, payload.value, version)
            for replica in range(self.replicas):
                if replica != ctx.pid:
                    ctx.send(
                        replica,
                        _KVReplicate(
                            key=payload.key,
                            value=payload.value,
                            version=version,
                            op_id=payload.op_id,
                        ),
                    )
            ctx.send(
                payload.op_id[0],
                _KVReply(
                    op_id=payload.op_id,
                    key=payload.key,
                    value=payload.value,
                    version=version,
                ),
            )
            return new_state
        if isinstance(payload, _KVReplicate):
            current = state.lookup(payload.key)
            if current is None or payload.version > current[1]:
                return state.store(payload.key, payload.value, payload.version)
            return ReplicaState(data=state.data, applied=state.applied + 1)
        if isinstance(payload, _KVGet):
            current = state.lookup(payload.key)
            value, version = current if current else (None, 0)
            ctx.send(
                payload.op_id[0],
                _KVReply(
                    op_id=payload.op_id,
                    key=payload.key,
                    value=value,
                    version=version,
                ),
            )
            return ReplicaState(data=state.data, applied=state.applied + 1)
        raise TypeError(f"replica got {payload!r}")

    # -- client side ----------------------------------------------------
    def _client_handle(
        self, state: ClientState, payload: Any, ctx: ProcessContext
    ) -> ClientState:
        if not isinstance(payload, _KVReply):
            raise TypeError(f"client got {payload!r}")
        new_state = state.observe(payload.key, payload.version)
        acc = mix64(new_state.acc, payload.version)
        new_state = ClientState(
            ops_sent=new_state.ops_sent,
            replies=new_state.replies,
            acc=acc,
            observed=new_state.observed,
        )
        if new_state.ops_sent < self.ops_per_client:
            new_state = self._issue_op(new_state, ctx.pid, ctx)
        return new_state

    def _issue_op(
        self, state: ClientState, pid: int, ctx: ProcessContext
    ) -> ClientState:
        seq = state.ops_sent
        h = mix64(pid * 7919 + 13, seq)
        key = f"k{h % self.keys}"
        primary = self.primary_for(key)
        if h % 3 < self.put_ratio:
            ctx.send(primary, _KVPut(key=key, value=h & 0xFFFF,
                                     op_id=(pid, seq)))
        else:
            ctx.send(primary, _KVGet(key=key, op_id=(pid, seq)))
        return ClientState(
            ops_sent=seq + 1,
            replies=state.replies,
            acc=state.acc,
            observed=state.observed,
        )
