"""Sender-based message logging (Johnson & Zwaenepoel [11]).

Messages are logged at the *sender*; the receiver assigns each delivery a
receive sequence number (RSN) and returns it to the sender, which records
it next to the logged data and acknowledges.  A process may not *send* new
application messages while any delivered message's RSN is still
unacknowledged -- the protocol's "partially blocking" window (computation
continues; only output is held).  ``stats.blocked_time`` measures it.

Recovery is **not** asynchronous (Table 1 column 2 = "No"): the restarted
process broadcasts a RETRIEVE request and must collect the logged
``(data, RSN)`` pairs from every peer before it can resume.  It replays the
maximal RSN-consecutive fully-logged prefix (deterministically recreating
the original states) and takes any remaining retrieved messages as fresh
deliveries.  Because a process never sends while a received message is not
fully logged, no other process can depend on an unrecoverable state:
**orphans are impossible**, and nobody ever rolls back.

Per the paper's Table 1 we log sends to stable storage, which is what lets
the row claim tolerance of ``n`` concurrent failures; the original 1987
system kept sender logs in volatile memory and tolerated one failure at a
time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class JZMessage:
    payload: Any
    send_seq: tuple[int, int]        # (sender pid, per-sender sequence)


@dataclass(frozen=True)
class JZAck:
    """Receiver -> sender: 'your message <send_seq> got RSN <rsn>'."""

    send_seq: tuple[int, int]
    rsn: int


@dataclass(frozen=True)
class JZAckAck:
    """Sender -> receiver: 'RSN <rsn> is now logged; you may send again'."""

    rsn: int


@dataclass(frozen=True)
class JZRetrieve:
    """Restarted process -> everyone: resend what you logged for me."""

    requester: int
    rsn_floor: int                   # RSNs below this are in my checkpoint


@dataclass(frozen=True)
class JZRetrieveResponse:
    responder: int
    #: fully logged: (payload, send_seq, rsn, msg_id), sorted by rsn
    acked: tuple[tuple[Any, tuple[int, int], int, int], ...]
    #: logged data whose RSN never reached us: (payload, send_seq, msg_id)
    unacked: tuple[tuple[Any, tuple[int, int], int], ...]


@dataclass
class _SendLogRecord:
    dst: int
    payload: Any
    send_seq: tuple[int, int]
    msg_id: int                      # transport id of the original send
    rsn: int | None = None


class SenderBasedProcess(BaseRecoveryProcess):
    """Johnson-Zwaenepoel sender-based logging for one process."""

    name = "Sender-based (Johnson-Zwaenepoel)"
    requires_fifo = False
    asynchronous_recovery = False
    tolerates_concurrent_failures = True

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        # Stable: survives crashes (deliberately not cleared in on_crash).
        self._send_log: list[_SendLogRecord] = []
        # Volatile:
        self._send_seq = 0
        self._rsn = 0
        self._delivered: set[tuple[int, int]] = set()
        self._unconfirmed: set[int] = set()      # RSNs awaiting ack-ack
        self._outbox: list[tuple[int, JZMessage]] = []
        self._blocked_since: float | None = None
        # Recovery session state:
        self._recovering = False
        self._responses: dict[int, JZRetrieveResponse] = {}
        self._buffered: list[NetworkMessage] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._transmit_new(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)
        self.take_checkpoint()
        # Only checkpoints are periodic; the receiver log is deliberately
        # volatile between checkpoints (that is the protocol's premise).
        self._periodic_enabled = True
        self._schedule_checkpoint()

    def on_network_message(self, msg: NetworkMessage) -> None:
        payload = msg.payload
        if isinstance(payload, JZRetrieve):
            self._on_retrieve(payload)      # answered even while recovering
            return
        if self._recovering:
            if isinstance(payload, JZRetrieveResponse):
                self._on_retrieve_response(payload)
            else:
                self._buffered.append(msg)
            return
        if isinstance(payload, JZMessage):
            self._on_app_message(msg)
        elif isinstance(payload, JZAck):
            self._on_ack(payload)
        elif isinstance(payload, JZAckAck):
            self._on_ackack(payload)
        elif isinstance(payload, JZRetrieveResponse):
            pass   # stale response from an aborted session
        else:
            raise ValueError(f"unexpected payload {payload!r}")

    def on_crash(self) -> None:
        self.storage.on_crash()
        self._delivered.clear()
        self._unconfirmed.clear()
        self._outbox.clear()
        self._blocked_since = None
        self._recovering = False
        self._responses.clear()
        self._buffered.clear()

    def on_restart(self) -> None:
        self.stats.restarts += 1
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTORE,
                self.pid,
                ckpt_uid=ckpt.snapshot["uid"],
                reason="restart",
            )
        self.executor.restore(ckpt.snapshot)
        self._send_seq = ckpt.extras["send_seq"]
        self._rsn = ckpt.extras["rsn"]
        self._delivered = set(ckpt.extras["delivered"])
        self._outbox = list(ckpt.extras["outbox"])
        self._unconfirmed = set()
        # Checkpointing flushes the receiver log, so there is never a
        # replayable local suffix: everything past the checkpoint must be
        # retrieved from the senders.
        assert self.storage.log.stable_length == ckpt.log_position
        if self.n == 1:
            self._finish_recovery()
            return
        self._recovering = True
        self._responses = {}
        request = JZRetrieve(requester=self.pid, rsn_floor=self._rsn)
        self.env.broadcast(request, kind="control")
        self.stats.control_sent += self.n - 1

    # ------------------------------------------------------------------
    # Normal operation
    # ------------------------------------------------------------------
    def _on_app_message(self, msg: NetworkMessage) -> None:
        envelope: JZMessage = msg.payload
        if envelope.send_seq in self._delivered:
            self.stats.duplicates_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.DISCARD,
                    self.pid,
                    msg_id=msg.msg_id,
                    reason="duplicate",
                )
            return
        rsn = self._rsn
        self._rsn += 1
        self._delivered.add(envelope.send_seq)
        self.storage.log.append(
            msg.msg_id, msg.src, envelope.payload,
            meta=(envelope.send_seq, rsn),
        )
        self._unconfirmed.add(rsn)
        self.env.send(msg.src, JZAck(envelope.send_seq, rsn), kind="control")
        self.stats.control_sent += 1
        self.stats.app_delivered += 1
        ctx = self.executor.execute(envelope.payload, msg_id=msg.msg_id)
        for send in ctx.sends:
            self._queue_send(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)

    def _on_ack(self, ack: JZAck) -> None:
        # Record the RSN next to the logged data, then acknowledge back to
        # the receiver so it may unblock its sends.
        for record in self._send_log:
            if record.send_seq == ack.send_seq:
                record.rsn = ack.rsn
                self.env.send(record.dst, JZAckAck(ack.rsn), kind="control")
                self.stats.control_sent += 1
                return

    def _on_ackack(self, ackack: JZAckAck) -> None:
        self._unconfirmed.discard(ackack.rsn)
        if not self._unconfirmed:
            self._drain_outbox()

    def _queue_send(self, dst: int, payload: Any) -> None:
        """The partial-blocking rule: hold sends while any RSN is
        unconfirmed."""
        envelope = JZMessage(payload=payload, send_seq=(self.pid, self._send_seq))
        self._send_seq += 1
        if self._unconfirmed:
            if self._blocked_since is None:
                self._blocked_since = self.env.now
            self._outbox.append((dst, envelope))
        else:
            self._transmit(dst, envelope)

    def _drain_outbox(self) -> None:
        if self._blocked_since is not None:
            self.stats.blocked_time += self.env.now - self._blocked_since
            self._blocked_since = None
        outbox, self._outbox = self._outbox, []
        for dst, envelope in outbox:
            self._transmit(dst, envelope)

    def _transmit_new(self, dst: int, payload: Any) -> None:
        envelope = JZMessage(payload=payload, send_seq=(self.pid, self._send_seq))
        self._send_seq += 1
        self._transmit(dst, envelope)

    def _transmit(self, dst: int, envelope: JZMessage) -> None:
        sent = self.env.send(dst, envelope, kind="app")
        # The stable send log is written at transmission time, never for
        # queued-but-unsent messages (a crashed outbox must not leak
        # messages from states nobody can recover).
        self._send_log.append(
            _SendLogRecord(dst=dst, payload=envelope.payload,
                           send_seq=envelope.send_seq, msg_id=sent.msg_id)
        )
        self.storage.sync_writes += 1
        self.stats.sync_log_writes += 1
        self.stats.app_sent += 1
        self.stats.piggyback_entries += 1        # O(1): just the send seq
        self.stats.piggyback_bits += 64
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.SEND,
                self.pid,
                msg_id=sent.msg_id,
                dst=dst,
                uid=self.executor.current_uid,
                dedup=envelope.send_seq,
            )

    # ------------------------------------------------------------------
    # Recovery session
    # ------------------------------------------------------------------
    def _on_retrieve(self, request: JZRetrieve) -> None:
        acked = []
        unacked = []
        for record in self._send_log:
            if record.dst != request.requester:
                continue
            if record.rsn is not None:
                if record.rsn >= request.rsn_floor:
                    acked.append(
                        (record.payload, record.send_seq, record.rsn,
                         record.msg_id)
                    )
            else:
                unacked.append(
                    (record.payload, record.send_seq, record.msg_id)
                )
        acked.sort(key=lambda item: item[2])
        response = JZRetrieveResponse(
            responder=self.pid, acked=tuple(acked), unacked=tuple(unacked)
        )
        self.env.send(request.requester, response, kind="control")
        self.stats.control_sent += 1

    def _on_retrieve_response(self, response: JZRetrieveResponse) -> None:
        self._responses[response.responder] = response
        if len(self._responses) == self.n - 1:
            self._complete_recovery()

    def _complete_recovery(self) -> None:
        acked: list[tuple[Any, tuple[int, int], int, int]] = []
        fresh: list[tuple[Any, tuple[int, int], int]] = []
        for response in self._responses.values():
            acked.extend(response.acked)
            fresh.extend(response.unacked)
        acked.sort(key=lambda item: item[2])

        # Replay the maximal RSN-consecutive fully-logged prefix: these
        # deliveries deterministically recreate the original states, so
        # they get their original uids back (consecutive serials after the
        # checkpoint state, same incarnation tag).
        ckpt_uid = self.executor.current_uid
        expected = self._rsn
        replayed = 0
        remainder: list[tuple[Any, tuple[int, int], int]] = []
        for payload, send_seq, rsn, msg_id in acked:
            if send_seq in self._delivered:
                continue       # already inside the checkpoint
            if rsn == expected and not remainder:
                uid = (self.pid, ckpt_uid[1], ckpt_uid[2] + replayed + 1)
                self._delivered.add(send_seq)
                self._rsn += 1
                self.storage.log.append(msg_id, send_seq[0], payload,
                                        meta=(send_seq, rsn))
                self.stats.replayed += 1
                ctx = self.executor.execute(payload, msg_id=msg_id,
                                            replay=True, uid=uid)
                for send in ctx.sends:
                    # Regenerated sends are retransmitted: receivers
                    # deduplicate by send_seq, and sends that were still
                    # blocked at the crash are transmitted here for the
                    # first time.
                    envelope = JZMessage(payload=send.payload,
                                         send_seq=(self.pid, self._send_seq))
                    self._send_seq += 1
                    self._transmit(send.dst, envelope)
                self.emit_outputs(ctx.outputs, replay=True)
                replayed += 1
                expected += 1
            else:
                remainder.append((payload, send_seq, msg_id))
        fresh = remainder + fresh

        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, self.env.crash_count
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTART,
                self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
            )
        self._finish_recovery()
        # Beyond-the-prefix messages become fresh deliveries with new RSNs.
        for payload, send_seq, msg_id in fresh:
            if send_seq not in self._delivered:
                self._redeliver_fresh(payload, send_seq, msg_id)

    def _finish_recovery(self) -> None:
        self._recovering = False
        self._responses = {}
        self.take_checkpoint()
        # Blocked sends preserved in the checkpoint go out now.
        self._drain_outbox()
        buffered, self._buffered = self._buffered, []
        for msg in buffered:
            self.on_network_message(msg)

    def _redeliver_fresh(
        self, payload: Any, send_seq: tuple[int, int], msg_id: int
    ) -> None:
        """Deliver a retrieved-but-not-fully-logged message as new."""
        rsn = self._rsn
        self._rsn += 1
        self._delivered.add(send_seq)
        self.storage.log.append(msg_id, send_seq[0], payload,
                                meta=(send_seq, rsn))
        self._unconfirmed.add(rsn)
        self.env.send(send_seq[0], JZAck(send_seq, rsn), kind="control")
        self.stats.control_sent += 1
        self.stats.app_delivered += 1
        ctx = self.executor.execute(payload, msg_id=msg_id)
        for send in ctx.sends:
            self._queue_send(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)

    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        return {
            "send_seq": self._send_seq,
            "rsn": self._rsn,
            "delivered": set(self._delivered),
            "outbox": list(self._outbox),
        }

    def piggyback_entry_count(self) -> int:
        return 1
