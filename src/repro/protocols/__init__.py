"""Recovery protocols: the paper's protocol and the Table 1 baselines.

Every protocol implements :class:`repro.protocols.base.BaseRecoveryProcess`
and runs on the identical substrate (simulator, network, storage,
application model), so the comparison harness can measure Table 1's columns
empirically: message-ordering assumptions, asynchrony of recovery, rollbacks
per failure, piggybacked clock size, and tolerance of concurrent failures.

Rows of Table 1:

========================  ==============================================
Strom & Yemini [27]       :class:`~repro.protocols.strom_yemini.StromYeminiProcess`
Johnson & Zwaenepoel [11] :class:`~repro.protocols.sender_based.SenderBasedProcess`
Sistla & Welch [26]       :class:`~repro.protocols.sistla_welch.SistlaWelchProcess`
Peterson & Kearns [19]    :class:`~repro.protocols.peterson_kearns.PetersonKearnsProcess`
Smith/Johnson/Tygar [25]  :class:`~repro.protocols.smith_johnson_tygar.SmithJohnsonTygarProcess`
Damani & Garg (paper)     :class:`~repro.core.recovery.DamaniGargProcess`
========================  ==============================================

Extra context baselines: receiver-side pessimistic logging [3, 20]
(:class:`~repro.protocols.pessimistic_receiver.PessimisticReceiverProcess`)
and Koo-Toueg-style coordinated checkpointing [13]
(:class:`~repro.protocols.coordinated.CoordinatedProcess`).
"""

from repro.protocols.base import (
    BaseRecoveryProcess,
    ProtocolConfig,
    ProtocolStats,
)
from repro.protocols.causal_logging import CausalLoggingProcess
from repro.protocols.coordinated import CoordinatedProcess
from repro.protocols.pessimistic_receiver import PessimisticReceiverProcess
from repro.protocols.peterson_kearns import PetersonKearnsProcess
from repro.protocols.sender_based import SenderBasedProcess
from repro.protocols.sistla_welch import SistlaWelchProcess
from repro.protocols.strom_yemini import StromYeminiProcess


def __getattr__(name: str):
    # SmithJohnsonTygarProcess subclasses the core protocol, whose module
    # imports this package for the shared base class; resolving it lazily
    # (PEP 562) breaks the import cycle.
    if name == "SmithJohnsonTygarProcess":
        from repro.protocols.smith_johnson_tygar import (
            SmithJohnsonTygarProcess,
        )

        return SmithJohnsonTygarProcess
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BaseRecoveryProcess",
    "CausalLoggingProcess",
    "CoordinatedProcess",
    "PessimisticReceiverProcess",
    "PetersonKearnsProcess",
    "ProtocolConfig",
    "ProtocolStats",
    "SenderBasedProcess",
    "SistlaWelchProcess",
    "SmithJohnsonTygarProcess",
    "StromYeminiProcess",
]
