"""Common machinery for every recovery protocol.

A protocol process owns, per application process:

- an :class:`~repro.runtime.app.AppExecutor` running the
  piecewise-deterministic application (replayable);
- the environment's :class:`~repro.storage.stable.StableStorage`
  (checkpoints, message log, token log) surviving crashes;
- a :class:`ProtocolStats` block the metrics layer aggregates;
- periodic checkpoint / log-flush activities driven by environment timers.

Protocols are engine-agnostic: everything they touch goes through the
narrow :class:`~repro.runtime.env.RuntimeEnv` interface (``self.env``), so
the same protocol object runs under the discrete-event simulator and the
live asyncio cluster runtime.  Subclasses implement the four lifecycle
hooks (`on_start`, `on_network_message`, `on_crash`, `on_restart`) plus
whatever control machinery their paper requires.

Construction takes a :class:`RuntimeEnv`; passing a simulation
:class:`~repro.sim.process.ProcessHost` still works (it is adapted via
``host.runtime_env()``), as do the deprecated ``protocol.host`` and
``protocol.sim`` attributes, which warn and delegate to the environment.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.obs.tracer import NULL_TRACER
from repro.runtime.app import (
    Application,
    AppExecutor,
    OutputRecord,
    ProcessContext,
)
from repro.runtime.env import RuntimeEnv, TimerHandle
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind, SimTrace
from repro.storage import intents


@dataclass
class ProtocolConfig:
    """Knobs shared by all protocols.

    ``checkpoint_interval`` and ``flush_interval`` are in environment time
    (virtual under the simulator, seconds under the live runtime).
    ``flush_interval`` is the "infrequent intervals" of optimistic logging;
    pessimistic protocols ignore it and log synchronously.
    """

    checkpoint_interval: float = 10.0
    flush_interval: float = 3.0
    # Alternative checkpoint pacing: also checkpoint after this many
    # deliveries (None = time-based only).  Bounds replay length by
    # message count rather than by elapsed time, which suits bursty
    # workloads.
    checkpoint_every_messages: int | None = None
    # Remark 1 extension: failed process broadcasts its full clock with the
    # token and peers retransmit messages concurrent with the restored state.
    retransmit_on_token: bool = False
    # Hold environment outputs until they are stable (never rolled back).
    # Requires a StabilityCoordinator driving apply_stability sweeps.
    commit_outputs: bool = False
    # Remark 2 extension: reclaim checkpoints and log prefixes below the
    # permanently-safe line.  Also coordinator-driven.
    enable_gc: bool = False
    # Decentralised alternative to the StabilityCoordinator: periodically
    # broadcast the stable frontier and run apply_stability locally once a
    # report from every peer is in hand.  This is how the live runtime
    # (which has no cross-process coordinator object) drives GC/commit.
    # Stale reports are sound: a frontier entry only ever covers states
    # that were stable when reported, and any dependence on a
    # later-truncated state also depends on some failure's never-stable
    # lost states, which no report covers.
    gossip_stability: bool = False
    gossip_interval: float = 1.0
    # History compaction (Section 6.9): during stability sweeps, drop
    # token records for versions wholly below the contiguous token
    # prefix -- every such version's restoration point is superseded by
    # a token for a newer version.  Messages still mentioning a
    # compacted version are treated as obsolete (Lemma 4 boundary).
    compact_history: bool = False


@dataclass
class ProtocolStats:
    """Per-process counters read by :mod:`repro.analysis.metrics`."""

    app_sent: int = 0
    app_delivered: int = 0
    app_discarded: int = 0
    app_postponed: int = 0
    duplicates_discarded: int = 0
    control_sent: int = 0
    tokens_sent: int = 0
    tokens_received: int = 0
    piggyback_entries: int = 0       # scalar timestamps attached to app sends
    piggyback_bits: int = 0          # estimated encoded piggyback size
    # Estimated piggyback size under per-link delta encoding (full-clock
    # fallback on the first send of a link); compare with piggyback_bits.
    piggyback_delta_bits: int = 0
    restarts: int = 0
    rollbacks: int = 0
    replayed: int = 0
    retransmitted: int = 0
    sync_log_writes: int = 0
    history_compacted: int = 0       # history records dropped by compaction
    blocked_time: float = 0.0        # virtual time spent blocked (pessimistic)
    # rollbacks attributed to each failure (origin pid, version) -- the
    # "at most one rollback per failure" measurement of Table 1.
    rollbacks_per_failure: dict[tuple[int, int], int] = field(
        default_factory=dict
    )

    def note_rollback(self, origin: int, version: int) -> None:
        self.rollbacks += 1
        key = (origin, version)
        self.rollbacks_per_failure[key] = (
            self.rollbacks_per_failure.get(key, 0) + 1
        )

    @property
    def max_rollbacks_for_single_failure(self) -> int:
        if not self.rollbacks_per_failure:
            return 0
        return max(self.rollbacks_per_failure.values())


class BaseRecoveryProcess(abc.ABC):
    """One protocol instance attached to one :class:`RuntimeEnv`."""

    #: Human-readable protocol name (Table 1 row label).
    name: str = "abstract"
    #: Does the protocol assume FIFO channels?  (Table 1 column 1.)
    requires_fifo: bool = False
    #: Is recovery asynchronous -- can a failed process resume computing
    #: without waiting for responses from other processes?  (Column 2.)
    asynchronous_recovery: bool = False
    #: Can the protocol survive an unbounded number of concurrent failures?
    tolerates_concurrent_failures: bool = False

    def __init__(
        self,
        env: RuntimeEnv,
        app: Application,
        config: ProtocolConfig | None = None,
    ) -> None:
        if not isinstance(env, RuntimeEnv):
            # Legacy construction from a simulation ProcessHost.
            env = env.runtime_env()
        self.env = env
        self.pid = env.pid
        self.n = env.n
        self.trace: SimTrace | None = env.trace
        self.config = config if config is not None else ProtocolConfig()
        self.executor = AppExecutor(app, self.pid, self.n, env)
        self.storage = env.storage
        self.stats = ProtocolStats()
        # Observability sink: the environment's tracer when one is attached
        # (the runner attaches it before protocols are built), else the
        # shared no-op.  Guard expensive metric arguments on
        # ``self.obs.enabled``.
        self.obs = env.tracer if env.tracer is not None else NULL_TRACER
        self.outputs: list[tuple[float, Any]] = []   # committed outputs
        # Periodic-task state (see start_periodic_tasks).
        self._periodic_enabled = False
        self._ckpt_handle: TimerHandle | None = None
        self._flush_handle: TimerHandle | None = None
        self._paused_ckpt: TimerHandle | None = None
        self._paused_flush: TimerHandle | None = None
        self._gossip_handle: TimerHandle | None = None
        self._paused_gossip: TimerHandle | None = None
        self._deliveries_since_checkpoint = 0
        env.attach(self)

    # ------------------------------------------------------------------
    # Deprecated attribute paths (pre-RuntimeEnv API)
    # ------------------------------------------------------------------
    @property
    def host(self):
        """Deprecated: the simulation host behind a :class:`SimEnv`."""
        warnings.warn(
            "protocol.host is deprecated; use protocol.env (RuntimeEnv) -- "
            "env.alive / env.crash_count / env.send / env.broadcast",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.env.host

    @property
    def sim(self):
        """Deprecated: the simulator kernel behind a :class:`SimEnv`."""
        warnings.warn(
            "protocol.sim is deprecated; use protocol.env (RuntimeEnv) -- "
            "env.now / env.schedule_after",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.env.sim

    # ------------------------------------------------------------------
    # Lifecycle hooks (environment-facing)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_start(self) -> None: ...

    @abc.abstractmethod
    def on_network_message(self, msg: NetworkMessage) -> None: ...

    @abc.abstractmethod
    def on_crash(self) -> None: ...

    @abc.abstractmethod
    def on_restart(self) -> None: ...

    # ------------------------------------------------------------------
    # Periodic activities
    # ------------------------------------------------------------------
    def start_periodic_tasks(self) -> None:
        """Kick off checkpointing and log flushing.  Call from on_start.

        Chains that are already running are left alone, so a restart path
        that fell back to ``on_start`` (nothing durable to restore) can be
        followed by an unconditional call without doubling the timers.
        """
        self._periodic_enabled = True
        if self._ckpt_handle is None:
            self._schedule_checkpoint()
        if self._flush_handle is None:
            self._schedule_flush()
        if self.config.gossip_stability and self._gossip_handle is None:
            self._schedule_gossip()

    def halt_periodic_tasks(self) -> None:
        """Stop the periodic activities for good (end of experiment).

        The flag alone suffices: each chain's next fire sees it and stops
        without rescheduling.  (Tombstoning the pending timers instead
        would change where the drain phase quiesces.)
        """
        self._periodic_enabled = False

    def pause_periodic_tasks(self) -> None:
        """Suspend the periodic chains (the environment calls this when the
        process crashes -- a dead process must not run protocol timers)."""
        if self._ckpt_handle is not None:
            self._paused_ckpt = self.env.suspend_timer(
                self._ckpt_handle,
                self.config.checkpoint_interval,
                label=f"ckpt:{self.pid}",
            )
            self._ckpt_handle = None
        if self._flush_handle is not None:
            self._paused_flush = self.env.suspend_timer(
                self._flush_handle,
                self.config.flush_interval,
                label=f"flush:{self.pid}",
            )
            self._flush_handle = None
        if self._gossip_handle is not None:
            self._paused_gossip = self.env.suspend_timer(
                self._gossip_handle,
                self.config.gossip_interval,
                label=f"gossip:{self.pid}",
            )
            self._gossip_handle = None

    def resume_periodic_tasks(self) -> None:
        """Resume chains paused by :meth:`pause_periodic_tasks`, preserving
        their phase: fire times are exactly those the never-paused chain
        would have used (minus the fires that fell inside the downtime,
        which would have done no work)."""
        paused_ckpt, self._paused_ckpt = self._paused_ckpt, None
        paused_flush, self._paused_flush = self._paused_flush, None
        paused_gossip, self._paused_gossip = self._paused_gossip, None
        if not self._periodic_enabled:
            # Halted while down: abandon the suspended chains.
            if paused_ckpt is not None:
                paused_ckpt.cancel()
            if paused_flush is not None:
                paused_flush.cancel()
            if paused_gossip is not None:
                paused_gossip.cancel()
            return
        if paused_ckpt is not None:
            self._ckpt_handle = self.env.resume_timer(
                paused_ckpt,
                self.config.checkpoint_interval,
                self._periodic_checkpoint,
                label=f"ckpt:{self.pid}",
            )
        if paused_flush is not None:
            self._flush_handle = self.env.resume_timer(
                paused_flush,
                self.config.flush_interval,
                self._periodic_flush,
                label=f"flush:{self.pid}",
            )
        if paused_gossip is not None:
            self._gossip_handle = self.env.resume_timer(
                paused_gossip,
                self.config.gossip_interval,
                self._periodic_gossip,
                label=f"gossip:{self.pid}",
            )
        # A crash *inside* a periodic callback (an armed crash point
        # firing mid-checkpoint/flush) lands after the callback nulled
        # its handle and before it rescheduled, so there was no timer to
        # pause -- restart such a chain from scratch or it is dead for
        # the rest of the run.  Ordinary crashes land between events and
        # never hit this.
        if paused_ckpt is None and self._ckpt_handle is None:
            self._schedule_checkpoint()
        if paused_flush is None and self._flush_handle is None:
            self._schedule_flush()
        if (
            self.config.gossip_stability
            and paused_gossip is None
            and self._gossip_handle is None
        ):
            self._schedule_gossip()

    def _schedule_checkpoint(self) -> None:
        self._ckpt_handle = self.env.schedule_after(
            self.config.checkpoint_interval,
            self._periodic_checkpoint,
            label=f"ckpt:{self.pid}",
        )

    def _periodic_checkpoint(self) -> None:
        self._ckpt_handle = None
        if not self._periodic_enabled or not self.env.alive:
            return
        self.take_checkpoint()
        self._schedule_checkpoint()

    def _schedule_flush(self) -> None:
        self._flush_handle = self.env.schedule_after(
            self.config.flush_interval,
            self._periodic_flush,
            label=f"flush:{self.pid}",
        )

    def _periodic_flush(self) -> None:
        self._flush_handle = None
        if not self._periodic_enabled or not self.env.alive:
            return
        self.flush_log()
        self._schedule_flush()

    def _schedule_gossip(self) -> None:
        self._gossip_handle = self.env.schedule_after(
            self.config.gossip_interval,
            self._periodic_gossip,
            label=f"gossip:{self.pid}",
        )

    def _periodic_gossip(self) -> None:
        self._gossip_handle = None
        if not self._periodic_enabled or not self.env.alive:
            return
        self.gossip_tick()
        self._schedule_gossip()

    def gossip_tick(self) -> None:
        """One stability-gossip round.  Protocols that support the
        Section 6.5 extensions override this (see DamaniGargProcess);
        the default is a no-op so the timer chain stays harmless."""

    # ------------------------------------------------------------------
    # Storage helpers (subclasses may extend)
    # ------------------------------------------------------------------
    def note_delivery_for_checkpoint(self) -> None:
        """Count a delivery toward the message-count checkpoint policy.

        Protocols call this after each live delivery; when
        ``config.checkpoint_every_messages`` deliveries have accumulated
        since the last checkpoint, one is taken immediately.
        """
        threshold = self.config.checkpoint_every_messages
        if threshold is None:
            return
        count = self._deliveries_since_checkpoint + 1
        if count >= threshold:
            self.take_checkpoint()
        else:
            self._deliveries_since_checkpoint = count

    def take_checkpoint(self) -> None:
        """Default checkpoint: flush the log, save the executor snapshot.

        Subclasses override to add protocol state (clock, history, ...) via
        :meth:`checkpoint_extras`.

        The flush and the checkpoint write are two durable steps, so the
        transition carries a write-ahead intent: a crash between them
        leaves a flushed-but-uncheckpointed image that the startup
        crawler rolls back (an early flush is harmless on its own).
        """
        self._deliveries_since_checkpoint = 0
        intent = self.storage.begin_intent(intents.CHECKPOINT)
        self.storage.advance_intent(intent, "log_flushed")
        self.flush_log()
        # Memory-only commit: the checkpoint write below persists the
        # intent-free image, which is what makes "committed" durable.
        self.storage.commit_intent(intent)
        with self.obs.span("proto.checkpoint_wall_s"):
            ckpt = self.storage.checkpoints.take(
                self.env.now,
                self.executor.snapshot(),
                self.storage.log.stable_length,
                extras=self.checkpoint_extras(),
            )
        self.obs.counter("proto.checkpoints")
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.CHECKPOINT,
                self.pid,
                ckpt_id=ckpt.ckpt_id,
                uid=self.executor.current_uid,
                log_position=ckpt.log_position,
            )

    def checkpoint_extras(self) -> dict[str, Any]:
        """Protocol state saved alongside each checkpoint."""
        return {}

    def flush_log(self) -> int:
        moved = self.storage.log.flush()
        if moved:
            self.obs.counter("proto.log_flushes")
            self.obs.counter("proto.log_entries_flushed", moved)
        if moved and self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.LOG_FLUSH,
                self.pid,
                moved=moved,
                stable_length=self.storage.log.stable_length,
            )
        return moved

    # ------------------------------------------------------------------
    # Output handling
    # ------------------------------------------------------------------
    def emit_outputs(self, records: list[OutputRecord], *, replay: bool) -> None:
        """Record application outputs to the environment.

        Replayed transitions regenerate outputs that were already emitted;
        they are suppressed, matching the suppression of replayed sends.
        """
        if replay:
            return
        for rec in records:
            self.outputs.append((self.env.now, rec.value))
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.OUTPUT,
                    self.pid,
                    value=rec.value,
                    uid=self.executor.current_uid,
                )

    # ------------------------------------------------------------------
    # Introspection used by the comparison harness
    # ------------------------------------------------------------------
    def piggyback_entry_count(self) -> int:
        """Scalar timestamps this protocol attaches to one app message.

        The Table 1 "number of timestamps in vector clock" column; measured,
        not declared, where the size varies (Smith-Johnson-Tygar grows with
        failures).
        """
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} pid={self.pid}>"
