"""Optimistic recovery after Strom & Yemini [27].

The founding optimistic protocol.  Mechanically close to Damani-Garg --
transitive dependency vectors of ``(incarnation, index)`` pairs, optimistic
receiver logging, checkpoints -- but with the crucial difference the paper
fixes: **a rollback also begins a new incarnation and broadcasts its own
announcement**, exactly like a failure does.

Consequences (all measurable in the comparison harness):

- a single root failure cascades: P2 rolls back for P1's announcement and
  announces; P3 may first roll back for P2's announcement and then again
  for P1's (or vice versa), so one process can roll back several times per
  failure -- the paper's Table 1 cites a 2^n worst case, against exactly 1
  for Damani-Garg;
- every rollback costs a broadcast, so control traffic is higher;
- the incarnation-end table must cover rollback incarnations too, so more
  announcements gate deliverability.

Announcements carry a ``root`` tag (origin failure) purely for
*measurement*: `stats.rollbacks_per_failure` is keyed by root so the
harness can count rollbacks per root failure.  The tag does not influence
protocol decisions.

Strom-Yemini assumed FIFO channels; this implementation postpones messages
that mention incarnations whose predecessors are unannounced (the same
hold-until-known device as the main protocol), so it runs correctly under
any ordering, but it is graded under FIFO in Table 1 as published.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind

#: A dependency entry: (incarnation, state index), ordered lexicographically.
DepEntry = tuple[int, int]


@dataclass(frozen=True)
class SYEnvelope:
    payload: Any
    dv: tuple[DepEntry, ...]         # transitive dependency vector


@dataclass(frozen=True)
class SYAnnouncement:
    """'Incarnation ``incarnation`` of ``origin`` ended at ``end_index``;
    states beyond it are dead.'  Sent after failures AND after rollbacks.
    ``end_index = -1`` kills the whole incarnation (used when a recovery
    reaches below the point where that incarnation began)."""

    origin: int
    incarnation: int
    end_index: int
    root: tuple[int, int]            # (root pid, root crash count) -- metrics


class StromYeminiProcess(BaseRecoveryProcess):
    """One Strom-Yemini process."""

    name = "Strom-Yemini"
    requires_fifo = True
    asynchronous_recovery = True
    tolerates_concurrent_failures = False

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self.incarnation = 0
        self.index = 0
        self.dv: list[DepEntry] = [(0, 0) for _ in range(self.n)]
        self.dv[self.pid] = (0, 0)
        # incarnation end table: (pid, incarnation) -> end index
        self.iet: dict[tuple[int, int], int] = {}
        self._held: list[NetworkMessage] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self.storage.put("max_incarnation", 0)
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)
        self.take_checkpoint()
        self.start_periodic_tasks()

    def on_network_message(self, msg: NetworkMessage) -> None:
        if msg.kind == "token":
            self._receive_announcement(msg.payload)
        elif msg.kind == "app":
            self._receive_app(msg)
        else:
            raise ValueError(f"unexpected message kind {msg.kind!r}")

    def on_crash(self) -> None:
        self.storage.on_crash()
        self._held.clear()

    def on_restart(self) -> None:
        self.stats.restarts += 1
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="restart",
            )
        self._restore_checkpoint(ckpt)
        replayed = 0
        for entry in self.storage.log.stable_entries(ckpt.log_position):
            self._replay_entry(entry)
            replayed += 1
        root = (self.pid, self.env.crash_count)
        self._end_incarnations_and_reincarnate(root)
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, self.incarnation
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTART, self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
            )
        self.take_checkpoint()
        for announcement in self.storage.tokens:
            self._apply_announcement(announcement)

    # ------------------------------------------------------------------
    # Dependency-vector helpers
    # ------------------------------------------------------------------
    def _dv_obsolete(self, dv: tuple[DepEntry, ...]) -> bool:
        for j, (inc, idx) in enumerate(dv):
            end = self.iet.get((j, inc))
            if end is not None and idx > end:
                return True
        return False

    def _dv_missing(self, dv: tuple[DepEntry, ...]) -> list[tuple[int, int]]:
        missing = []
        for j, (inc, _idx) in enumerate(dv):
            for earlier in range(inc):
                if (j, earlier) not in self.iet:
                    missing.append((j, earlier))
        return missing

    def _dv_merge(self, dv: tuple[DepEntry, ...]) -> None:
        self.dv = [max(a, b) for a, b in zip(self.dv, dv)]

    def _dv_orphaned_by(
        self, dv: list[DepEntry], ann: SYAnnouncement
    ) -> bool:
        inc, idx = dv[ann.origin]
        return inc == ann.incarnation and idx > ann.end_index

    # ------------------------------------------------------------------
    # Receive message
    # ------------------------------------------------------------------
    def _receive_app(self, msg: NetworkMessage) -> None:
        envelope: SYEnvelope = msg.payload
        if self._dv_obsolete(envelope.dv):
            self.stats.app_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.DISCARD, self.pid,
                    msg_id=msg.msg_id, reason="obsolete",
                )
            return
        missing = self._dv_missing(envelope.dv)
        if missing:
            self._held.append(msg)
            self.stats.app_postponed += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.POSTPONE, self.pid,
                    msg_id=msg.msg_id, awaiting=missing,
                )
            return
        self._deliver(msg)

    def _deliver(self, msg: NetworkMessage) -> None:
        envelope: SYEnvelope = msg.payload
        self._dv_merge(envelope.dv)
        self.index += 1
        self.dv[self.pid] = (self.incarnation, self.index)
        self.stats.app_delivered += 1
        ctx = self.executor.execute(envelope.payload, msg_id=msg.msg_id)
        # The entry remembers the (incarnation, index) label this state was
        # created under, so replay can resurrect it with the identical
        # label even if the checkpoint predates a reincarnation.
        self.storage.log.append(
            msg.msg_id, msg.src, envelope.payload,
            meta=(envelope.dv, self.executor.current_uid,
                  (self.incarnation, self.index)),
        )
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)

    def _replay_entry(self, entry) -> None:
        dv, uid, own_label = entry.meta
        self._dv_merge(dv)
        self.incarnation, self.index = own_label
        self.dv[self.pid] = own_label
        self.stats.replayed += 1
        ctx = self.executor.execute(
            entry.payload, msg_id=entry.msg_id, replay=True, uid=uid
        )
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=False)
        self.emit_outputs(ctx.outputs, replay=True)

    def _send_app(self, dst: int, payload: Any, *, transmit: bool) -> None:
        envelope = SYEnvelope(payload=payload, dv=tuple(self.dv))
        if transmit:
            sent = self.env.send(dst, envelope, kind="app")
            self.stats.app_sent += 1
            self.stats.piggyback_entries += len(envelope.dv)
            self.stats.piggyback_bits += len(envelope.dv) * (32 + 8)
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.SEND, self.pid,
                    msg_id=sent.msg_id, dst=dst,
                    uid=self.executor.current_uid,
                )

    # ------------------------------------------------------------------
    # Announcements
    # ------------------------------------------------------------------
    def _iet_install(self, key: tuple[int, int], end: int) -> None:
        """Incarnation ends only shrink: a later, lower end (a recovery
        that reached further back) must never be widened by a stale,
        reordered announcement."""
        existing = self.iet.get(key)
        if existing is None or end < existing:
            self.iet[key] = end

    def _end_incarnations_and_reincarnate(self, root: tuple[int, int]) -> None:
        """Kill everything after the current (restored) state and begin a
        fresh incarnation (used by both restart and rollback).

        The current state sits in incarnation ``self.incarnation``; every
        incarnation this process ever started beyond it (recorded durably
        in ``max_incarnation``) is now entirely dead and must be announced
        as such, or messages from those states would remain acceptable.
        """
        max_used = self.storage.get("max_incarnation", self.incarnation)
        kills = [(self.incarnation, self.index)]
        kills.extend(
            (inc, -1) for inc in range(self.incarnation + 1, max_used + 1)
        )
        for incarnation, end in kills:
            announcement = SYAnnouncement(
                origin=self.pid,
                incarnation=incarnation,
                end_index=end,
                root=root,
            )
            self.storage.log_token(announcement)
            self._iet_install((self.pid, incarnation), end)
            self.env.broadcast(announcement, kind="token")
            self.stats.tokens_sent += self.n - 1
            self.stats.control_sent += self.n - 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.TOKEN_SEND, self.pid,
                    version=incarnation,
                    timestamp=end,
                )
        self.incarnation = max_used + 1
        self.storage.put("max_incarnation", self.incarnation)
        self.index = 0
        self.dv[self.pid] = (self.incarnation, 0)

    def _receive_announcement(self, announcement: SYAnnouncement) -> None:
        self.stats.tokens_received += 1
        self.storage.log_token(announcement)
        self.stats.sync_log_writes += 1
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_DELIVER, self.pid,
                origin=announcement.origin,
                version=announcement.incarnation,
                timestamp=announcement.end_index,
            )
        self._apply_announcement(announcement)
        held, self._held = self._held, []
        for msg in held:
            self._receive_app(msg)

    def _apply_announcement(self, announcement: SYAnnouncement) -> None:
        if self._dv_orphaned_by(self.dv, announcement):
            self._rollback(announcement)
        self._iet_install(
            (announcement.origin, announcement.incarnation),
            announcement.end_index,
        )

    # ------------------------------------------------------------------
    # Rollback -- unlike Damani-Garg, it re-incarnates and re-announces
    # ------------------------------------------------------------------
    def _rollback(self, announcement: SYAnnouncement) -> None:
        self.flush_log()
        j = announcement.origin

        def survives(ckpt) -> bool:
            inc, idx = ckpt.extras["dv"][j]
            return not (
                inc == announcement.incarnation
                and idx > announcement.end_index
            )

        ckpt = self.storage.checkpoints.latest_satisfying(survives)
        if ckpt is None:
            raise RuntimeError(
                f"P{self.pid}: no surviving checkpoint for {announcement!r}"
            )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="rollback",
            )
        self._restore_checkpoint(ckpt)
        self.storage.checkpoints.discard_after(ckpt)
        position = ckpt.log_position
        replayed = 0
        for entry in self.storage.log.stable_entries(position):
            dv, _uid, _own_label = entry.meta
            inc, idx = dv[j]
            if inc == announcement.incarnation and idx > announcement.end_index:
                break
            self._replay_entry(entry)
            replayed += 1
        discarded = self.storage.log.truncate(position + replayed)
        # Re-apply all known announcements over the restored table.
        for logged in self.storage.tokens:
            self._iet_install(
                (logged.origin, logged.incarnation), logged.end_index
            )
        # The Strom-Yemini move: a rollback ends this incarnation too.
        self._end_incarnations_and_reincarnate(announcement.root)
        restored_uid = self.executor.new_recovery_state()
        self.stats.note_rollback(*announcement.root)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.ROLLBACK, self.pid,
                origin=announcement.origin,
                version=announcement.incarnation,
                timestamp=announcement.end_index,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
                discarded_log_entries=discarded,
            )

    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        return {
            "dv": list(self.dv),
            "incarnation": self.incarnation,
            "index": self.index,
            "iet": dict(self.iet),
        }

    def _restore_checkpoint(self, ckpt) -> None:
        self.executor.restore(ckpt.snapshot)
        self.dv = list(ckpt.extras["dv"])
        self.incarnation = ckpt.extras["incarnation"]
        self.index = ckpt.extras["index"]
        self.iet = dict(ckpt.extras["iet"])

    def piggyback_entry_count(self) -> int:
        return self.n
