"""Synchronous optimistic recovery after Sistla & Welch [26].

Messages piggyback a plain vector clock (O(n) timestamps) plus a scalar
epoch.  Logging is optimistic (volatile buffer, periodic flush), so a
failure loses states; recovery is a *synchronous session* that computes
the maximum consistent recovery line by iterated retraction:

1. the restarted process restores and replays, then broadcasts
   ``SWBegin`` -- every process pauses application processing (the pause
   is ``stats.blocked_time``) and flushes its log;
2. the initiator runs ``n`` rounds; each round broadcasts the current cut
   vector ``C`` (per-process candidate timestamps) and every peer replies
   with its *candidate*: the latest of its restorable states whose vector
   clock is within ``C``.  Candidates only move down, so ``n`` rounds
   reach the fixed point (retraction cascades at most ``n - 1`` hops);
3. ``SWCommit(C)`` makes everyone roll back to its candidate (at most one
   rollback per failure) and resume in the next epoch.

In-flight messages from an old epoch are obsolete iff their clock exceeds
the committed cut in any component.  As published, the protocol assumes
FIFO channels and one failure at a time (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.clocks.vector import VectorClock
from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class SWEnvelope:
    payload: Any
    clock: VectorClock
    epoch: int


@dataclass(frozen=True)
class SWBegin:
    initiator: int
    epoch: int


@dataclass(frozen=True)
class SWRound:
    initiator: int
    epoch: int
    round: int
    cut: tuple[int | None, ...]       # None = unconstrained so far


@dataclass(frozen=True)
class SWReport:
    sender: int
    epoch: int
    round: int
    candidate_ts: int


@dataclass(frozen=True)
class SWCommit:
    initiator: int
    epoch: int
    cut: tuple[int, ...]


class SistlaWelchProcess(BaseRecoveryProcess):
    """One Sistla-Welch process."""

    name = "Sistla-Welch"
    requires_fifo = True
    asynchronous_recovery = False
    tolerates_concurrent_failures = False

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self.clock = VectorClock.initial(self.pid, self.n)
        self.epoch = 0
        self.cutoffs: dict[int, tuple[int, ...]] = {}   # epoch -> committed cut
        self._held: list[NetworkMessage] = []
        # Session state:
        self._paused_for: int | None = None     # epoch of the active session
        self._buffered: list[NetworkMessage] = []
        self._blocked_since: float | None = None
        # Initiator state:
        self._round: int = 0
        self._cut: list[int | None] = []
        self._reports: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)
        self.take_checkpoint()
        self.start_periodic_tasks()

    def on_network_message(self, msg: NetworkMessage) -> None:
        payload = msg.payload
        if isinstance(payload, SWBegin):
            self._on_begin(payload)
        elif isinstance(payload, SWRound):
            self._on_round(payload)
        elif isinstance(payload, SWReport):
            self._on_report(payload)
        elif isinstance(payload, SWCommit):
            self._on_commit(payload)
        elif self._paused_for is not None:
            self._buffered.append(msg)
        else:
            self._receive_app(msg)

    def on_crash(self) -> None:
        self.storage.on_crash()
        self._held.clear()
        self._buffered.clear()
        self._paused_for = None
        self._blocked_since = None
        self._reports = {}

    def on_restart(self) -> None:
        self.stats.restarts += 1
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="restart",
            )
        self._restore_checkpoint(ckpt)
        replayed = 0
        for entry in self.storage.log.stable_entries(ckpt.log_position):
            self._replay_entry(entry)
            replayed += 1
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, self.epoch + 1
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTART, self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
            )
        self.take_checkpoint()
        if self.n == 1:
            self.epoch += 1
            return
        # Start the synchronous session.
        session_epoch = self.epoch + 1
        self._paused_for = session_epoch
        self._blocked_since = self.env.now
        self._round = 0
        self._cut = [None] * self.n
        self._cut[self.pid] = self.clock[self.pid]
        self.env.broadcast(SWBegin(self.pid, session_epoch), kind="token")
        self.stats.tokens_sent += self.n - 1
        self.stats.control_sent += self.n - 1
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_SEND, self.pid,
                version=session_epoch, timestamp=self.clock[self.pid],
            )
        self._start_round(session_epoch)

    # ------------------------------------------------------------------
    # Session: initiator side
    # ------------------------------------------------------------------
    def _start_round(self, epoch: int) -> None:
        self._reports = {}
        self.env.broadcast(
            SWRound(self.pid, epoch, self._round, tuple(self._cut)),
            kind="control",
        )
        self.stats.control_sent += self.n - 1

    def _on_report(self, report: SWReport) -> None:
        if self._paused_for is None or report.epoch != self._paused_for:
            return
        if report.round != self._round:
            return
        self._reports[report.sender] = report.candidate_ts
        if len(self._reports) < self.n - 1:
            return
        for sender, ts in self._reports.items():
            self._cut[sender] = ts
        # The initiator is a participant too: its replayed suffix may
        # depend on states the peers just retracted.
        own_position = self._candidate_position(tuple(self._cut))
        self._cut[self.pid] = self._state_clock_at(own_position)[self.pid]
        self._round += 1
        if self._round < self.n:
            self._start_round(report.epoch)
            return
        cut = tuple(ts if ts is not None else 0 for ts in self._cut)
        self.env.broadcast(
            SWCommit(self.pid, report.epoch, cut), kind="control"
        )
        self.stats.control_sent += self.n - 1
        self._finish_session(report.epoch, cut, initiator=True)

    # ------------------------------------------------------------------
    # Session: participant side
    # ------------------------------------------------------------------
    def _on_begin(self, begin: SWBegin) -> None:
        self.stats.tokens_received += 1
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_DELIVER, self.pid,
                origin=begin.initiator, version=begin.epoch, timestamp=0,
            )
        self._paused_for = begin.epoch
        self._blocked_since = self.env.now
        self.flush_log()

    def _candidate_position(self, cut: tuple[int | None, ...]) -> int:
        """The latest stable-log position whose state clock fits ``cut``."""
        for position in range(self.storage.log.stable_length, -1, -1):
            state_clock = self._state_clock_at(position)
            ok = True
            for j, bound in enumerate(cut):
                if j == self.pid or bound is None:
                    continue
                if state_clock[j] > bound:
                    ok = False
                    break
            if ok:
                return position
        raise RuntimeError(f"P{self.pid}: no state fits cut {cut}")

    def _state_clock_at(self, position: int) -> VectorClock:
        if position == 0:
            first = next(iter(self.storage.checkpoints))
            return first.extras["clock"]
        entry = self.storage.log.entry(position - 1)
        _msg_clock, state_clock, _uid = entry.meta
        return state_clock

    def _on_round(self, round_msg: SWRound) -> None:
        if self._paused_for is None and round_msg.epoch > self.epoch:
            # Round overtook the begin (possible under reordering): treat
            # it as the implicit session start.
            self._on_begin(SWBegin(round_msg.initiator, round_msg.epoch))
        if self._paused_for is None or round_msg.epoch != self._paused_for:
            return
        position = self._candidate_position(round_msg.cut)
        candidate_ts = self._state_clock_at(position)[self.pid]
        self.env.send(
            round_msg.initiator,
            SWReport(self.pid, round_msg.epoch, round_msg.round, candidate_ts),
            kind="control",
        )
        self.stats.control_sent += 1

    def _on_commit(self, commit: SWCommit) -> None:
        if self._paused_for is None or commit.epoch != self._paused_for:
            return
        self._finish_session(commit.epoch, commit.cut, initiator=False)

    def _finish_session(
        self, epoch: int, cut: tuple[int, ...], *, initiator: bool
    ) -> None:
        position = self._candidate_position(cut)
        if position < self.storage.log.stable_length:
            self._rollback_to(position, epoch, cut)
        self.cutoffs[self.epoch] = cut
        self.epoch = epoch
        # Commits are durable facts: a later restart must not forget a cut
        # it already acted on.
        self.storage.log_token(SWCommit(self.pid, epoch, cut))
        self._paused_for = None
        if self._blocked_since is not None:
            self.stats.blocked_time += self.env.now - self._blocked_since
            self._blocked_since = None
        self.take_checkpoint()
        buffered, self._buffered = self._buffered, []
        for msg in buffered:
            self.on_network_message(msg)
        held, self._held = self._held, []
        for msg in held:
            self._receive_app(msg)

    def _rollback_to(
        self, position: int, epoch: int, cut: tuple[int, ...]
    ) -> None:
        ckpt = self.storage.checkpoints.latest_satisfying(
            lambda c: c.log_position <= position
        )
        assert ckpt is not None   # the initial checkpoint is at position 0
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="rollback",
            )
        self._restore_checkpoint(ckpt)
        self.storage.checkpoints.discard_after(ckpt)
        replayed = 0
        for entry in self.storage.log.stable_entries(ckpt.log_position):
            if ckpt.log_position + replayed >= position:
                break
            self._replay_entry(entry)
            replayed += 1
        discarded = self.storage.log.truncate(position)
        self.clock = self.clock.tick(self.pid)
        restored_uid = self.executor.new_recovery_state()
        self.stats.note_rollback(epoch, 0)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.ROLLBACK, self.pid,
                origin=-1, version=epoch, timestamp=0,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
                discarded_log_entries=discarded,
            )

    # ------------------------------------------------------------------
    # Application traffic
    # ------------------------------------------------------------------
    def _is_obsolete(self, envelope: SWEnvelope) -> bool:
        for epoch in range(envelope.epoch, self.epoch):
            cut = self.cutoffs.get(epoch)
            if cut is None:
                continue
            if any(envelope.clock[j] > cut[j] for j in range(self.n)):
                return True
        return False

    def _receive_app(self, msg: NetworkMessage) -> None:
        envelope: SWEnvelope = msg.payload
        if envelope.epoch > self.epoch:
            self._held.append(msg)
            self.stats.app_postponed += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.POSTPONE, self.pid,
                    msg_id=msg.msg_id, awaiting=[("epoch", envelope.epoch)],
                )
            return
        if self._is_obsolete(envelope):
            self.stats.app_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.DISCARD, self.pid,
                    msg_id=msg.msg_id, reason="obsolete",
                )
            return
        self._deliver(msg)

    def _deliver(self, msg: NetworkMessage) -> None:
        envelope: SWEnvelope = msg.payload
        self.clock = self.clock.merge(envelope.clock).tick(self.pid)
        self.stats.app_delivered += 1
        ctx = self.executor.execute(envelope.payload, msg_id=msg.msg_id)
        self.storage.log.append(
            msg.msg_id, msg.src, envelope.payload,
            meta=(envelope.clock, self.clock, self.executor.current_uid),
        )
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)

    def _replay_entry(self, entry) -> None:
        msg_clock, _state_clock, uid = entry.meta
        self.clock = self.clock.merge(msg_clock).tick(self.pid)
        self.stats.replayed += 1
        ctx = self.executor.execute(
            entry.payload, msg_id=entry.msg_id, replay=True, uid=uid
        )
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=False)
        self.emit_outputs(ctx.outputs, replay=True)

    def _send_app(self, dst: int, payload: Any, *, transmit: bool) -> None:
        envelope = SWEnvelope(payload=payload, clock=self.clock,
                              epoch=self.epoch)
        if transmit:
            sent = self.env.send(dst, envelope, kind="app")
            self.stats.app_sent += 1
            self.stats.piggyback_entries += len(self.clock) + 1
            self.stats.piggyback_bits += (len(self.clock) + 1) * 32
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.SEND, self.pid,
                    msg_id=sent.msg_id, dst=dst,
                    uid=self.executor.current_uid,
                )
        self.clock = self.clock.tick(self.pid)

    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        return {
            "clock": self.clock,
            "epoch": self.epoch,
            "cutoffs": dict(self.cutoffs),
        }

    def _restore_checkpoint(self, ckpt) -> None:
        self.executor.restore(ckpt.snapshot)
        self.clock = ckpt.extras["clock"]
        self.epoch = ckpt.extras["epoch"]
        self.cutoffs = dict(ckpt.extras["cutoffs"])
        for logged in self.storage.tokens:
            if isinstance(logged, SWCommit):
                self.cutoffs[logged.epoch - 1] = logged.cut
                self.epoch = max(self.epoch, logged.epoch)

    def piggyback_entry_count(self) -> int:
        return self.n + 1
