"""Coordinated (consistent) checkpointing with global rollback.

The Section 1 motivation baseline (Koo-Toueg [13] / Chandy-Lamport [5]
style): processes synchronize their checkpoints into consistent global
snapshots, and after a failure *everyone* rolls back to the last committed
snapshot.  No message logging, so recovery loses every state since the
snapshot -- the "may not restore the maximum recoverable state" critique
the optimistic protocols answer, and the harness grades it accordingly
(safety holds; maximal recovery deliberately does not).

Mechanics (simulation-faithful, order-free):

- a coordinator (pid 0) runs numbered snapshot rounds on the checkpoint
  interval; on ``SNAPSHOT(r)`` every process saves a tentative checkpoint
  and acks; when all acks arrive the coordinator broadcasts ``COMMIT(r)``;
- every application message piggybacks the sender's current round and
  recovery epoch (O(1)); a message whose sender round precedes the
  receiver's round is *channel state*: it is delivered normally and also
  recorded into the pending snapshot(s) it crosses, making each snapshot a
  consistent cut including in-flight messages;
- after a failure the failed process restores the last committed snapshot
  and broadcasts ``RECOVER(r*, epoch+1)``; every process rolls back to its
  round-``r*`` checkpoint, re-delivers the recorded channel state, and
  resumes in the new epoch.  Messages from an overtaken epoch are accepted
  only if their sender round precedes the restored cut (they were in
  flight across it) and discarded otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class CoEnvelope:
    payload: Any
    round: int
    epoch: int
    dedup_id: tuple[int, int]


@dataclass(frozen=True)
class CoSnapshot:
    round: int
    epoch: int


@dataclass(frozen=True)
class CoSnapAck:
    round: int
    sender: int


@dataclass(frozen=True)
class CoCommit:
    round: int
    epoch: int


@dataclass(frozen=True)
class CoRecover:
    round: int          # committed snapshot to restore
    epoch: int          # the epoch recovery begins


class CoordinatedProcess(BaseRecoveryProcess):
    """One process under coordinated checkpointing."""

    name = "Coordinated checkpointing"
    requires_fifo = False
    asynchronous_recovery = True
    tolerates_concurrent_failures = True
    COORDINATOR = 0

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self.round = 0
        self.epoch = 0
        self._send_seq = 0
        self._delivered: set[tuple[int, int]] = set()
        #: round -> messages crossing that snapshot's cut (stable: lives in
        #: the checkpoint extras of that round)
        self._channel_logs: dict[int, list[CoEnvelope]] = {}
        #: epoch transition -> the cut round it restored
        self._recovery_cuts: dict[int, int] = {}
        self._acked_rounds: set[int] = set()
        # Coordinator-only:
        self._pending_round: int | None = None
        self._acks: set[int] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # Bootstrap sends happen before snapshot 0 exists: tag them with
        # round -1 so they count as in-flight across the round-0 cut (a
        # recovery to round 0 must deliver, not discard, them).
        self.round = -1
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._send_app(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)
        self.round = 0
        self._take_snapshot(0)
        self.storage.put("committed_round", 0)
        self.storage.put("epoch", 0)
        if self.pid == self.COORDINATOR:
            self._schedule_snapshot_round()

    def _schedule_snapshot_round(self) -> None:
        self.env.schedule_after(
            self.config.checkpoint_interval,
            self._initiate_round,
            label="snapshot-round",
        )

    def _initiate_round(self) -> None:
        if not getattr(self, "_rounds_enabled", True):
            return
        if self.env.alive and self._pending_round is None:
            next_round = self.storage.get("next_round", 1)
            self.storage.put("next_round", next_round + 1)
            self._pending_round = next_round
            self._acks = set()
            self.env.broadcast(
                CoSnapshot(next_round, self.epoch), kind="control"
            )
            self.stats.control_sent += self.n - 1
            self._on_snapshot(CoSnapshot(next_round, self.epoch))
        self._schedule_snapshot_round()

    def halt_periodic_tasks(self) -> None:
        super().halt_periodic_tasks()
        self._rounds_enabled = False

    def start_periodic_tasks(self) -> None:   # pragma: no cover
        raise RuntimeError(
            "CoordinatedProcess drives its own checkpoint rounds"
        )

    def on_network_message(self, msg: NetworkMessage) -> None:
        payload = msg.payload
        if isinstance(payload, CoSnapshot):
            self._on_snapshot(payload)
        elif isinstance(payload, CoSnapAck):
            self._on_snap_ack(payload)
        elif isinstance(payload, CoCommit):
            self._on_commit(payload)
        elif isinstance(payload, CoRecover):
            self._on_recover(payload)
        elif isinstance(payload, CoEnvelope):
            self._receive_app(msg)
        else:
            raise ValueError(f"unexpected payload {payload!r}")

    def on_crash(self) -> None:
        self.storage.on_crash()
        self._pending_round = None
        self._acks = set()
        self._acked_rounds = set()

    def on_restart(self) -> None:
        self.stats.restarts += 1
        committed = self.storage.get("committed_round", 0)
        epoch = self.storage.get("epoch", 0) + 1
        ckpt = self._checkpoint_for_round(committed)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="restart",
            )
        self._restore_to(ckpt, epoch)
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, epoch
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTART, self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=0,
            )
            self.trace.record(
                self.env.now, EventKind.TOKEN_SEND, self.pid,
                version=epoch, timestamp=committed,
            )
        self.env.broadcast(CoRecover(committed, epoch), kind="token")
        self.stats.tokens_sent += self.n - 1
        self.stats.control_sent += self.n - 1
        self._redeliver_channel_state(ckpt)

    # ------------------------------------------------------------------
    # Snapshot rounds
    # ------------------------------------------------------------------
    def _take_snapshot(self, round_number: int) -> None:
        self._channel_logs.setdefault(round_number, [])
        ckpt = self.storage.checkpoints.take(
            self.env.now,
            self.executor.snapshot(),
            self.storage.log.stable_length,
            extras={
                "round": round_number,
                "epoch": self.epoch,
                "send_seq": self._send_seq,
                "delivered": set(self._delivered),
                "recovery_cuts": dict(self._recovery_cuts),
                "channel_log": self._channel_logs[round_number],
            },
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.CHECKPOINT, self.pid,
                ckpt_id=ckpt.ckpt_id,
                uid=self.executor.current_uid,
                log_position=ckpt.log_position,
            )

    def _advance_to_round(self, round_number: int) -> None:
        """Join snapshot ``round_number`` (taking the tentative checkpoint)
        if we have not already -- triggered by the coordinator's SNAPSHOT
        or, Chandy-Lamport style, by the first message that proves the
        round started (it must not be delivered into a pre-cut state)."""
        if round_number <= self.round:
            return
        self.round = round_number
        self._take_snapshot(round_number)

    def _on_snapshot(self, snap: CoSnapshot) -> None:
        if snap.epoch != self.epoch or snap.round < self.round:
            return
        already_acked = snap.round in self._acked_rounds
        self._advance_to_round(snap.round)
        if already_acked:
            return
        self._acked_rounds.add(snap.round)
        if self.pid == self.COORDINATOR:
            self._on_snap_ack(CoSnapAck(snap.round, self.pid))
        else:
            self.env.send(
                self.COORDINATOR, CoSnapAck(snap.round, self.pid),
                kind="control",
            )
            self.stats.control_sent += 1

    def _on_snap_ack(self, ack: CoSnapAck) -> None:
        if self._pending_round is None or ack.round != self._pending_round:
            return
        self._acks.add(ack.sender)
        if len(self._acks) == self.n:
            committed = self._pending_round
            self._pending_round = None
            commit = CoCommit(committed, self.epoch)
            self.env.broadcast(commit, kind="control")
            self.stats.control_sent += self.n - 1
            self._on_commit(commit)

    def _on_commit(self, commit: CoCommit) -> None:
        if commit.epoch != self.epoch:
            return   # stale commit from before a recovery we already did
        current = self.storage.get("committed_round", 0)
        if commit.round > current:
            self.storage.put("committed_round", commit.round)

    def _checkpoint_for_round(self, round_number: int):
        found = self.storage.checkpoints.latest_satisfying(
            lambda c: c.extras["round"] == round_number
        )
        if found is None:
            raise RuntimeError(
                f"P{self.pid}: no checkpoint for round {round_number}"
            )
        return found

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _on_recover(self, recover: CoRecover) -> None:
        self.stats.tokens_received += 1
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_DELIVER, self.pid,
                origin=-1, version=recover.epoch, timestamp=recover.round,
            )
        if recover.epoch <= self.epoch:
            return     # already past this recovery
        ckpt = self._checkpoint_for_round(recover.round)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="rollback",
            )
        self._restore_to(ckpt, recover.epoch)
        restored_uid = self.executor.new_recovery_state()
        self.stats.note_rollback(-1, recover.epoch)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.ROLLBACK, self.pid,
                origin=-1, version=recover.epoch, timestamp=recover.round,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=0,
                discarded_log_entries=0,
            )
        self._redeliver_channel_state(ckpt)

    def _restore_to(self, ckpt, new_epoch: int) -> None:
        old_epoch = self.epoch
        self.executor.restore(ckpt.snapshot)
        self.storage.checkpoints.discard_after(ckpt)
        self._send_seq = ckpt.extras["send_seq"]
        self._delivered = set(ckpt.extras["delivered"])
        self._recovery_cuts = dict(ckpt.extras["recovery_cuts"])
        restored_round = ckpt.extras["round"]
        for epoch in range(ckpt.extras["epoch"], new_epoch):
            self._recovery_cuts.setdefault(epoch, restored_round)
        self._recovery_cuts[old_epoch] = restored_round
        self.round = restored_round
        self.epoch = new_epoch
        self.storage.put("epoch", new_epoch)
        self.storage.put("committed_round", restored_round)
        self._pending_round = None
        self._acks = set()
        self._acked_rounds = set()
        # Channel logs live inside the (stable) checkpoints; rebuild the
        # in-memory view from what survived the restore.
        self._channel_logs = {
            c.extras["round"]: c.extras["channel_log"]
            for c in self.storage.checkpoints
        }

    def _redeliver_channel_state(self, ckpt) -> None:
        """In-flight-at-the-cut messages recorded in the snapshot come back
        as fresh deliveries, completing the consistent global state."""
        for envelope, msg_id in list(ckpt.extras["channel_log"]):
            if envelope.dedup_id not in self._delivered:
                self._deliver_envelope(
                    envelope, msg_id=msg_id, src=envelope.dedup_id[0]
                )

    # ------------------------------------------------------------------
    # Application traffic
    # ------------------------------------------------------------------
    def _receive_app(self, msg: NetworkMessage) -> None:
        envelope: CoEnvelope = msg.payload
        if envelope.dedup_id in self._delivered:
            self.stats.duplicates_discarded += 1
            return
        if envelope.epoch < self.epoch:
            # From an overtaken epoch: acceptable only if it was in flight
            # across every recovery cut it missed.
            for epoch in range(envelope.epoch, self.epoch):
                cut = self._recovery_cuts.get(epoch)
                if cut is None or envelope.round >= cut:
                    self.stats.app_discarded += 1
                    if self.trace is not None:
                        self.trace.record(
                            self.env.now, EventKind.DISCARD, self.pid,
                            msg_id=msg.msg_id, reason="obsolete",
                        )
                    return
        # A message from a round we have not joined yet proves that round
        # started: join (snapshot) before delivering, or the cut would
        # record our pre-cut state depending on the sender's post-cut one.
        if envelope.epoch == self.epoch and envelope.round > self.round:
            self._advance_to_round(envelope.round)
        # Channel-state capture: the message crosses every snapshot newer
        # than its send round.
        for round_number, log in self._channel_logs.items():
            if envelope.round < round_number <= self.round:
                log.append((envelope, msg.msg_id))
        self._deliver_envelope(envelope, msg_id=msg.msg_id, src=msg.src)

    def _deliver_envelope(self, envelope: CoEnvelope, *, msg_id: int,
                          src: int) -> None:
        self._delivered.add(envelope.dedup_id)
        self.stats.app_delivered += 1
        ctx = self.executor.execute(envelope.payload, msg_id=msg_id)
        for send in ctx.sends:
            self._send_app(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)

    def _send_app(self, dst: int, payload: Any) -> None:
        envelope = CoEnvelope(
            payload=payload,
            round=self.round,
            epoch=self.epoch,
            dedup_id=(self.pid, self._send_seq),
        )
        self._send_seq += 1
        sent = self.env.send(dst, envelope, kind="app")
        self.stats.app_sent += 1
        self.stats.piggyback_entries += 2      # round + epoch
        self.stats.piggyback_bits += 64
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.SEND, self.pid,
                msg_id=sent.msg_id, dst=dst,
                uid=self.executor.current_uid,
                dedup=envelope.dedup_id,
            )

    def piggyback_entry_count(self) -> int:
        return 2
