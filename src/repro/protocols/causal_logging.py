"""Causal message logging (paper refs [1, 6]; Alvisi-Marzullo [2]).

The third point of the message-logging design space the paper's related
work surveys.  Where pessimistic logging pays a synchronous write per
receive and optimistic logging pays orphans, causal logging pays
*piggyback*: every message carries the **determinants** -- ``(dest, rsn,
src, ssn, payload)`` records -- of all receive events in the sender's
causal past that are not yet known stable.  Anything a surviving state
depends on is therefore recorded somewhere among the survivors, so:

- **no orphans, ever** ("nonblocking and orphan-free", paper §2): a crash
  loses only receives nobody depended on;
- **no synchronous writes** during failure-free operation;
- **recovery needs the peers** ("synchronization is required during
  recovery"): the restarted process broadcasts a request and replays the
  determinants its peers return, in rsn order, recreating its lost states
  exactly.

Determinants are pruned as their receiver's stable-log watermark (learned
from that receiver's own messages) passes them, so the piggyback tracks
the volume of *unstable* receives -- the overhead quantity the taxonomy
benchmark measures against O(n) clocks and O(1) RSNs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class Determinant:
    """Everything needed to replay one receive event."""

    dest: int
    rsn: int
    src: int
    ssn: int
    src_incarnation: int
    payload: Any
    msg_id: int


@dataclass(frozen=True)
class CLMessage:
    payload: Any
    ssn: int
    incarnation: int
    #: unstable determinants of the sender's causal past
    determinants: tuple[Determinant, ...]
    #: sender's own stable-log watermark (its receives below this are safe)
    stable_rsn: int


@dataclass(frozen=True)
class CLRecover:
    requester: int
    incarnation: int            # the incarnation that just ended
    rsn_floor: int


@dataclass(frozen=True)
class CLDeterminants:
    responder: int
    determinants: tuple[Determinant, ...]


@dataclass(frozen=True)
class CLAnnounce:
    """End of recovery: sends of the dead incarnation with ``ssn >=
    ssn_cutoff`` came from states that were not recreated -- discard them."""

    origin: int
    incarnation: int
    ssn_cutoff: int


class CausalLoggingProcess(BaseRecoveryProcess):
    """One causally-logging process."""

    #: Overlapping (non-simultaneous) failures are handled; *simultaneous*
    #: failures can race determinant propagation (full tolerance needs the
    #: f-replication discipline of family-based logging, out of scope for
    #: this context baseline).
    name = "Causal logging"
    requires_fifo = False
    asynchronous_recovery = False
    tolerates_concurrent_failures = False

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self._rsn = 0
        self._ssn = 0
        self._incarnation = 0
        #: (dest, rsn) -> Determinant; everything unstable we know about
        self._determinants: dict[tuple[int, int], Determinant] = {}
        #: pid -> that process's announced stable watermark
        self._watermarks: dict[int, int] = {}
        self._delivered: set[tuple[int, int]] = set()   # (src, ssn)
        #: (pid, incarnation) -> ssn cutoff, from CLAnnounce broadcasts
        self._ssn_cutoffs: dict[tuple[int, int], int] = {}
        #: (pid, incarnation) incarnations known ended but not yet announced
        #: (between CLRecover and CLAnnounce): their messages are held
        self._ending: set[tuple[int, int]] = set()
        self._held: list[NetworkMessage] = []
        # Recovery session:
        self._recovering = False
        self._responses: dict[int, CLDeterminants] = {}
        self._buffered: list[NetworkMessage] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._send_app(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)
        self.take_checkpoint()
        self.start_periodic_tasks()

    def on_network_message(self, msg: NetworkMessage) -> None:
        payload = msg.payload
        if isinstance(payload, CLRecover):
            self._on_recover_request(payload)
            return
        if isinstance(payload, CLAnnounce):
            self._on_announce(payload)
            return
        if self._recovering:
            if isinstance(payload, CLDeterminants):
                self._on_determinants(payload)
            else:
                self._buffered.append(msg)
            return
        if isinstance(payload, CLMessage):
            self._on_app_message(msg)
        elif isinstance(payload, CLDeterminants):
            pass   # stale response from a finished session
        else:
            raise ValueError(f"unexpected payload {payload!r}")

    def on_crash(self) -> None:
        self.storage.on_crash()
        self._determinants.clear()
        self._watermarks.clear()
        self._delivered.clear()
        self._ending.clear()
        self._held.clear()
        self._recovering = False
        self._responses.clear()
        self._buffered.clear()

    # ------------------------------------------------------------------
    # Failure-free path
    # ------------------------------------------------------------------
    def _prune(self) -> None:
        """Drop determinants whose receiver has made them stable."""
        self._determinants = {
            key: det
            for key, det in self._determinants.items()
            if det.rsn >= self._watermarks.get(det.dest, 0)
        }

    def _on_app_message(self, msg: NetworkMessage) -> None:
        envelope: CLMessage = msg.payload
        if (msg.src, envelope.ssn) in self._delivered:
            self.stats.duplicates_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.DISCARD, self.pid,
                    msg_id=msg.msg_id, reason="duplicate",
                )
            return
        # Stale-incarnation filter (the Manetho-style coordination that
        # keeps causal logging orphan-free): a message from an ended
        # incarnation is valid only if its send was recreated by the
        # recovery (ssn below the announced cutoff).
        key = (msg.src, envelope.incarnation)
        cutoff = self._ssn_cutoffs.get(key)
        if cutoff is not None and envelope.ssn >= cutoff:
            self.stats.app_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.DISCARD, self.pid,
                    msg_id=msg.msg_id, reason="obsolete",
                )
            return
        if key in self._ending:
            # Incarnation ended but its cutoff is not known yet: hold.
            self._held.append(msg)
            self.stats.app_postponed += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.POSTPONE, self.pid,
                    msg_id=msg.msg_id, awaiting=[key],
                )
            return
        # Absorb the sender's knowledge before creating our own receive.
        for det in envelope.determinants:
            self._determinants.setdefault((det.dest, det.rsn), det)
        self._watermarks[msg.src] = max(
            self._watermarks.get(msg.src, 0), envelope.stable_rsn
        )
        self._deliver(
            payload=envelope.payload,
            src=msg.src,
            ssn=envelope.ssn,
            src_incarnation=envelope.incarnation,
            msg_id=msg.msg_id,
        )
        self._prune()

    def _deliver(self, *, payload, src, ssn, src_incarnation, msg_id) -> None:
        rsn = self._rsn
        self._rsn += 1
        self._delivered.add((src, ssn))
        determinant = Determinant(
            dest=self.pid, rsn=rsn, src=src, ssn=ssn,
            src_incarnation=src_incarnation,
            payload=payload, msg_id=msg_id,
        )
        self._determinants[(self.pid, rsn)] = determinant
        self.storage.log.append(msg_id, src, payload, meta=determinant)
        self.stats.app_delivered += 1
        ctx = self.executor.execute(payload, msg_id=msg_id)
        for send in ctx.sends:
            self._send_app(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=False)

    def _send_app(self, dst: int, payload: Any) -> None:
        self._prune()
        determinants = tuple(
            self._determinants[key] for key in sorted(self._determinants)
        )
        envelope = CLMessage(
            payload=payload,
            ssn=self._ssn,
            incarnation=self._incarnation,
            determinants=determinants,
            stable_rsn=self.storage.log.stable_length,
        )
        self._ssn += 1
        sent = self.env.send(dst, envelope, kind="app")
        self.stats.app_sent += 1
        # Overhead accounting: each determinant is the causal-logging
        # analogue of a clock entry.
        self.stats.piggyback_entries += 1 + len(determinants)
        self.stats.piggyback_bits += 64 + len(determinants) * 160
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.SEND, self.pid,
                msg_id=sent.msg_id, dst=dst,
                uid=self.executor.current_uid,
                dedup=(self.pid, envelope.ssn),
            )

    # ------------------------------------------------------------------
    # Recovery (needs the peers)
    # ------------------------------------------------------------------
    def on_restart(self) -> None:
        self.stats.restarts += 1
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="restart",
            )
        self.executor.restore(ckpt.snapshot)
        self._rsn = ckpt.extras["rsn"]
        self._ssn = ckpt.extras["ssn"]
        self._incarnation = ckpt.extras["incarnation"]
        self._delivered = set(ckpt.extras["delivered"])
        self._determinants = dict(ckpt.extras["determinants"])
        self._watermarks = dict(ckpt.extras["watermarks"])
        self._ssn_cutoffs = dict(ckpt.extras["ssn_cutoffs"])
        # Ended-incarnation knowledge is durable (synchronously logged).
        for logged in self.storage.tokens:
            if isinstance(logged, CLAnnounce):
                self._ssn_cutoffs[(logged.origin, logged.incarnation)] = (
                    logged.ssn_cutoff
                )
            elif isinstance(logged, CLRecover):
                key = (logged.requester, logged.incarnation)
                if key not in self._ssn_cutoffs:
                    self._ending.add(key)
        replayed = 0
        for entry in self.storage.log.stable_entries(ckpt.log_position):
            self._replay_determinant(entry.meta)
            replayed += 1
        self._post_replay = replayed
        if self.n == 1:
            self._finish_recovery(replayed, ())
            return
        self._recovering = True
        self._responses = {}
        self.env.broadcast(
            CLRecover(
                requester=self.pid,
                incarnation=self._incarnation,
                rsn_floor=self._rsn,
            ),
            kind="control",
        )
        self.stats.control_sent += self.n - 1

    def _replay_determinant(self, det: Determinant) -> None:
        """Replay one logged/collected receive, reconstructing its uid.

        Causal logging never rolls back, so original state uids since any
        checkpoint are consecutive serials: the state this replay recreates
        is exactly the successor of the executor's current uid.
        """
        current = self.executor.current_uid
        original_uid = (self.pid, current[1], current[2] + 1)
        self._rsn = det.rsn + 1
        self._delivered.add((det.src, det.ssn))
        self._determinants[(self.pid, det.rsn)] = det
        self.stats.replayed += 1
        ctx = self.executor.execute(
            det.payload, msg_id=det.msg_id, replay=True, uid=original_uid
        )
        for send in ctx.sends:
            # Regenerated sends are retransmitted with their ORIGINAL ssns
            # (the restored counter + deterministic replay reproduce them),
            # so receivers deduplicate exact copies; sends that never left
            # before the crash go out here for the first time.
            self._send_app(send.dst, send.payload)
        self.emit_outputs(ctx.outputs, replay=True)

    def _on_recover_request(self, request: CLRecover) -> None:
        key = (request.requester, request.incarnation)
        if key not in self._ssn_cutoffs:
            # That incarnation ended; hold its in-flight messages until
            # the cutoff announce says which of them were recreated.
            self.storage.log_token(request)
            self._ending.add(key)
        mine = tuple(
            det
            for (dest, rsn), det in sorted(self._determinants.items())
            if dest == request.requester and rsn >= request.rsn_floor
        )
        self.env.send(
            request.requester,
            CLDeterminants(responder=self.pid, determinants=mine),
            kind="control",
        )
        self.stats.control_sent += 1

    def _on_announce(self, announce: CLAnnounce) -> None:
        self.stats.tokens_received += 1
        self.storage.log_token(announce)
        key = (announce.origin, announce.incarnation)
        self._ssn_cutoffs[key] = announce.ssn_cutoff
        self._ending.discard(key)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_DELIVER, self.pid,
                origin=announce.origin, version=announce.incarnation,
                timestamp=announce.ssn_cutoff,
            )
        held, self._held = self._held, []
        for msg in held:
            if self._recovering:
                self._buffered.append(msg)
            else:
                self._on_app_message(msg)
        # The announce may be exactly what our own recovery was waiting on.
        self._try_complete()

    def _on_determinants(self, response: CLDeterminants) -> None:
        self._responses[response.responder] = response
        self._try_complete()

    def _try_complete(self) -> None:
        if not self._recovering or len(self._responses) < self.n - 1:
            return
        collected: dict[int, Determinant] = {}
        for item in self._responses.values():
            for det in item.determinants:
                collected.setdefault(det.rsn, det)
        # Determinants whose sender incarnation is still in recovery limbo
        # are replayed *optimistically*: determinant piggybacking is
        # causally closed (whoever carried this determinant also carried,
        # or has stably logged, the determinants of its whole unstable
        # causal past), so the sender's own concurrent recovery will
        # recreate the send.  Only a determinant already *excluded* by an
        # announced cutoff is definitively unbacked and truncates the
        # chain.
        # Replay the gap-free prefix in rsn order: these recreate the lost
        # states exactly.  Anything after a gap becomes a fresh delivery
        # (nobody can have depended on the gap, or its determinant would
        # have been piggybacked along that dependence).  A determinant
        # whose sender incarnation is dead with the send beyond (or not
        # yet covered by) the announced cutoff must not be replayed at all
        # -- it would recreate a dependence on an unrecreated state; it is
        # dropped, which is safe (nothing surviving can depend on it for
        # the same piggybacking reason) if occasionally lossy under
        # overlapping failures.
        expected = self._rsn
        replayed = getattr(self, "_post_replay", 0)
        fresh: list[Determinant] = []
        for rsn in sorted(collected):
            det = collected[rsn]
            if (det.src, det.ssn) in self._delivered:
                continue
            if self._det_is_stale(det):
                expected = None   # chain broken; the rest is fresh at best
                continue
            if det.rsn == expected and not fresh:
                self.storage.log.append(det.msg_id, det.src, det.payload,
                                        meta=det)
                self._replay_determinant(det)
                replayed += 1
                expected += 1
            else:
                fresh.append(det)
        self._finish_recovery(replayed, fresh)

    def _det_is_stale(self, det: Determinant) -> bool:
        """Was the send behind this determinant definitively NOT recreated
        by its own sender's recovery?"""
        key = (det.src, det.src_incarnation)
        cutoff = self._ssn_cutoffs.get(key)
        return cutoff is not None and det.ssn >= cutoff

    def _finish_recovery(self, replayed: int, fresh) -> None:
        # Everything the recovered lineage ever sent has ssn < self._ssn;
        # later sends of the dead incarnation came from unrecreated states.
        announce = CLAnnounce(
            origin=self.pid,
            incarnation=self._incarnation,
            ssn_cutoff=self._ssn,
        )
        self.storage.log_token(announce)
        self._ssn_cutoffs[(self.pid, self._incarnation)] = self._ssn
        self._incarnation = self.env.crash_count
        if self.n > 1:
            self.env.broadcast(announce, kind="token")
            self.stats.tokens_sent += self.n - 1
            self.stats.control_sent += self.n - 1
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_SEND, self.pid,
                version=announce.incarnation,
                timestamp=announce.ssn_cutoff,
            )
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, self.env.crash_count
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTART, self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
            )
        self._recovering = False
        self._responses = {}
        self.take_checkpoint()
        for det in fresh:
            if (det.src, det.ssn) in self._delivered:
                continue
            if self._det_is_stale(det):
                continue
            self._deliver(
                payload=det.payload, src=det.src, ssn=det.ssn,
                src_incarnation=det.src_incarnation,
                msg_id=det.msg_id,
            )
        buffered, self._buffered = self._buffered, []
        for msg in buffered:
            self.on_network_message(msg)

    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        return {
            "rsn": self._rsn,
            "ssn": self._ssn,
            "incarnation": self._incarnation,
            "delivered": set(self._delivered),
            "determinants": dict(self._determinants),
            "watermarks": dict(self._watermarks),
            "ssn_cutoffs": dict(self._ssn_cutoffs),
        }

    def piggyback_entry_count(self) -> int:
        return 1 + len(self._determinants)
