"""Completely asynchronous optimistic recovery after Smith, Johnson &
Tygar [25].

The first fully asynchronous optimistic protocol with minimal rollbacks.
It achieves the same recovery behaviour as Damani-Garg -- asynchronous
restart, at most one rollback per failure, arbitrary concurrent failures,
no ordering assumptions -- but maintains "information about two levels of
partial order: one for the application and the other for the recovery"
*on every message*:

- the sender's fault-tolerant clock (n entries);
- the sender's complete knowledge of failure announcements (up to n·f
  entries);
- the sender's view of every process's clock -- an n x n matrix of
  versioned entries.

That is the O(n²f) timestamp overhead of Table 1, and "the main drawback
of their algorithm" that Damani-Garg's history mechanism eliminates by
moving the same information into cheap volatile memory.  Because failure
knowledge rides on application messages, a receiver can detect it is an
orphan on an ordinary receive, before the failed process's broadcast
reaches it -- the one behavioural advantage of paying for the bigger
piggyback.

Implementation note: the recovery logic proper is shared with
:class:`~repro.core.recovery.DamaniGargProcess` (the protocols make
identical rollback decisions; the paper's comparison is about *where the
information lives*), so this class overrides only the wire format, the
knowledge propagation, and the overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.ftvc import FaultTolerantVectorClock
from repro.core.recovery import DamaniGargProcess
from repro.core.tokens import RecoveryToken
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class SJTEnvelope:
    """The O(n²f) wire format.

    Field names ``payload``/``clock``/``dedup_id`` deliberately match
    :class:`~repro.core.recovery.AppEnvelope` so the inherited delivery
    path works unchanged.
    """

    payload: Any
    clock: FaultTolerantVectorClock
    dedup_id: tuple[int, int]
    known_tokens: tuple[RecoveryToken, ...]
    matrix: tuple[FaultTolerantVectorClock, ...]

    def piggyback_entries(self) -> int:
        return (
            self.clock.piggyback_entries()
            + len(self.known_tokens)
            + sum(row.piggyback_entries() for row in self.matrix)
        )


class SmithJohnsonTygarProcess(DamaniGargProcess):
    """One Smith-Johnson-Tygar process."""

    name = "Smith-Johnson-Tygar"
    requires_fifo = False
    asynchronous_recovery = True
    tolerates_concurrent_failures = True

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self.matrix: list[FaultTolerantVectorClock] = [
            FaultTolerantVectorClock.initial(j, self.n) for j in range(self.n)
        ]
        self._known_tokens: dict[tuple[int, int], RecoveryToken] = {}

    # ------------------------------------------------------------------
    # Knowledge propagation
    # ------------------------------------------------------------------
    def _remember_token(self, token: RecoveryToken) -> None:
        self._known_tokens[(token.origin, token.version)] = token

    def _receive_app(self, msg: NetworkMessage) -> None:
        envelope: SJTEnvelope = msg.payload
        # Failure knowledge rides on the message: absorb it first (it may
        # reveal that we are an orphan right now), then proceed with the
        # inherited obsolete/deliverability/delivery logic.
        for token in envelope.known_tokens:
            if (token.origin, token.version) not in self._known_tokens:
                self._remember_token(token)
                self.storage.log_token(token)
                self._apply_token(token)
        self.matrix = [
            mine.merge(theirs)
            for mine, theirs in zip(self.matrix, envelope.matrix)
        ]
        super()._receive_app(msg)
        self.matrix[self.pid] = self.clock

    def _receive_token(self, token: RecoveryToken) -> None:
        self._remember_token(token)
        super()._receive_token(token)

    def on_restart(self) -> None:
        super().on_restart()
        for token in self.storage.tokens:
            self._remember_token(token)
        self.matrix[self.pid] = self.clock

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def _register_send(self, dst: int, payload: Any, *, transmit: bool) -> None:
        self.matrix[self.pid] = self.clock
        envelope = SJTEnvelope(
            payload=payload,
            clock=self.clock,
            dedup_id=(self.pid, self._send_seq),
            known_tokens=tuple(self._known_tokens.values()),
            matrix=tuple(self.matrix),
        )
        self._send_seq += 1
        if transmit:
            sent = self.env.send(dst, envelope, kind="app")
            self.stats.app_sent += 1
            self.stats.piggyback_entries += envelope.piggyback_entries()
            self.stats.piggyback_bits += envelope.piggyback_entries() * 40
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.SEND,
                    self.pid,
                    msg_id=sent.msg_id,
                    dst=dst,
                    uid=self.executor.current_uid,
                    dedup=envelope.dedup_id,
                )
        self.clock = self.clock.tick(self.pid)

    def _rebuild_envelope(self, payload, clock, dedup_id):
        """Re-presented log entries get the local failure knowledge
        attached (the original piggyback is gone; ours is a superset of
        whatever the sender knew when it sent the message)."""
        return SJTEnvelope(
            payload=payload,
            clock=clock,
            dedup_id=dedup_id,
            known_tokens=tuple(self._known_tokens.values()),
            matrix=tuple(self.matrix),
        )

    def checkpoint_extras(self) -> dict[str, Any]:
        extras = super().checkpoint_extras()
        extras["matrix"] = list(self.matrix)
        extras["known_tokens"] = dict(self._known_tokens)
        return extras

    def _restore_checkpoint(self, ckpt) -> None:
        super()._restore_checkpoint(ckpt)
        self.matrix = list(ckpt.extras["matrix"])
        self._known_tokens = dict(ckpt.extras["known_tokens"])
        for token in self.storage.tokens:
            self._remember_token(token)

    def piggyback_entry_count(self) -> int:
        """O(n²f): the clock, the token table, and the n x n matrix."""
        return (
            self.n
            + len(self._known_tokens)
            + self.n * self.n
        )
