"""Pessimistic receiver-based message logging (paper refs [3, 20]).

Every received message is synchronously forced to stable storage before the
application handler runs.  Consequently nothing is ever lost, no state can
become an orphan, and recovery is trivially local: restore the last
checkpoint and replay the entire stable log.

This is the Section 1 strawman the optimistic protocols improve on: its
failure-free cost is one synchronous stable write per received message
(``stats.sync_log_writes``), which the overhead benchmarks compare against
the Damani-Garg protocol's asynchronous flushes.

Properties measured for the Table 1 context rows: no ordering assumption,
local (asynchronous) recovery, zero rollbacks, no piggybacked clock,
arbitrary concurrent failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class _Envelope:
    """Wire format: payload plus a dedup id (needed because the transport
    may redeliver retained messages to a restarted process)."""

    payload: Any
    dedup_id: tuple[int, int]


class PessimisticReceiverProcess(BaseRecoveryProcess):
    """Synchronous receiver-side logging."""

    name = "Pessimistic receiver log"
    requires_fifo = False
    asynchronous_recovery = True
    tolerates_concurrent_failures = True

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self._send_seq = 0
        self._delivered: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def on_start(self) -> None:
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)
        self.take_checkpoint()
        self.start_periodic_tasks()

    def on_network_message(self, msg: NetworkMessage) -> None:
        if msg.kind != "app":
            raise ValueError(f"unexpected message kind {msg.kind!r}")
        envelope: _Envelope = msg.payload
        if envelope.dedup_id in self._delivered:
            self.stats.duplicates_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.DISCARD,
                    self.pid,
                    msg_id=msg.msg_id,
                    reason="duplicate",
                )
            return
        self._delivered.add(envelope.dedup_id)
        self.stats.app_delivered += 1
        ctx = self.executor.execute(envelope.payload, msg_id=msg.msg_id)
        # Pessimism: the log is forced before anything escapes this event.
        # Receive, execute and flush form one atomic simulator event, so
        # logging after execution (to capture the created state's uid for
        # replay) is unobservable to the rest of the system.
        self.storage.log.append(
            msg.msg_id,
            msg.src,
            envelope.payload,
            meta=(envelope.dedup_id, self.executor.current_uid),
        )
        self.storage.log.flush()
        self.stats.sync_log_writes += 1
        self.storage.sync_writes += 1
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)

    def on_crash(self) -> None:
        lost = self.storage.on_crash()
        assert lost == 0, "pessimistic logging must never lose log entries"
        self._delivered.clear()

    def on_restart(self) -> None:
        """Purely local recovery: checkpoint + full log replay."""
        self.stats.restarts += 1
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTORE,
                self.pid,
                ckpt_uid=ckpt.snapshot["uid"],
                reason="restart",
            )
        self.executor.restore(ckpt.snapshot)
        self._send_seq = ckpt.extras["send_seq"]
        self._delivered = set(ckpt.extras["delivered"])
        replayed = 0
        for entry in self.storage.log.stable_entries(ckpt.log_position):
            dedup_id, uid = entry.meta
            self._delivered.add(dedup_id)
            self.stats.replayed += 1
            ctx = self.executor.execute(
                entry.payload, msg_id=entry.msg_id, replay=True, uid=uid
            )
            for send in ctx.sends:
                self._send_app(send.dst, send.payload, transmit=False)
            self.emit_outputs(ctx.outputs, replay=True)
            replayed += 1
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, self.env.crash_count
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now,
                EventKind.RESTART,
                self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
            )
        self.take_checkpoint()

    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        return {
            "send_seq": self._send_seq,
            "delivered": set(self._delivered),
        }

    def _send_app(self, dst: int, payload: Any, *, transmit: bool) -> None:
        envelope = _Envelope(payload=payload, dedup_id=(self.pid, self._send_seq))
        self._send_seq += 1
        if transmit:
            sent = self.env.send(dst, envelope, kind="app")
            self.stats.app_sent += 1
            # No clock is piggybacked; only the O(1) dedup id.
            self.stats.piggyback_entries += 1
            self.stats.piggyback_bits += 64
            if self.trace is not None:
                self.trace.record(
                    self.env.now,
                    EventKind.SEND,
                    self.pid,
                    msg_id=sent.msg_id,
                    dst=dst,
                    uid=self.executor.current_uid,
                    dedup=envelope.dedup_id,
                )

    def piggyback_entry_count(self) -> int:
        return 1
