"""Rollback based on vector time, after Peterson & Kearns [19].

Messages piggyback a plain Mattern vector clock (``n`` timestamps) plus a
scalar *epoch*.  After a failure the restarted process replays its stable
log, advances the epoch, broadcasts a recovery token carrying the restored
vector time, and then **waits for acknowledgements from every peer before
resuming computation** -- recovery is synchronous (Table 1 column 2 =
"No"), and the wait shows up in ``stats.blocked_time``.

Each peer, on the token: if its clock shows dependence on the failed
process beyond the restored timestamp it rolls back (once), adopts the new
epoch, and acknowledges.  In-flight messages from the old epoch are judged
against the recorded cutoff (obsolete iff they depend on the failed
process beyond the restoration point); messages from a *future* epoch are
postponed until the token arrives.

Because the protocol distinguishes pre- from post-recovery states with a
single scalar epoch rather than per-process version numbers, overlapping
recoveries are ambiguous: it "can not handle multiple failures" (paper
Section 2) -- concurrent crashes are outside its contract, exactly as
Table 1 records (1 concurrent failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.clocks.vector import VectorClock
from repro.protocols.base import BaseRecoveryProcess
from repro.runtime.message import NetworkMessage
from repro.runtime.trace import EventKind


@dataclass(frozen=True)
class PKEnvelope:
    payload: Any
    clock: VectorClock
    epoch: int


@dataclass(frozen=True)
class PKToken:
    origin: int
    epoch: int                       # the epoch this recovery begins
    restored_ts: int                 # origin's own timestamp at restoration


@dataclass(frozen=True)
class PKAck:
    epoch: int
    sender: int


class PetersonKearnsProcess(BaseRecoveryProcess):
    """One Peterson-Kearns process."""

    name = "Peterson-Kearns"
    requires_fifo = True
    asynchronous_recovery = False
    tolerates_concurrent_failures = False

    def __init__(self, env, app, config=None) -> None:
        super().__init__(env, app, config)
        self.clock = VectorClock.initial(self.pid, self.n)
        self.epoch = 0
        # epoch -> (failed pid, restored timestamp): the cutoff that ended it
        self.cutoffs: dict[int, tuple[int, int]] = {}
        self._held: list[NetworkMessage] = []
        # Synchronous-recovery session state (when we are the failed one):
        self._awaiting_acks: set[int] | None = None
        self._buffered: list[NetworkMessage] = []
        self._blocked_since: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        ctx = self.executor.bootstrap()
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)
        self.take_checkpoint()
        self.start_periodic_tasks()

    def on_network_message(self, msg: NetworkMessage) -> None:
        payload = msg.payload
        if isinstance(payload, PKToken):
            self._receive_token(payload)
            return
        if isinstance(payload, PKAck):
            self._receive_ack(payload)
            return
        if self._awaiting_acks is not None:
            # We are mid-recovery: application traffic waits.
            self._buffered.append(msg)
            return
        self._receive_app(msg)

    def on_crash(self) -> None:
        self.storage.on_crash()
        self._held.clear()
        self._buffered.clear()
        self._awaiting_acks = None
        self._blocked_since = None

    def on_restart(self) -> None:
        self.stats.restarts += 1
        ckpt = self.storage.checkpoints.latest()
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="restart",
            )
        self._restore_checkpoint(ckpt)
        replayed = 0
        for entry in self.storage.log.stable_entries(ckpt.log_position):
            self._replay_entry(entry)
            replayed += 1
        restored_ts = self.clock[self.pid]
        new_epoch = self.epoch + 1
        token = PKToken(
            origin=self.pid, epoch=new_epoch, restored_ts=restored_ts
        )
        self.storage.log_token(token)
        self.cutoffs[self.epoch] = (self.pid, restored_ts)
        self.epoch = new_epoch
        restored_uid = self.executor.begin_incarnation(
            self.env.crash_count, new_epoch
        )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_SEND, self.pid,
                version=new_epoch, timestamp=restored_ts,
            )
            self.trace.record(
                self.env.now, EventKind.RESTART, self.pid,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
            )
        self.take_checkpoint()
        if self.n == 1:
            return
        # The synchronous part: broadcast and wait for everyone.
        self.env.broadcast(token, kind="token")
        self.stats.tokens_sent += self.n - 1
        self.stats.control_sent += self.n - 1
        self._awaiting_acks = set(range(self.n)) - {self.pid}
        self._blocked_since = self.env.now

    # ------------------------------------------------------------------
    # Receive message
    # ------------------------------------------------------------------
    def _is_obsolete(self, envelope: PKEnvelope) -> bool:
        """An old-epoch message is obsolete iff it depends on a failed
        process beyond the restoration point of any epoch it missed."""
        for epoch in range(envelope.epoch, self.epoch):
            cutoff = self.cutoffs.get(epoch)
            if cutoff is None:
                continue
            failed, restored_ts = cutoff
            if envelope.clock[failed] > restored_ts:
                return True
        return False

    def _receive_app(self, msg: NetworkMessage) -> None:
        envelope: PKEnvelope = msg.payload
        if envelope.epoch > self.epoch:
            # From a recovery we have not heard about yet.
            self._held.append(msg)
            self.stats.app_postponed += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.POSTPONE, self.pid,
                    msg_id=msg.msg_id, awaiting=[("epoch", envelope.epoch)],
                )
            return
        if self._is_obsolete(envelope):
            self.stats.app_discarded += 1
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.DISCARD, self.pid,
                    msg_id=msg.msg_id, reason="obsolete",
                )
            return
        self._deliver(msg)

    def _deliver(self, msg: NetworkMessage) -> None:
        envelope: PKEnvelope = msg.payload
        self.clock = self.clock.merge(envelope.clock).tick(self.pid)
        self.stats.app_delivered += 1
        ctx = self.executor.execute(envelope.payload, msg_id=msg.msg_id)
        self.storage.log.append(
            msg.msg_id, msg.src, envelope.payload,
            meta=(envelope.clock, self.executor.current_uid),
        )
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=True)
        self.emit_outputs(ctx.outputs, replay=False)

    def _replay_entry(self, entry) -> None:
        clock, uid = entry.meta
        self.clock = self.clock.merge(clock).tick(self.pid)
        self.stats.replayed += 1
        ctx = self.executor.execute(
            entry.payload, msg_id=entry.msg_id, replay=True, uid=uid
        )
        for send in ctx.sends:
            self._send_app(send.dst, send.payload, transmit=False)
        self.emit_outputs(ctx.outputs, replay=True)

    def _send_app(self, dst: int, payload: Any, *, transmit: bool) -> None:
        envelope = PKEnvelope(payload=payload, clock=self.clock,
                              epoch=self.epoch)
        if transmit:
            sent = self.env.send(dst, envelope, kind="app")
            self.stats.app_sent += 1
            self.stats.piggyback_entries += len(self.clock) + 1
            self.stats.piggyback_bits += (len(self.clock) + 1) * 32
            if self.trace is not None:
                self.trace.record(
                    self.env.now, EventKind.SEND, self.pid,
                    msg_id=sent.msg_id, dst=dst,
                    uid=self.executor.current_uid,
                )
        self.clock = self.clock.tick(self.pid)

    # ------------------------------------------------------------------
    # Tokens / acks
    # ------------------------------------------------------------------
    def _receive_token(self, token: PKToken) -> None:
        self.stats.tokens_received += 1
        self.storage.log_token(token)
        self.stats.sync_log_writes += 1
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.TOKEN_DELIVER, self.pid,
                origin=token.origin, version=token.epoch,
                timestamp=token.restored_ts,
            )
        if self.clock[token.origin] > token.restored_ts:
            self._rollback(token)
        self.cutoffs[token.epoch - 1] = (token.origin, token.restored_ts)
        self.epoch = max(self.epoch, token.epoch)
        self.env.send(token.origin, PKAck(epoch=token.epoch, sender=self.pid),
                       kind="control")
        self.stats.control_sent += 1
        held, self._held = self._held, []
        for msg in held:
            self._receive_app(msg)

    def _receive_ack(self, ack: PKAck) -> None:
        if self._awaiting_acks is None or ack.epoch != self.epoch:
            return
        self._awaiting_acks.discard(ack.sender)
        if not self._awaiting_acks:
            self._awaiting_acks = None
            if self._blocked_since is not None:
                self.stats.blocked_time += self.env.now - self._blocked_since
                self._blocked_since = None
            buffered, self._buffered = self._buffered, []
            for msg in buffered:
                self.on_network_message(msg)

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------
    def _rollback(self, token: PKToken) -> None:
        self.flush_log()
        j = token.origin

        def survives(ckpt) -> bool:
            return ckpt.extras["clock"][j] <= token.restored_ts

        ckpt = self.storage.checkpoints.latest_satisfying(survives)
        if ckpt is None:
            raise RuntimeError(
                f"P{self.pid}: no surviving checkpoint for {token!r}"
            )
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.RESTORE, self.pid,
                ckpt_uid=ckpt.snapshot["uid"], reason="rollback",
            )
        self._restore_checkpoint(ckpt)
        self.storage.checkpoints.discard_after(ckpt)
        position = ckpt.log_position
        replayed = 0
        for entry in self.storage.log.stable_entries(position):
            clock, _uid = entry.meta
            if clock[j] > token.restored_ts:
                break
            self._replay_entry(entry)
            replayed += 1
        discarded = self.storage.log.truncate(position + replayed)
        self.clock = self.clock.tick(self.pid)
        restored_uid = self.executor.new_recovery_state()
        self.stats.note_rollback(token.origin, token.epoch)
        if self.trace is not None:
            self.trace.record(
                self.env.now, EventKind.ROLLBACK, self.pid,
                origin=token.origin, version=token.epoch,
                timestamp=token.restored_ts,
                restored_uid=restored_uid,
                new_uid=self.executor.current_uid,
                replayed=replayed,
                discarded_log_entries=discarded,
            )

    # ------------------------------------------------------------------
    def checkpoint_extras(self) -> dict[str, Any]:
        return {
            "clock": self.clock,
            "epoch": self.epoch,
            "cutoffs": dict(self.cutoffs),
        }

    def _restore_checkpoint(self, ckpt) -> None:
        self.executor.restore(ckpt.snapshot)
        self.clock = ckpt.extras["clock"]
        self.epoch = ckpt.extras["epoch"]
        self.cutoffs = dict(ckpt.extras["cutoffs"])
        # Cutoffs are durable facts: reinstate those learned after the
        # checkpoint from the synchronously-logged tokens.
        for token in self.storage.tokens:
            self.cutoffs[token.epoch - 1] = (token.origin, token.restored_ts)
            self.epoch = max(self.epoch, token.epoch)

    def piggyback_entry_count(self) -> int:
        return self.n + 1
