"""repro.service: the sharded, multi-tenant KV service over live shards.

This is the client-facing layer of the reproduction: the paper's cheap
optimistic recovery only matters if *client-visible* semantics --
exactly-once application, session monotonicity -- survive crash and
rollback, and this package is where those semantics are assembled and
measured over many independent recovery domains.

Public API tour
---------------

Booting a service (S shards, each a full damani-garg live cluster)::

    from repro.service import ServiceConfig, ShardManager

    config = ServiceConfig(shards=2, nodes_per_shard=4)
    manager = ShardManager(config, workdir="/tmp/svc")
    manager.start()
    manager.wait_ready()

Talking to it (asyncio; retried ops keep their ``(session, seq)`` id,
so the shard's per-session ledger dedupes them even across a crash)::

    from repro.service import KVClient

    client = KVClient(manager.routing, manager.endpoints())
    await client.start()
    session = client.session()
    ack = await session.put("user:42", 7)      # ratchets the version floor
    reply = await session.get("user:42")       # never below the floor

Routing (versioned key -> shard map, salted independently of the
in-shard key -> primary placement)::

    from repro.service import RoutingTable
    shard = manager.routing.shard_for("user:42")

Grading it (the user simulator + exactly-once audit behind
``python -m repro service-bench``)::

    from repro.service import run_service_bench
    payload = run_service_bench(config, workdir)   # BENCH_service.json shape
    assert payload["exactly_once"]["verified"]

The served workload itself -- wire types (promoted here from
``repro.apps.kvstore``, which keeps deprecation shims), the
session-deduping replica state, and the shard application -- lives in
:mod:`repro.service.kv` and is engine-free: the same
:class:`KVServiceApp` runs under the deterministic simulator in tests
and under the live runtime in production shards.

Frozen surface
--------------

``repro.service.__all__`` is pinned by ``tests/test_public_api.py``
(``FROZEN_SERVICE``): removing or renaming an exported name is a
breaking change and must bump the major version.
"""

from repro.service.kv import (
    KVGet,
    KVPut,
    KVReplicate,
    KVReply,
    KVServiceApp,
    ServiceReplicaState,
)
from repro.service.routing import RoutingTable

__all__ = [
    "KVClient",
    "KVGet",
    "KVPut",
    "KVReplicate",
    "KVReply",
    "KVServiceApp",
    "KVSession",
    "RoutingTable",
    "ServiceConfig",
    "ServiceReplicaState",
    "ShardEndpoint",
    "ShardManager",
    "check_service_payload",
    "run_service_bench",
    "write_service_bench",
]

#: Names resolved lazily: the client/manager/bench halves pull in the
#: live runtime (asyncio, subprocess supervision), which the engine-free
#: half of the package must not load eagerly.
_LAZY = {
    "KVClient": ("repro.service.client", "KVClient"),
    "KVSession": ("repro.service.client", "KVSession"),
    "ShardEndpoint": ("repro.service.client", "ShardEndpoint"),
    "ServiceConfig": ("repro.service.manager", "ServiceConfig"),
    "ShardManager": ("repro.service.manager", "ShardManager"),
    "check_service_payload": ("repro.service.bench", "check_service_payload"),
    "run_service_bench": ("repro.service.bench", "run_service_bench"),
    "write_service_bench": ("repro.service.bench", "write_service_bench"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(__all__)
